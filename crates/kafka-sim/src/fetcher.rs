//! Replica fetcher threads — Kafka's passive replication engine.
//!
//! Each broker runs one fetcher thread per leader it follows (like
//! `num.replica.fetchers = 1`): the thread repeatedly sends one
//! consolidated `FollowerFetch` for *all* partitions it follows from that
//! leader, appends the returned log bytes locally, and reports its new
//! log-end offsets on the next fetch — which is what advances the
//! leader's high watermarks. The paper's point: this loop must be *tuned*
//! (wait times, fetch sizes) and always costs one extra round trip before
//! a produce can be acknowledged.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use kera_common::ids::NodeId;
use kera_rpc::RpcClient;
use kera_wire::frames::OpCode;
use kera_wire::messages::{FollowerFetchEntry, FollowerFetchRequest, FollowerFetchResponse};
use parking_lot::Mutex;

use crate::broker::KafkaBrokerService;
use crate::partition::PartitionLog;

/// Runs and owns a broker's replica fetcher threads.
pub struct FetcherRunner {
    node: NodeId,
    client: RpcClient,
    broker: Arc<KafkaBrokerService>,
    max_bytes_per_partition: u32,
    /// Per-partition write cost (each partition is its own log file).
    io_cost_ns: u64,
    shutdown: Arc<AtomicBool>,
    threads: Mutex<HashMap<NodeId, std::thread::JoinHandle<()>>>,
    /// Shared registry: leader replica-node -> partitions to fetch.
    targets: Arc<Mutex<HashMap<NodeId, Vec<Arc<PartitionLog>>>>>,
}

impl FetcherRunner {
    pub fn new(
        node: NodeId,
        client: RpcClient,
        broker: Arc<KafkaBrokerService>,
        max_bytes_per_partition: u32,
        io_cost_ns: u64,
    ) -> Arc<Self> {
        Arc::new(Self {
            node,
            client,
            broker,
            max_bytes_per_partition,
            io_cost_ns,
            shutdown: Arc::new(AtomicBool::new(false)),
            threads: Mutex::new(HashMap::new()),
            targets: Arc::new(Mutex::new(HashMap::new())),
        })
    }

    /// Picks up follower assignments registered on the broker service
    /// since the last call and (re)arms fetcher threads. Called after
    /// every topic creation (the cluster wires this to HostStream).
    pub fn refresh(self: &Arc<Self>) {
        for (leader_replica_node, log) in self.broker.take_new_follower_targets() {
            self.targets.lock().entry(leader_replica_node).or_default().push(log);
            let mut threads = self.threads.lock();
            threads.entry(leader_replica_node).or_insert_with(|| {
                let me = Arc::clone(self);
                std::thread::Builder::new()
                    .name(format!(
                        "replica-fetcher-{}-from-{}",
                        self.node.raw(),
                        leader_replica_node.raw()
                    ))
                    .spawn(move || me.fetch_loop(leader_replica_node))
                    .expect("spawn replica fetcher")
            });
        }
    }

    fn fetch_loop(&self, leader: NodeId) {
        while !self.shutdown.load(Ordering::SeqCst) {
            let logs: Vec<Arc<PartitionLog>> =
                self.targets.lock().get(&leader).cloned().unwrap_or_default();
            if logs.is_empty() {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            let entries: Vec<FollowerFetchEntry> = logs
                .iter()
                .map(|l| FollowerFetchEntry {
                    stream: l.stream(),
                    partition: l.partition(),
                    fetch_offset: l.leo(),
                })
                .collect();
            let req = FollowerFetchRequest {
                follower: self.node,
                max_bytes_per_partition: self.max_bytes_per_partition,
                entries,
            };
            // The leader parks empty fetches for up to fetch.wait, so the
            // timeout must comfortably exceed it.
            let resp = self.client.call(
                leader,
                OpCode::FollowerFetch,
                req.encode(),
                Duration::from_secs(10),
            );
            match resp {
                Ok(payload) => {
                    let Ok(resp) = FollowerFetchResponse::decode(&payload) else { continue };
                    for r in resp.results {
                        if let Some(log) = logs
                            .iter()
                            .find(|l| l.stream() == r.stream && l.partition() == r.partition)
                        {
                            // One storage write per partition with data —
                            // the small I/Os of one-log-per-partition.
                            if self.io_cost_ns > 0 && !r.data.is_empty() {
                                kera_common::timing::spin_for_ns(self.io_cost_ns);
                            }
                            let _ = log.append_follower(&r.data, r.high_watermark);
                        }
                    }
                }
                Err(_) => {
                    // Leader unreachable: back off briefly and retry
                    // (real Kafka would trigger a leader election).
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    /// Stops all fetcher threads.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let mut threads = self.threads.lock();
        for (_, t) in threads.drain() {
            let _ = t.join();
        }
    }
}
