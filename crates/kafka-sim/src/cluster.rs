//! In-process Kafka-style cluster assembly.
//!
//! Node id scheme (shared fabric layout with `kera_broker::cluster` so
//! the same client stack talks to both systems):
//! coordinator = 0, broker `i` = `1 + i`, replica service of broker `i` =
//! `3001 + i`, clients = `2001 + i`.

use std::collections::HashMap;
use std::sync::Arc;

use kera_common::config::ClusterConfig;
use kera_common::ids::NodeId;
use kera_common::Result;
use kera_obs::{NodeObs, RegistrySnapshot};
use kera_rpc::{InMemNetwork, NodeRuntime, NullService};
use parking_lot::Mutex;

use crate::broker::{KafkaBrokerService, KafkaReplicaService, KafkaTuning, TopicStore};
use crate::coordinator::KafkaCoordinator;
use crate::fetcher::FetcherRunner;

pub const COORDINATOR: NodeId = NodeId(0);

pub const fn broker_node(i: u32) -> NodeId {
    NodeId(1 + i)
}

pub const fn replica_node(i: u32) -> NodeId {
    NodeId(3001 + i)
}

pub const fn client_node(i: u32) -> NodeId {
    NodeId(2001 + i)
}

/// A running in-process Kafka-style cluster.
pub struct KafkaCluster {
    pub net: InMemNetwork,
    config: ClusterConfig,
    coordinator_rt: Option<NodeRuntime>,
    broker_rts: Vec<Option<NodeRuntime>>,
    replica_rts: Vec<Option<NodeRuntime>>,
    fetchers: Vec<Arc<FetcherRunner>>,
    pub coordinator_svc: Arc<KafkaCoordinator>,
    pub broker_svcs: Vec<Arc<KafkaBrokerService>>,
    pub stores: Vec<Arc<TopicStore>>,
    node_obs: Vec<Arc<NodeObs>>,
    client_obs: Mutex<Vec<Arc<NodeObs>>>,
}

/// Same gate as `kera_broker::cluster`: flight-recorder dumps are opt-in
/// via `KERA_FLIGHTREC` so ordinary unit tests never install a panic hook.
fn flightrec_requested() -> bool {
    std::env::var("KERA_FLIGHTREC").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
}

impl KafkaCluster {
    pub fn start(config: ClusterConfig, mut tuning: KafkaTuning) -> Result<KafkaCluster> {
        config.validate()?;
        // The cluster-level IO cost model applies unless the tuning
        // already sets one explicitly.
        if tuning.io_cost_ns == 0 {
            tuning.io_cost_ns = config.io_cost_ns;
        }
        let net = InMemNetwork::new(config.network);
        let b = config.brokers;
        let broker_ids: Vec<NodeId> = (0..b).map(broker_node).collect();
        let replica_node_of: HashMap<NodeId, NodeId> =
            (0..b).map(|i| (broker_node(i), replica_node(i))).collect();

        let mut stores = Vec::with_capacity(b as usize);
        let mut broker_svcs = Vec::with_capacity(b as usize);
        let mut broker_rts = Vec::with_capacity(b as usize);
        let mut replica_rts = Vec::with_capacity(b as usize);
        let mut fetchers = Vec::with_capacity(b as usize);

        let mut node_obs: Vec<Arc<NodeObs>> = Vec::new();
        let flightrec = flightrec_requested();
        let make_obs = |id: NodeId| -> Arc<NodeObs> {
            let obs = NodeObs::new(id.raw(), config.observability);
            if flightrec {
                kera_obs::register_for_dump(obs.recorder());
            }
            obs
        };

        for i in 0..b {
            let broker_obs = make_obs(broker_node(i));
            let replica_obs = make_obs(replica_node(i));
            node_obs.push(Arc::clone(&broker_obs));
            node_obs.push(Arc::clone(&replica_obs));
            let store =
                TopicStore::new_with_obs(broker_node(i), tuning, Arc::clone(&broker_obs));
            let broker_svc = KafkaBrokerService::new(Arc::clone(&store), replica_node_of.clone());
            let replica_svc = KafkaReplicaService::new(Arc::clone(&store));

            let broker_rt = NodeRuntime::start_with_obs(
                Arc::new(net.register(broker_node(i))),
                Arc::clone(&broker_svc) as Arc<dyn kera_rpc::Service>,
                config.worker_threads,
                config.retry,
                broker_obs,
            );
            // The replica service gets its own small worker pool so
            // replication can never be starved by blocked produce workers.
            let replica_rt = NodeRuntime::start_with_obs(
                Arc::new(net.register(replica_node(i))),
                replica_svc as Arc<dyn kera_rpc::Service>,
                2.max(config.worker_threads / 2),
                config.retry,
                replica_obs,
            );

            let fetcher = FetcherRunner::new(
                broker_node(i),
                broker_rt.client(),
                Arc::clone(&broker_svc),
                tuning.fetch_max_bytes_per_partition,
                tuning.io_cost_ns,
            );
            {
                // Weak: the callback must not create a reference cycle
                // (service -> callback -> fetcher -> service) that would
                // pin every partition log forever.
                let f = Arc::downgrade(&fetcher);
                broker_svc.set_on_host(Box::new(move || {
                    if let Some(f) = f.upgrade() {
                        f.refresh();
                    }
                }));
            }

            stores.push(store);
            broker_svcs.push(broker_svc);
            broker_rts.push(Some(broker_rt));
            replica_rts.push(Some(replica_rt));
            fetchers.push(fetcher);
        }

        let coordinator_svc = KafkaCoordinator::new(COORDINATOR, broker_ids);
        let coordinator_obs = make_obs(COORDINATOR);
        node_obs.push(Arc::clone(&coordinator_obs));
        let coordinator_rt = NodeRuntime::start_with_obs(
            Arc::new(net.register(COORDINATOR)),
            Arc::clone(&coordinator_svc) as Arc<dyn kera_rpc::Service>,
            2,
            config.retry,
            coordinator_obs,
        );
        coordinator_svc.attach_client(coordinator_rt.client());

        Ok(KafkaCluster {
            net,
            config,
            coordinator_rt: Some(coordinator_rt),
            broker_rts,
            replica_rts,
            fetchers,
            coordinator_svc,
            broker_svcs,
            stores,
            node_obs,
            client_obs: Mutex::named("cluster.client_obs", Vec::new()),
        })
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    pub fn coordinator(&self) -> NodeId {
        COORDINATOR
    }

    /// The Kafka-sim coordinator is never replicated; this exists so
    /// replica-aware harness code treats both systems uniformly.
    pub fn coordinators(&self) -> Vec<NodeId> {
        vec![COORDINATOR]
    }

    pub fn brokers(&self) -> Vec<NodeId> {
        (0..self.config.brokers).map(broker_node).collect()
    }

    /// Registers a pure client node.
    pub fn client(&self, i: u32) -> NodeRuntime {
        let obs = NodeObs::new(client_node(i).raw(), self.config.observability);
        if flightrec_requested() {
            kera_obs::register_for_dump(obs.recorder());
        }
        self.client_obs.lock().push(Arc::clone(&obs));
        NodeRuntime::start_with_obs(
            Arc::new(self.net.register(client_node(i))),
            Arc::new(NullService),
            1,
            self.config.retry,
            obs,
        )
    }

    /// Per-node observability handles (brokers, replicas, coordinator).
    pub fn node_obs(&self) -> &[Arc<NodeObs>] {
        &self.node_obs
    }

    /// Aggregated metrics across every node (and every client registered
    /// through [`KafkaCluster::client`]). Per-node `node` labels keep the
    /// merged keys disjoint.
    pub fn metrics_snapshot(&self) -> RegistrySnapshot {
        let mut snap = RegistrySnapshot::default();
        for obs in &self.node_obs {
            snap.merge(&obs.registry().snapshot());
        }
        for obs in self.client_obs.lock().iter() {
            snap.merge(&obs.registry().snapshot());
        }
        snap
    }

    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // Stop fetchers first so they don't spin against dead leaders.
        for f in &self.fetchers {
            f.shutdown();
        }
        if let Some(rt) = self.coordinator_rt.take() {
            rt.shutdown();
        }
        for rt in self.broker_rts.iter_mut().filter_map(Option::take) {
            rt.shutdown();
        }
        for rt in self.replica_rts.iter_mut().filter_map(Option::take) {
            rt.shutdown();
        }
    }
}

impl Drop for KafkaCluster {
    fn drop(&mut self) {
        // Idempotent: a cluster dropped on an error path still joins all
        // of its threads (the fetchers hold self-referential Arcs and
        // would otherwise live — and pin broker state — forever).
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use kera_common::config::{ReplicationConfig, StreamConfig, VirtualLogPolicy};
    use kera_common::ids::{ConsumerId, ProducerId, StreamId, StreamletId};
    use kera_wire::chunk::{ChunkBuilder, ChunkIter};
    use kera_wire::cursor::SlotCursor;
    use kera_wire::frames::OpCode;
    use kera_wire::messages::*;
    use kera_wire::record::Record;
    use std::time::Duration;

    const T: Duration = Duration::from_secs(10);

    fn topic(id: u32, partitions: u32, factor: u32) -> StreamConfig {
        StreamConfig {
            id: StreamId(id),
            streamlets: partitions,
            active_groups: 1,
            segments_per_group: 1,
            segment_size: 1 << 20,
            replication: ReplicationConfig {
                factor,
                // Ignored by kafka-sim (one log per partition, always).
                policy: VirtualLogPolicy::PerStreamlet,
                vseg_size: 1 << 20,
            },
        }
    }

    fn make_chunk(producer: u32, stream: u32, partition: u32, records: u32) -> Bytes {
        let mut b = ChunkBuilder::new(
            8192,
            ProducerId(producer),
            StreamId(stream),
            StreamletId(partition),
        );
        for i in 0..records {
            b.append(&Record::value_only(&[i as u8; 100]));
        }
        b.seal()
    }

    #[test]
    fn end_to_end_acks_all_roundtrip() {
        let cfg = ClusterConfig { brokers: 3, worker_threads: 4, ..ClusterConfig::default() };
        let tuning =
            KafkaTuning { fetch_wait: Duration::from_millis(100), ..KafkaTuning::default() };
        let cluster = KafkaCluster::start(cfg, tuning).unwrap();
        let client_rt = cluster.client(0);
        let client = client_rt.client();

        let md = StreamMetadata::decode(
            &client
                .call(
                    COORDINATOR,
                    OpCode::CreateStream,
                    CreateStreamRequest { config: topic(1, 3, 3) }.encode(),
                    T,
                )
                .unwrap(),
        )
        .unwrap();
        assert_eq!(md.placements.len(), 3);

        // Produce 2 chunks to partition 0's leader; acks=all must block
        // until both followers have pulled the data.
        let leader = md.broker_of(StreamletId(0)).unwrap();
        let chunks: Vec<Bytes> = (0..2).map(|_| make_chunk(1, 1, 0, 4)).collect();
        let mut body = Vec::new();
        for c in &chunks {
            body.extend_from_slice(c);
        }
        let resp = ProduceResponse::decode(
            &client
                .call(
                    leader,
                    OpCode::Produce,
                    ProduceRequest {
                        producer: ProducerId(1),
                        recovery: false,
                        chunk_count: 2,
                        chunks: Bytes::from(body),
                    }
                    .encode(),
                    T,
                )
                .unwrap(),
        )
        .unwrap();
        assert_eq!(resp.acks.len(), 2);
        assert_eq!(resp.acks[0].base_offset, 0);
        assert_eq!(resp.acks[1].base_offset, 4);

        // Both followers hold a copy.
        let chunk_bytes: usize = chunks.iter().map(|c| c.len()).sum();
        let mut follower_bytes = 0usize;
        for store in &cluster.stores {
            if store.node() != leader {
                if let Ok(replica) = store.replica(StreamId(1), StreamletId(0)) {
                    follower_bytes += replica.leo() as usize;
                }
            }
        }
        assert_eq!(follower_bytes, 2 * chunk_bytes);

        // Consumer fetch sees exactly the acknowledged data.
        let fr = FetchResponse::decode(
            &client
                .call(
                    leader,
                    OpCode::Fetch,
                    FetchRequest {
                        consumer: ConsumerId(0),
                        entries: vec![FetchEntry {
                            stream: StreamId(1),
                            streamlet: StreamletId(0),
                            slot: 0,
                            cursor: SlotCursor::START,
                            max_bytes: 1 << 20,
                        }],
                    }
                    .encode(),
                    T,
                )
                .unwrap(),
        )
        .unwrap();
        let got: Vec<_> =
            ChunkIter::new(&fr.results[0].data).collect::<kera_common::Result<_>>().unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got.iter().map(|c| c.records().count()).sum::<usize>(), 8);
        cluster.shutdown();
    }

    #[test]
    fn factor_above_broker_count_is_rejected() {
        let cfg = ClusterConfig { brokers: 2, ..ClusterConfig::default() };
        let cluster = KafkaCluster::start(cfg, KafkaTuning::default()).unwrap();
        let client_rt = cluster.client(0);
        let err = client_rt
            .client()
            .call(
                COORDINATOR,
                OpCode::CreateStream,
                CreateStreamRequest { config: topic(1, 1, 3) }.encode(),
                T,
            )
            .unwrap_err();
        assert!(matches!(err, kera_common::KeraError::NoCapacity(_)));
        cluster.shutdown();
    }

    #[test]
    fn r1_topic_needs_no_followers() {
        let cfg = ClusterConfig { brokers: 2, ..ClusterConfig::default() };
        let cluster = KafkaCluster::start(cfg, KafkaTuning::default()).unwrap();
        let client_rt = cluster.client(0);
        let client = client_rt.client();
        let md = StreamMetadata::decode(
            &client
                .call(
                    COORDINATOR,
                    OpCode::CreateStream,
                    CreateStreamRequest { config: topic(1, 2, 1) }.encode(),
                    T,
                )
                .unwrap(),
        )
        .unwrap();
        let leader = md.broker_of(StreamletId(0)).unwrap();
        let c = make_chunk(0, 1, 0, 3);
        let resp = ProduceResponse::decode(
            &client
                .call(
                    leader,
                    OpCode::Produce,
                    ProduceRequest {
                        producer: ProducerId(0),
                        recovery: false,
                        chunk_count: 1,
                        chunks: c,
                    }
                    .encode(),
                    T,
                )
                .unwrap(),
        )
        .unwrap();
        assert_eq!(resp.acks.len(), 1);
        cluster.shutdown();
    }

    #[test]
    fn consumers_cannot_read_above_high_watermark() {
        // Kill the followers' fetchers by never creating them: topic R3
        // on a 3-broker cluster, then crash the follower replica services
        // before producing. Produce must time out; nothing readable.
        let cfg = ClusterConfig { brokers: 3, ..ClusterConfig::default() };
        let tuning =
            KafkaTuning { ack_timeout: Duration::from_millis(300), ..KafkaTuning::default() };
        let cluster = KafkaCluster::start(cfg, tuning).unwrap();
        let client_rt = cluster.client(0);
        let client = client_rt.client();
        let md = StreamMetadata::decode(
            &client
                .call(
                    COORDINATOR,
                    OpCode::CreateStream,
                    CreateStreamRequest { config: topic(1, 1, 3) }.encode(),
                    T,
                )
                .unwrap(),
        )
        .unwrap();
        let leader = md.broker_of(StreamletId(0)).unwrap();
        // Crash the two follower brokers (their fetchers die with them).
        for i in 0..3 {
            if broker_node(i) != leader {
                cluster.net.crash(broker_node(i));
            }
        }
        std::thread::sleep(Duration::from_millis(50));
        let c = make_chunk(0, 1, 0, 2);
        let err = client
            .call(
                leader,
                OpCode::Produce,
                ProduceRequest {
                    producer: ProducerId(0),
                    recovery: false,
                    chunk_count: 1,
                    chunks: c,
                }
                .encode(),
                T,
            )
            .unwrap_err();
        assert!(matches!(err, kera_common::KeraError::Protocol(_)), "got {err}");
        let fr = FetchResponse::decode(
            &client
                .call(
                    leader,
                    OpCode::Fetch,
                    FetchRequest {
                        consumer: ConsumerId(0),
                        entries: vec![FetchEntry {
                            stream: StreamId(1),
                            streamlet: StreamletId(0),
                            slot: 0,
                            cursor: SlotCursor::START,
                            max_bytes: 1 << 20,
                        }],
                    }
                    .encode(),
                    T,
                )
                .unwrap(),
        )
        .unwrap();
        assert!(fr.results[0].data.is_empty());
        cluster.shutdown();
    }
}
