//! The Kafka-style broker: topic store, produce path with acks=all,
//! consumer fetch, and the leader side of follower fetch.
//!
//! Two services share one `TopicStore` per node, mirroring Kafka's
//! separation of client and replication traffic:
//!
//! - [`KafkaBrokerService`] — produce, consumer fetch, hosting;
//! - [`KafkaReplicaService`] — follower fetch, served from a separate
//!   node runtime so replication traffic can never be starved by worker
//!   threads blocked in acks=all waits.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use kera_common::ids::{NodeId, StreamId, StreamletId};
use kera_common::metrics::Counter;
use kera_common::{KeraError, Result};
use kera_obs::NodeObs;
use kera_rpc::{RequestContext, Service};
use kera_wire::chunk::ChunkIter;
use kera_wire::cursor::SlotCursor;
use kera_wire::frames::OpCode;
use kera_wire::messages::{
    ChunkAck, FetchRequest, FetchResponse, FetchResult, FollowerFetchRequest,
    FollowerFetchResponse, FollowerFetchResult, HostStreamRequest, ProduceRequest,
    ProduceResponse, ReplicaRole, SeekRequest, SeekResponse,
};
use parking_lot::{Condvar, Mutex, RwLock};

use crate::partition::{PartitionLog, Role};

/// Kafka-equivalent tuning knobs (the parameters the paper says "one has
/// to tune" for passive replication).
#[derive(Clone, Copy, Debug)]
pub struct KafkaTuning {
    /// `replica.fetch.wait.max.ms`: how long the leader parks an empty
    /// follower fetch before answering.
    pub fetch_wait: Duration,
    /// `replica.fetch.max.bytes` per partition.
    pub fetch_max_bytes_per_partition: u32,
    /// Produce acks=all wait bound.
    pub ack_timeout: Duration,
    /// Per-write fixed IO cost on followers, paid once per *partition*
    /// whose data a fetch delivered — each Kafka partition is its own
    /// log file (see `ClusterConfig::io_cost_ns`).
    pub io_cost_ns: u64,
}

impl Default for KafkaTuning {
    fn default() -> Self {
        Self {
            fetch_wait: Duration::from_millis(500),
            fetch_max_bytes_per_partition: 1 << 20,
            ack_timeout: Duration::from_secs(10),
            io_cost_ns: 0,
        }
    }
}

/// All partition replicas hosted on one node.
pub struct TopicStore {
    node: NodeId,
    replicas: RwLock<HashMap<(StreamId, StreamletId), Arc<PartitionLog>>>,
    /// Signalled on every leader append (wakes parked follower fetches).
    data_cv: Condvar,
    data_lock: Mutex<()>,
    tuning: KafkaTuning,
    /// Chunks ingested (leader appends; `kera.kafka.chunks_in`).
    pub chunks_in: Arc<Counter>,
    /// Records ingested (`kera.kafka.records_in`).
    pub records_in: Arc<Counter>,
    /// Bytes ingested (`kera.kafka.bytes_in`).
    pub bytes_in: Arc<Counter>,
    /// Follower fetches served (`kera.kafka.follower_fetches`).
    pub follower_fetches: Arc<Counter>,
}

impl TopicStore {
    pub fn new(node: NodeId, tuning: KafkaTuning) -> Arc<Self> {
        Self::new_with_obs(node, tuning, NodeObs::disabled(node.raw()))
    }

    /// Like [`TopicStore::new`], registering the ingestion counters in a
    /// node's metrics registry as `kera.kafka.*`.
    pub fn new_with_obs(node: NodeId, tuning: KafkaTuning, obs: Arc<NodeObs>) -> Arc<Self> {
        let reg = obs.registry();
        Arc::new(Self {
            node,
            replicas: RwLock::new(HashMap::new()),
            data_cv: Condvar::new(),
            data_lock: Mutex::new(()),
            tuning,
            chunks_in: reg.counter("kera.kafka.chunks_in", &[]),
            records_in: reg.counter("kera.kafka.records_in", &[]),
            bytes_in: reg.counter("kera.kafka.bytes_in", &[]),
            follower_fetches: reg.counter("kera.kafka.follower_fetches", &[]),
        })
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    pub fn tuning(&self) -> KafkaTuning {
        self.tuning
    }

    pub fn replica(&self, stream: StreamId, partition: StreamletId) -> Result<Arc<PartitionLog>> {
        self.replicas
            .read()
            .get(&(stream, partition))
            .cloned()
            .ok_or(KeraError::UnknownStreamlet(stream, partition))
    }

    pub fn host_replica(
        &self,
        stream: StreamId,
        partition: StreamletId,
        role: Role,
        factor: u32,
    ) -> Arc<PartitionLog> {
        let mut guard = self.replicas.write();
        Arc::clone(
            guard
                .entry((stream, partition))
                .or_insert_with(|| Arc::new(PartitionLog::new(stream, partition, role, factor))),
        )
    }

    pub fn replica_count(&self) -> usize {
        self.replicas.read().len()
    }

    fn notify_appends(&self) {
        let _g = self.data_lock.lock();
        self.data_cv.notify_all();
    }
}

/// The client-facing broker service.
pub struct KafkaBrokerService {
    store: Arc<TopicStore>,
    /// New follower assignments that the fetcher runner must pick up:
    /// (leader replica-service node, partition log).
    pending_follower_targets: Mutex<Vec<(NodeId, Arc<PartitionLog>)>>,
    /// Maps a broker data-node id to its replica-service node id (set at
    /// cluster assembly).
    replica_node_of: HashMap<NodeId, NodeId>,
    /// Invoked after each hosting change (the cluster wires this to the
    /// fetcher runner's refresh).
    on_host: Mutex<Option<Box<dyn Fn() + Send>>>,
}

impl KafkaBrokerService {
    pub fn new(store: Arc<TopicStore>, replica_node_of: HashMap<NodeId, NodeId>) -> Arc<Self> {
        Arc::new(Self {
            store,
            pending_follower_targets: Mutex::new(Vec::new()),
            replica_node_of,
            on_host: Mutex::new(None),
        })
    }

    /// Registers the hosting-change callback (fetcher refresh).
    pub fn set_on_host(&self, cb: Box<dyn Fn() + Send>) {
        *self.on_host.lock() = Some(cb);
    }

    pub fn store(&self) -> &Arc<TopicStore> {
        &self.store
    }

    /// Drains follower targets registered since the last call (the
    /// fetcher runner polls this).
    pub fn take_new_follower_targets(&self) -> Vec<(NodeId, Arc<PartitionLog>)> {
        std::mem::take(&mut *self.pending_follower_targets.lock())
    }

    fn handle_host(&self, req: HostStreamRequest) -> Result<()> {
        let factor = req.metadata.config.replication.factor;
        for a in &req.assignments {
            match a.role {
                ReplicaRole::Leader => {
                    self.store.host_replica(
                        req.metadata.config.id,
                        a.streamlet,
                        Role::Leader,
                        factor,
                    );
                }
                ReplicaRole::Follower => {
                    let log = self.store.host_replica(
                        req.metadata.config.id,
                        a.streamlet,
                        Role::Follower { leader: a.leader },
                        factor,
                    );
                    let replica_node =
                        self.replica_node_of.get(&a.leader).copied().ok_or_else(|| {
                            KeraError::Protocol(format!(
                                "no replica service known for leader {}",
                                a.leader
                            ))
                        })?;
                    self.pending_follower_targets.lock().push((replica_node, log));
                }
            }
        }
        if let Some(cb) = self.on_host.lock().as_ref() {
            cb();
        }
        Ok(())
    }

    fn handle_produce(&self, req: ProduceRequest) -> Result<ProduceResponse> {
        let mut acks = Vec::with_capacity(req.chunk_count as usize);
        // (log, end offset, factor) to wait on after all appends.
        let mut waits: Vec<(Arc<PartitionLog>, u64)> = Vec::new();
        for chunk in ChunkIter::new(&req.chunks) {
            let chunk = chunk?;
            let h = *chunk.header();
            if h.record_count == 0 {
                continue;
            }
            let log = self.store.replica(h.stream, h.streamlet)?;
            let (base, end) = log.append_leader(chunk.bytes(), h.record_count)?;
            acks.push(ChunkAck {
                stream: h.stream,
                streamlet: h.streamlet,
                group: 0,
                segment: 0,
                base_offset: base,
                records: h.record_count,
            });
            match waits.iter_mut().find(|(l, _)| Arc::ptr_eq(l, &log)) {
                Some((_, e)) => *e = (*e).max(end),
                None => waits.push((log, end)),
            }
            self.store.chunks_in.inc();
            self.store.records_in.add(u64::from(h.record_count));
            self.store.bytes_in.add(chunk.len() as u64);
        }
        // Wake parked follower fetches, then wait for acks=all.
        self.store.notify_appends();
        let timeout = self.store.tuning.ack_timeout;
        for (log, end) in waits {
            log.wait_hw(end, timeout)?;
        }
        Ok(ProduceResponse { acks })
    }

    fn handle_fetch(&self, req: FetchRequest) -> Result<FetchResponse> {
        let mut results = Vec::with_capacity(req.entries.len());
        for e in &req.entries {
            let log = self.store.replica(e.stream, e.streamlet)?;
            let data =
                log.read_chunks(u64::from(e.cursor.offset), e.max_bytes as usize, log.high_watermark());
            let cursor = SlotCursor {
                chain: 0,
                segment: 0,
                offset: e.cursor.offset + data.len() as u32,
            };
            results.push(FetchResult {
                stream: e.stream,
                streamlet: e.streamlet,
                slot: e.slot,
                cursor,
                data: Bytes::from(data),
            });
        }
        Ok(FetchResponse { results })
    }
}

impl Service for KafkaBrokerService {
    fn handle(&self, ctx: &RequestContext, payload: Bytes) -> Result<Bytes> {
        match ctx.opcode {
            OpCode::Ping => Ok(Bytes::new()),
            OpCode::HostStream => {
                let req = HostStreamRequest::decode(&payload)?;
                self.handle_host(req)?;
                Ok(Bytes::new())
            }
            OpCode::Produce => {
                let req = ProduceRequest::decode(&payload)?;
                Ok(self.handle_produce(req)?.encode())
            }
            OpCode::Fetch => {
                let req = FetchRequest::decode(&payload)?;
                self.handle_fetch(req)?.encode()
            }
            OpCode::Seek => {
                let req = SeekRequest::decode(&payload)?;
                let log = self.store.replica(req.stream, req.streamlet)?;
                let resp = match log.seek(req.record_offset) {
                    Some(byte) => SeekResponse {
                        found: true,
                        cursor: SlotCursor { chain: 0, segment: 0, offset: byte as u32 },
                    },
                    None => SeekResponse { found: false, cursor: SlotCursor::START },
                };
                Ok(resp.encode())
            }
            other => Err(KeraError::Protocol(format!("kafka broker cannot serve {other:?}"))),
        }
    }
}

/// The replication-facing service: serves follower fetches from the
/// leader's logs, parking empty fetches up to `fetch.wait.max.ms`.
pub struct KafkaReplicaService {
    store: Arc<TopicStore>,
}

impl KafkaReplicaService {
    pub fn new(store: Arc<TopicStore>) -> Arc<Self> {
        Arc::new(Self { store })
    }

    fn handle_follower_fetch(&self, req: FollowerFetchRequest) -> Result<FollowerFetchResponse> {
        let max = req.max_bytes_per_partition as usize;
        let deadline = Instant::now() + self.store.tuning.fetch_wait;
        loop {
            // Pass 1: record fetch positions (this is the replication
            // acknowledgement that advances high watermarks).
            let mut logs = Vec::with_capacity(req.entries.len());
            for e in &req.entries {
                let log = self.store.replica(e.stream, e.partition)?;
                log.record_follower_fetch(req.follower, e.fetch_offset);
                logs.push(log);
            }
            // Pass 2: collect available data.
            let mut results = Vec::with_capacity(req.entries.len());
            let mut total = 0usize;
            for (e, log) in req.entries.iter().zip(&logs) {
                let data = log.read_chunks(e.fetch_offset, max, log.leo());
                total += data.len();
                results.push(FollowerFetchResult {
                    stream: e.stream,
                    partition: e.partition,
                    high_watermark: log.high_watermark(),
                    data: Bytes::from(data),
                });
            }
            if total > 0 || Instant::now() >= deadline {
                self.store.follower_fetches.inc();
                return Ok(FollowerFetchResponse { results });
            }
            // Nothing available: park until an append or the deadline
            // (Kafka's fetch purgatory).
            let mut guard = self.store.data_lock.lock();
            let now = Instant::now();
            if now < deadline {
                self.store.data_cv.wait_for(&mut guard, deadline - now);
            }
        }
    }
}

impl Service for KafkaReplicaService {
    fn handle(&self, ctx: &RequestContext, payload: Bytes) -> Result<Bytes> {
        match ctx.opcode {
            OpCode::Ping => Ok(Bytes::new()),
            OpCode::FollowerFetch => {
                let req = FollowerFetchRequest::decode(&payload)?;
                self.handle_follower_fetch(req)?.encode()
            }
            other => Err(KeraError::Protocol(format!("replica service cannot serve {other:?}"))),
        }
    }
}
