//! Unit tests for the coordinator placement logic and the fetcher's
//! consolidation behaviour (cluster-level paths are covered by
//! `cluster::tests` and the cross-crate integration suites).

use std::sync::Arc;
use std::time::Duration;

use kera_common::config::{ClusterConfig, ReplicationConfig, StreamConfig, VirtualLogPolicy};
use kera_common::ids::{NodeId, ProducerId, StreamId, StreamletId};
use kera_rpc::{InMemNetwork, NodeRuntime, NullService};
use kera_wire::frames::OpCode;
use kera_wire::messages::{CreateStreamRequest, ReplicaRole, StreamMetadata};

use crate::broker::KafkaTuning;
use crate::cluster::{broker_node, KafkaCluster, COORDINATOR};
use crate::coordinator::KafkaCoordinator;

fn topic(id: u32, partitions: u32, factor: u32) -> StreamConfig {
    StreamConfig {
        id: StreamId(id),
        streamlets: partitions,
        active_groups: 1,
        segments_per_group: 1,
        segment_size: 1 << 20,
        replication: ReplicationConfig {
            factor,
            policy: VirtualLogPolicy::PerStreamlet,
            vseg_size: 1 << 20,
        },
    }
}

/// A coordinator with stub brokers that accept HostStream silently.
struct AcceptAll;
impl kera_rpc::Service for AcceptAll {
    fn handle(
        &self,
        _ctx: &kera_rpc::RequestContext,
        _payload: bytes::Bytes,
    ) -> kera_common::Result<bytes::Bytes> {
        Ok(bytes::Bytes::new())
    }
}

fn coordinator_fixture(
    brokers: u32,
) -> (InMemNetwork, Vec<NodeRuntime>, NodeRuntime, NodeRuntime) {
    let net = InMemNetwork::new(Default::default());
    let broker_rts: Vec<NodeRuntime> = (0..brokers)
        .map(|i| {
            NodeRuntime::start(Arc::new(net.register(broker_node(i))), Arc::new(AcceptAll), 1)
        })
        .collect();
    let svc = KafkaCoordinator::new(COORDINATOR, (0..brokers).map(broker_node).collect());
    let coord_rt = NodeRuntime::start(
        Arc::new(net.register(COORDINATOR)),
        Arc::clone(&svc) as Arc<dyn kera_rpc::Service>,
        2,
    );
    svc.attach_client(coord_rt.client());
    let client_rt =
        NodeRuntime::start(Arc::new(net.register(NodeId(5000))), Arc::new(NullService), 1);
    (net, broker_rts, coord_rt, client_rt)
}

#[test]
fn leader_placement_is_round_robin() {
    let (_net, _brokers, _coord, client) = coordinator_fixture(3);
    let md = StreamMetadata::decode(
        &client
            .client()
            .call(
                COORDINATOR,
                OpCode::CreateStream,
                CreateStreamRequest { config: topic(1, 6, 2) }.encode(),
                Duration::from_secs(2),
            )
            .unwrap(),
    )
    .unwrap();
    let leaders: Vec<u32> = md.placements.iter().map(|p| p.broker.raw()).collect();
    // Partition i -> broker 1 + (i mod 3).
    assert_eq!(leaders, vec![1, 2, 3, 1, 2, 3]);
}

#[test]
fn metadata_survives_and_duplicates_rejected() {
    let (_net, _brokers, _coord, client) = coordinator_fixture(2);
    let c = client.client();
    c.call(
        COORDINATOR,
        OpCode::CreateStream,
        CreateStreamRequest { config: topic(7, 2, 1) }.encode(),
        Duration::from_secs(2),
    )
    .unwrap();
    // Lookup works.
    let md = StreamMetadata::decode(
        &c.call(
            COORDINATOR,
            OpCode::GetMetadata,
            kera_wire::messages::GetMetadataRequest { stream: StreamId(7) }.encode(),
            Duration::from_secs(2),
        )
        .unwrap(),
    )
    .unwrap();
    assert_eq!(md.config.id, StreamId(7));
    // Duplicate create fails.
    assert!(c
        .call(
            COORDINATOR,
            OpCode::CreateStream,
            CreateStreamRequest { config: topic(7, 2, 1) }.encode(),
            Duration::from_secs(2),
        )
        .is_err());
}

#[test]
fn follower_ring_wraps_and_never_includes_leader() {
    // Use a real cluster so HostStream assignments are applied, then
    // inspect the stores.
    let cluster = KafkaCluster::start(
        ClusterConfig { brokers: 4, worker_threads: 2, ..ClusterConfig::default() },
        KafkaTuning { fetch_wait: Duration::from_millis(20), ..KafkaTuning::default() },
    )
    .unwrap();
    let rt = cluster.client(0);
    rt.client()
        .call(
            COORDINATOR,
            OpCode::CreateStream,
            CreateStreamRequest { config: topic(1, 4, 3) }.encode(),
            Duration::from_secs(5),
        )
        .unwrap();
    // Every broker hosts its leader partitions plus follower copies; a
    // partition's replicas live on 3 distinct brokers.
    for p in 0..4u32 {
        let holders: Vec<u32> = (0..4)
            .filter(|&b| {
                cluster.stores[b as usize].replica(StreamId(1), StreamletId(p)).is_ok()
            })
            .collect();
        assert_eq!(holders.len(), 3, "partition {p} must have 3 replicas: {holders:?}");
    }
    // Leaders match placement.
    for (i, store) in cluster.stores.iter().enumerate() {
        for p in 0..4u32 {
            if let Ok(replica) = store.replica(StreamId(1), StreamletId(p)) {
                let is_leader = matches!(replica.role(), crate::partition::Role::Leader);
                assert_eq!(is_leader, p as usize % 4 == i);
            }
        }
    }
    cluster.shutdown();
}

#[test]
fn fetchers_replicate_and_hw_advances_without_producers_waiting() {
    // acks=1 style check: R2 topic; produce with factor 2 blocks until
    // the fetcher has pulled — verify the fetcher alone (no consumer
    // traffic) advances replication.
    let cluster = KafkaCluster::start(
        ClusterConfig { brokers: 2, worker_threads: 2, ..ClusterConfig::default() },
        KafkaTuning { fetch_wait: Duration::from_millis(20), ..KafkaTuning::default() },
    )
    .unwrap();
    let rt = cluster.client(0);
    let client = rt.client();
    client
        .call(
            COORDINATOR,
            OpCode::CreateStream,
            CreateStreamRequest { config: topic(1, 1, 2) }.encode(),
            Duration::from_secs(5),
        )
        .unwrap();
    let mut b = kera_wire::chunk::ChunkBuilder::new(
        2048,
        ProducerId(0),
        StreamId(1),
        StreamletId(0),
    );
    b.append(&kera_wire::record::Record::value_only(&[1u8; 64]));
    let chunk = b.seal();
    let req = kera_wire::messages::ProduceRequest {
        producer: ProducerId(0),
        recovery: false,
        chunk_count: 1,
        chunks: chunk.clone(),
    };
    // This produce only acks once the follower pulled the data.
    client
        .call(broker_node(0), OpCode::Produce, req.encode(), Duration::from_secs(5))
        .unwrap();
    let leader = cluster.stores[0].replica(StreamId(1), StreamletId(0)).unwrap();
    assert_eq!(leader.high_watermark(), leader.leo());
    let follower = cluster.stores[1].replica(StreamId(1), StreamletId(0)).unwrap();
    assert_eq!(follower.leo(), leader.leo(), "follower holds the full log");
    cluster.shutdown();
}

#[test]
fn roles_are_reported() {
    use crate::partition::{PartitionLog, Role};
    let l = PartitionLog::new(StreamId(1), StreamletId(0), Role::Leader, 2);
    assert!(matches!(l.role(), Role::Leader));
    let f = PartitionLog::new(
        StreamId(1),
        StreamletId(0),
        Role::Follower { leader: NodeId(3) },
        2,
    );
    match f.role() {
        Role::Follower { leader } => assert_eq!(leader, NodeId(3)),
        _ => panic!("wrong role"),
    }
    // Appending to a follower as leader is rejected.
    let mut b = kera_wire::chunk::ChunkBuilder::new(
        1024,
        ProducerId(0),
        StreamId(1),
        StreamletId(0),
    );
    b.append(&kera_wire::record::Record::value_only(b"x"));
    let chunk = b.seal();
    assert!(f.append_leader(&chunk, 1).is_err());
}

#[test]
fn seek_finds_chunk_boundaries() {
    use crate::partition::{PartitionLog, Role};
    let log = PartitionLog::new(StreamId(1), StreamletId(0), Role::Leader, 1);
    let mut offsets = Vec::new();
    for i in 0..5u64 {
        let mut b = kera_wire::chunk::ChunkBuilder::new(
            1024,
            ProducerId(0),
            StreamId(1),
            StreamletId(0),
        );
        for _ in 0..10 {
            b.append(&kera_wire::record::Record::value_only(&[i as u8; 20]));
        }
        let chunk = b.seal();
        let before = log.leo();
        log.append_leader(&chunk, 10).unwrap();
        offsets.push(before);
    }
    assert_eq!(log.seek(0), Some(offsets[0]));
    assert_eq!(log.seek(9), Some(offsets[0]));
    assert_eq!(log.seek(10), Some(offsets[1]));
    assert_eq!(log.seek(25), Some(offsets[2]));
    assert_eq!(log.seek(49), Some(offsets[4]));
    assert_eq!(log.seek(1000), Some(offsets[4]), "clamps to last chunk");
    let empty = PartitionLog::new(StreamId(1), StreamletId(1), Role::Leader, 1);
    assert_eq!(empty.seek(0), None);
}

#[test]
fn host_assignment_roles_parse() {
    // ReplicaRole is exercised end-to-end elsewhere; keep the enum's
    // wire stability pinned here.
    assert_eq!(ReplicaRole::Leader as u8, 0);
    assert_eq!(ReplicaRole::Follower as u8, 1);
}
