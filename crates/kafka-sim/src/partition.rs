//! The per-partition replicated log (paper Fig. 2).
//!
//! "Each new record of a stream's partition is appended to the log";
//! offsets here are *byte* offsets into the log (chunk-aligned), with
//! logical record offsets carried inside the chunk headers exactly as in
//! KerA. The leader tracks each follower's log-end offset (learned from
//! its fetch requests) and advances the high watermark to the minimum;
//! producers using acks=all block until the high watermark covers their
//! batch.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use kera_common::ids::{NodeId, SegmentId, StreamId, StreamletId};
use kera_common::{KeraError, Result};
use kera_wire::chunk::{self, CHUNK_HEADER};
use parking_lot::{Condvar, Mutex};

/// Role of this replica.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    Leader,
    Follower { leader: NodeId },
}

struct LogInner {
    data: Vec<u8>,
    /// Next logical record offset (leader only).
    next_record_offset: u64,
    /// Follower → acknowledged log-end byte offset (leader only).
    follower_leo: HashMap<NodeId, u64>,
    /// Per-chunk offset index: (base record offset, byte offset).
    index: Vec<(u64, u64)>,
}

/// One replica (leader or follower copy) of a partition log.
pub struct PartitionLog {
    stream: StreamId,
    partition: StreamletId,
    role: Role,
    /// Replication factor of the topic.
    factor: u32,
    inner: Mutex<LogInner>,
    /// Log end offset in bytes (published).
    leo: AtomicU64,
    /// High watermark in bytes (consumer-visible, durable).
    hw: AtomicU64,
    /// Signalled when the high watermark advances (producer acks).
    hw_cv: Condvar,
    hw_lock: Mutex<()>,
}

impl PartitionLog {
    pub fn new(stream: StreamId, partition: StreamletId, role: Role, factor: u32) -> Self {
        Self {
            stream,
            partition,
            role,
            factor,
            inner: Mutex::named("ksim.partition", LogInner {
                data: Vec::new(),
                next_record_offset: 0,
                follower_leo: HashMap::new(),
                index: Vec::new(),
            }),
            leo: AtomicU64::new(0),
            hw: AtomicU64::new(0),
            hw_cv: Condvar::new(),
            hw_lock: Mutex::named("ksim.hw", ()),
        }
    }

    #[inline]
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    #[inline]
    pub fn partition(&self) -> StreamletId {
        self.partition
    }

    #[inline]
    pub fn role(&self) -> Role {
        self.role
    }

    /// Log end offset (bytes appended).
    #[inline]
    pub fn leo(&self) -> u64 {
        self.leo.load(Ordering::Acquire)
    }

    /// High watermark (bytes consumers may read).
    #[inline]
    pub fn high_watermark(&self) -> u64 {
        self.hw.load(Ordering::Acquire)
    }

    /// Leader append: patches the chunk's broker-assigned fields (group 0
    /// / segment 0 — Kafka has no sub-partitions) and returns `(base
    /// record offset, log end after append)`.
    pub fn append_leader(&self, chunk_bytes: &[u8], records: u32) -> Result<(u64, u64)> {
        debug_assert!(chunk_bytes.len() >= CHUNK_HEADER);
        if !matches!(self.role, Role::Leader) {
            return Err(KeraError::Protocol("append to a follower replica".into()));
        }
        let mut inner = self.inner.lock();
        let base = inner.next_record_offset;
        inner.next_record_offset += u64::from(records);
        let start = inner.data.len();
        inner.index.push((base, start as u64));
        inner.data.extend_from_slice(chunk_bytes);
        chunk::assign_in_place(
            &mut inner.data[start..],
            kera_common::ids::GroupId(0),
            SegmentId(0),
            base,
        );
        let end = inner.data.len() as u64;
        drop(inner);
        self.leo.store(end, Ordering::Release);
        if self.factor == 1 {
            self.advance_hw(end);
        }
        Ok((base, end))
    }

    /// Follower append: raw log bytes copied from the leader at exactly
    /// our current log end (leaders serve from the offset we asked for).
    pub fn append_follower(&self, bytes: &[u8], high_watermark: u64) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.data.extend_from_slice(bytes);
        let end = inner.data.len() as u64;
        drop(inner);
        self.leo.store(end, Ordering::Release);
        // Followers adopt the leader's HW (bounded by what they hold).
        self.advance_hw(high_watermark.min(end));
        Ok(())
    }

    /// Leader: record a follower's fetch position (== its log-end offset)
    /// and recompute the high watermark. Returns true if the HW advanced.
    pub fn record_follower_fetch(&self, follower: NodeId, fetch_offset: u64) -> bool {
        let mut inner = self.inner.lock();
        inner.follower_leo.insert(follower, fetch_offset);
        // HW = min(leader LEO, every follower's LEO) once all expected
        // followers have checked in at least once.
        let expected = (self.factor - 1) as usize;
        if inner.follower_leo.len() < expected {
            return false;
        }
        let min_follower = inner.follower_leo.values().copied().min().unwrap_or(0);
        drop(inner);
        let hw = min_follower.min(self.leo());
        self.advance_hw(hw)
    }

    fn advance_hw(&self, new_hw: u64) -> bool {
        let prev = self.hw.fetch_max(new_hw, Ordering::AcqRel);
        if new_hw > prev {
            let _g = self.hw_lock.lock();
            self.hw_cv.notify_all();
            true
        } else {
            false
        }
    }

    /// Blocks until the high watermark reaches `target` (acks=all) or the
    /// timeout expires.
    pub fn wait_hw(&self, target: u64, timeout: Duration) -> Result<()> {
        let deadline = Instant::now() + timeout;
        let mut guard = self.hw_lock.lock();
        loop {
            if self.high_watermark() >= target {
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(KeraError::Timeout { op: "acks=all high-watermark wait" });
            }
            self.hw_cv.wait_for(&mut guard, deadline - now);
        }
    }

    /// Byte offset of the chunk covering `record_offset` (leader's
    /// offset index). `None` when the log is empty.
    pub fn seek(&self, record_offset: u64) -> Option<u64> {
        let inner = self.inner.lock();
        if inner.index.is_empty() {
            return None;
        }
        let idx = inner.index.partition_point(|&(b, _)| b <= record_offset);
        Some(inner.index[idx.max(1) - 1].1)
    }

    /// Reads whole chunks in `[offset, min(limit_to, leo))`, up to
    /// `max_bytes` (at least one chunk if available). Used both by
    /// consumer fetch (`limit_to = hw`) and follower fetch
    /// (`limit_to = leo`).
    pub fn read_chunks(&self, offset: u64, max_bytes: usize, limit_to: u64) -> Vec<u8> {
        let inner = self.inner.lock();
        let end = (limit_to as usize).min(inner.data.len());
        let start = offset as usize;
        if start >= end {
            return Vec::new();
        }
        let window = &inner.data[start..end];
        let mut take = 0usize;
        while take + CHUNK_HEADER <= window.len() {
            let chunk_len = u32::from_le_bytes(
                window[take + chunk::field::CHUNK_LEN..take + chunk::field::CHUNK_LEN + 4]
                    .try_into()
                    .unwrap(),
            ) as usize;
            if take + chunk_len > window.len() {
                break;
            }
            if take > 0 && take + chunk_len > max_bytes {
                break;
            }
            take += chunk_len;
            if take >= max_bytes {
                break;
            }
        }
        window[..take].to_vec()
    }
}

impl std::fmt::Debug for PartitionLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionLog")
            .field("stream", &self.stream)
            .field("partition", &self.partition)
            .field("role", &self.role)
            .field("leo", &self.leo())
            .field("hw", &self.high_watermark())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kera_common::ids::ProducerId;
    use kera_wire::chunk::{ChunkBuilder, ChunkIter, ChunkView};
    use kera_wire::record::Record;

    fn chunk(records: u32) -> bytes::Bytes {
        let mut b = ChunkBuilder::new(8192, ProducerId(0), StreamId(1), StreamletId(0));
        for _ in 0..records {
            b.append(&Record::value_only(&[3u8; 80]));
        }
        b.seal()
    }

    fn leader(factor: u32) -> PartitionLog {
        PartitionLog::new(StreamId(1), StreamletId(0), Role::Leader, factor)
    }

    #[test]
    fn r1_append_advances_hw_immediately() {
        let log = leader(1);
        let c = chunk(4);
        let (base, end) = log.append_leader(&c, 4).unwrap();
        assert_eq!(base, 0);
        assert_eq!(end, c.len() as u64);
        assert_eq!(log.high_watermark(), end);
        log.wait_hw(end, Duration::from_millis(10)).unwrap();
    }

    #[test]
    fn r3_hw_waits_for_both_followers() {
        let log = leader(3);
        let c = chunk(2);
        let (_, end) = log.append_leader(&c, 2).unwrap();
        assert_eq!(log.high_watermark(), 0);
        // First follower checks in at `end` — not enough.
        assert!(!log.record_follower_fetch(NodeId(2), end));
        assert_eq!(log.high_watermark(), 0);
        // Second follower still at 0: HW stays 0.
        assert!(!log.record_follower_fetch(NodeId(3), 0));
        assert_eq!(log.high_watermark(), 0);
        // Second follower catches up.
        assert!(log.record_follower_fetch(NodeId(3), end));
        assert_eq!(log.high_watermark(), end);
    }

    #[test]
    fn wait_hw_blocks_and_wakes() {
        let log = std::sync::Arc::new(leader(2));
        let c = chunk(1);
        let (_, end) = log.append_leader(&c, 1).unwrap();
        let waiter = {
            let log = std::sync::Arc::clone(&log);
            std::thread::spawn(move || log.wait_hw(end, Duration::from_secs(2)))
        };
        std::thread::sleep(Duration::from_millis(30));
        log.record_follower_fetch(NodeId(2), end);
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn wait_hw_times_out() {
        let log = leader(3);
        let c = chunk(1);
        let (_, end) = log.append_leader(&c, 1).unwrap();
        let err = log.wait_hw(end, Duration::from_millis(30)).unwrap_err();
        assert!(matches!(err, KeraError::Timeout { .. }));
    }

    #[test]
    fn consumer_reads_stop_at_hw() {
        let log = leader(2);
        let c = chunk(3);
        log.append_leader(&c, 3).unwrap();
        log.append_leader(&c, 3).unwrap();
        // Nothing below HW yet.
        assert!(log.read_chunks(0, 1 << 20, log.high_watermark()).is_empty());
        // Follower acks first chunk only.
        log.record_follower_fetch(NodeId(2), c.len() as u64);
        let visible = log.read_chunks(0, 1 << 20, log.high_watermark());
        assert_eq!(visible.len(), c.len());
        // Follower fetch itself may read to LEO.
        let for_follower = log.read_chunks(0, 1 << 20, log.leo());
        assert_eq!(for_follower.len(), 2 * c.len());
    }

    #[test]
    fn base_offsets_assigned_in_order() {
        let log = leader(1);
        let c = chunk(5);
        log.append_leader(&c, 5).unwrap();
        log.append_leader(&c, 5).unwrap();
        let data = log.read_chunks(0, usize::MAX, log.leo());
        let offsets: Vec<u64> = ChunkIter::new(&data)
            .map(|c| c.unwrap().header().base_offset)
            .collect();
        assert_eq!(offsets, vec![0, 5]);
    }

    #[test]
    fn follower_append_replicates_bytes_and_adopts_hw() {
        let l = leader(2);
        let f = PartitionLog::new(StreamId(1), StreamletId(0), Role::Follower { leader: NodeId(1) }, 2);
        let c = chunk(2);
        let (_, end) = l.append_leader(&c, 2).unwrap();
        let bytes = l.read_chunks(0, usize::MAX, l.leo());
        // Leader's HW not yet advanced; follower adopts min(hw, own leo).
        f.append_follower(&bytes, l.high_watermark()).unwrap();
        assert_eq!(f.leo(), end);
        assert_eq!(f.high_watermark(), 0);
        l.record_follower_fetch(NodeId(2), end);
        f.append_follower(&[], l.high_watermark()).unwrap();
        assert_eq!(f.high_watermark(), end);
        // The replicated chunk parses and verifies on the follower.
        let copy = f.read_chunks(0, usize::MAX, f.high_watermark());
        let view = ChunkView::parse(&copy).unwrap();
        view.verify().unwrap();
    }

    #[test]
    fn read_chunks_respects_max_bytes_boundaries() {
        let log = leader(1);
        let c = chunk(1);
        for _ in 0..5 {
            log.append_leader(&c, 1).unwrap();
        }
        let one = log.read_chunks(0, 1, log.high_watermark());
        assert_eq!(one.len(), c.len());
        let two = log.read_chunks(0, c.len() * 2, log.high_watermark());
        assert_eq!(two.len(), c.len() * 2);
    }
}
