//! Topic creation with leader/follower placement.
//!
//! Partition `i` of a topic is led by broker `i mod B`; its `R − 1`
//! followers are the next brokers in the ring — Kafka's default
//! round-robin replica assignment.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use bytes::Bytes;
use kera_common::ids::{NodeId, StreamId, StreamletId};
use kera_common::{KeraError, Result};
use kera_rpc::{RequestContext, RpcClient, Service};
use kera_wire::frames::OpCode;
use kera_wire::messages::{
    CreateStreamRequest, GetMetadataRequest, HostAssignment, HostStreamRequest, ReplicaRole,
    StreamMetadata, StreamletPlacement,
};
use parking_lot::Mutex;

const HOST_TIMEOUT: Duration = Duration::from_secs(5);

/// The Kafka-style coordinator (the controller, roughly).
pub struct KafkaCoordinator {
    node: NodeId,
    brokers: Vec<NodeId>,
    topics: Mutex<HashMap<StreamId, StreamMetadata>>,
    client: OnceLock<RpcClient>,
}

impl KafkaCoordinator {
    pub fn new(node: NodeId, brokers: Vec<NodeId>) -> Arc<Self> {
        Arc::new(Self { node, brokers, topics: Mutex::new(HashMap::new()), client: OnceLock::new() })
    }

    pub fn attach_client(&self, client: RpcClient) {
        let _ = self.client.set(client);
    }

    fn client(&self) -> Result<&RpcClient> {
        self.client
            .get()
            .ok_or_else(|| KeraError::Protocol("kafka coordinator not attached".into()))
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    fn handle_create(&self, req: CreateStreamRequest) -> Result<StreamMetadata> {
        req.config.validate()?;
        let b = self.brokers.len() as u32;
        if req.config.replication.factor > b {
            return Err(KeraError::NoCapacity(format!(
                "replication factor {} exceeds broker count {b}",
                req.config.replication.factor
            )));
        }
        {
            let topics = self.topics.lock();
            if topics.contains_key(&req.config.id) {
                return Err(KeraError::StreamExists(req.config.id));
            }
        }
        // Leader placement + follower rings.
        let mut placements = Vec::with_capacity(req.config.streamlets as usize);
        let mut per_broker: HashMap<NodeId, Vec<HostAssignment>> = HashMap::new();
        for p in 0..req.config.streamlets {
            let leader_idx = (p % b) as usize;
            let leader = self.brokers[leader_idx];
            placements.push(StreamletPlacement { streamlet: StreamletId(p), broker: leader });
            per_broker.entry(leader).or_default().push(HostAssignment {
                streamlet: StreamletId(p),
                role: ReplicaRole::Leader,
                leader,
            });
            for f in 1..req.config.replication.factor {
                let follower = self.brokers[(leader_idx + f as usize) % b as usize];
                per_broker.entry(follower).or_default().push(HostAssignment {
                    streamlet: StreamletId(p),
                    role: ReplicaRole::Follower,
                    leader,
                });
            }
        }
        let metadata = StreamMetadata { config: req.config.clone(), placements };
        self.topics.lock().insert(req.config.id, metadata.clone());

        let client = self.client()?;
        let calls: Vec<_> = per_broker
            .into_iter()
            .map(|(broker, assignments)| {
                let host = HostStreamRequest { metadata: metadata.clone(), assignments };
                client.call_async(broker, OpCode::HostStream, host.encode())
            })
            .collect();
        for c in calls {
            c.wait(HOST_TIMEOUT)?;
        }
        Ok(metadata)
    }

    fn handle_metadata(&self, req: GetMetadataRequest) -> Result<StreamMetadata> {
        self.topics
            .lock()
            .get(&req.stream)
            .cloned()
            .ok_or(KeraError::UnknownStream(req.stream))
    }
}

impl Service for KafkaCoordinator {
    fn handle(&self, ctx: &RequestContext, payload: Bytes) -> Result<Bytes> {
        match ctx.opcode {
            OpCode::Ping => Ok(Bytes::new()),
            OpCode::CreateStream => {
                let req = CreateStreamRequest::decode(&payload)?;
                Ok(self.handle_create(req)?.encode())
            }
            OpCode::GetMetadata => {
                let req = GetMetadataRequest::decode(&payload)?;
                Ok(self.handle_metadata(req)?.encode())
            }
            other => {
                Err(KeraError::Protocol(format!("kafka coordinator cannot serve {other:?}")))
            }
        }
    }
}
