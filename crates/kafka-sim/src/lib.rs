//! A from-scratch Kafka-style baseline (paper §V-B).
//!
//! The comparison system the paper evaluates against: each stream (topic)
//! is split into a fixed number of partitions, **each partition backed by
//! one replicated log**. One broker leads each partition; follower
//! brokers run *replica fetcher* threads that **pull** from leaders
//! (passive replication, `fetch.min.bytes` / `fetch.wait.max.ms`
//! semantics). A produce with acks=all completes once the partition's
//! high watermark — the minimum log-end offset across in-sync replicas,
//! learned from follower fetch requests — covers the appended batch.
//! Consumers may only read below the high watermark.
//!
//! The baseline shares the wire format, transport, RPC stack and client
//! stack with KerA, so benchmark differences isolate the replication
//! architecture (per-partition logs + pull vs. shared virtual logs +
//! push).
//!
//! - [`partition`] — the per-partition replicated log: leader state, log
//!   end offset, high watermark, follower progress;
//! - [`broker`] — topic store + the broker service (produce, consumer
//!   fetch, hosting) and the replica service (follower fetch);
//! - [`fetcher`] — replica fetcher threads (one per leader a broker
//!   follows, like `num.replica.fetchers = 1`);
//! - [`coordinator`] — topic creation with leader/follower placement;
//! - [`cluster`] — in-process cluster assembly mirroring
//!   `kera_broker::cluster`.

pub mod broker;
pub mod cluster;
pub mod coordinator;
pub mod fetcher;
pub mod partition;

#[cfg(test)]
mod tests;

pub use cluster::KafkaCluster;
