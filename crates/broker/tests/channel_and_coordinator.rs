//! Focused tests for the replication channel fan-out and coordinator
//! behaviours that the end-to-end suites only exercise implicitly.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use kera_broker::backup::BackupService;
use kera_broker::channel::RpcBackupChannel;
use kera_broker::cluster::{backup_node, broker_node, KeraCluster, COORDINATOR};
use kera_common::config::{ClusterConfig, ReplicationConfig, StreamConfig, VirtualLogPolicy};
use kera_common::ids::*;
use kera_common::KeraError;
use kera_rpc::{InMemNetwork, NodeRuntime, NullService};
use kera_vlog::channel::BackupChannel;
use kera_wire::chunk::ChunkBuilder;
use kera_wire::frames::OpCode;
use kera_wire::messages::{
    backup_flags, BackupWriteRequest, CreateStreamRequest, EncodedBackupWrite, GetMetadataRequest,
    ReportCrashRequest, StreamMetadata,
};
use kera_wire::record::Record;

fn chunk_bytes() -> Bytes {
    let mut b = ChunkBuilder::new(1024, ProducerId(0), StreamId(1), StreamletId(0));
    b.append(&Record::value_only(&[5u8; 64]));
    b.seal()
}

fn write_req(chunks: Bytes, count: u32) -> EncodedBackupWrite {
    EncodedBackupWrite::from_request(&BackupWriteRequest {
        source_broker: NodeId(1),
        vlog: VirtualLogId(0),
        vseg: VirtualSegmentId(0),
        vseg_offset: 0,
        flags: backup_flags::OPEN,
        vseg_checksum: 0,
        chunk_count: count,
        chunks,
    })
}

#[test]
fn channel_fans_out_to_every_backup() {
    let net = InMemNetwork::new(Default::default());
    let backups: Vec<Arc<BackupService>> =
        (0..3).map(|i| BackupService::new(NodeId(100 + i), None)).collect();
    let _rts: Vec<NodeRuntime> = backups
        .iter()
        .enumerate()
        .map(|(i, svc)| {
            NodeRuntime::start(
                Arc::new(net.register(NodeId(100 + i as u32))),
                Arc::clone(svc) as Arc<dyn kera_rpc::Service>,
                1,
            )
        })
        .collect();
    let caller = NodeRuntime::start(Arc::new(net.register(NodeId(1))), Arc::new(NullService), 1);
    let channel = RpcBackupChannel::new(caller.client(), Duration::from_secs(2));

    let c = chunk_bytes();
    let targets: Vec<NodeId> = (0..3).map(|i| NodeId(100 + i)).collect();
    let resp = channel.replicate(&targets, &write_req(c.clone(), 1)).unwrap();
    assert_eq!(resp.durable_offset as usize, c.len());
    for b in &backups {
        assert_eq!(b.bytes_held(), c.len(), "every backup must hold the batch");
        assert_eq!(b.chunks_received.get(), 1);
    }
}

#[test]
fn channel_normalizes_dead_backup_to_disconnected() {
    let net = InMemNetwork::new(Default::default());
    let alive = BackupService::new(NodeId(100), None);
    let _rt = NodeRuntime::start(
        Arc::new(net.register(NodeId(100))),
        Arc::clone(&alive) as Arc<dyn kera_rpc::Service>,
        1,
    );
    let caller = NodeRuntime::start(Arc::new(net.register(NodeId(1))), Arc::new(NullService), 1);
    let channel = RpcBackupChannel::new(caller.client(), Duration::from_millis(300));

    // NodeId(999) was never registered: the send fails fast and must be
    // reported as Disconnected(999) so the virtual log re-replicates.
    let err = channel
        .replicate(&[NodeId(100), NodeId(999)], &write_req(chunk_bytes(), 1))
        .unwrap_err();
    match err {
        KeraError::Disconnected(n) => assert_eq!(n, NodeId(999)),
        other => panic!("expected Disconnected, got {other}"),
    }
}

#[test]
fn corrupt_batch_is_rejected_by_real_backup_over_rpc() {
    let net = InMemNetwork::new(Default::default());
    let backup = BackupService::new(NodeId(100), None);
    let _rt = NodeRuntime::start(
        Arc::new(net.register(NodeId(100))),
        Arc::clone(&backup) as Arc<dyn kera_rpc::Service>,
        1,
    );
    let caller = NodeRuntime::start(Arc::new(net.register(NodeId(1))), Arc::new(NullService), 1);
    let channel = RpcBackupChannel::new(caller.client(), Duration::from_secs(1));

    let mut bad = chunk_bytes().to_vec();
    let last = bad.len() - 1;
    bad[last] ^= 0xff;
    let err = channel
        .replicate(&[NodeId(100)], &write_req(Bytes::from(bad), 1))
        .unwrap_err();
    assert!(matches!(err, KeraError::Corruption { .. }), "got {err}");
    assert_eq!(backup.bytes_held(), 0);
}

#[test]
fn coordinator_reassigns_on_crash_and_updates_metadata() {
    let mut cluster = KeraCluster::start(ClusterConfig {
        brokers: 3,
        worker_threads: 2,
        ..ClusterConfig::default()
    })
    .unwrap();
    let rt = cluster.client(0);
    let client = rt.client();
    let config = StreamConfig {
        id: StreamId(1),
        streamlets: 6,
        active_groups: 1,
        segments_per_group: 2,
        segment_size: 1 << 16,
        replication: ReplicationConfig {
            factor: 2,
            policy: VirtualLogPolicy::SharedPerBroker(2),
            vseg_size: 1 << 16,
        },
    };
    client
        .call(
            COORDINATOR,
            OpCode::CreateStream,
            CreateStreamRequest { config }.encode(),
            Duration::from_secs(5),
        )
        .unwrap();

    cluster.crash_server(0);
    let resp = client
        .call(
            COORDINATOR,
            OpCode::ReportCrash,
            ReportCrashRequest { node: broker_node(0) }.encode(),
            Duration::from_secs(5),
        )
        .unwrap();
    let reassigned = kera_wire::messages::CrashReassignmentResponse::decode(&resp).unwrap();
    // Broker 0 led streamlets 0 and 3 (6 streamlets over 3 brokers).
    assert_eq!(reassigned.reassignments.len(), 2);
    for r in &reassigned.reassignments {
        assert_ne!(r.new_broker, broker_node(0));
    }
    // Fresh metadata no longer references the dead broker.
    let md = StreamMetadata::decode(
        &client
            .call(
                COORDINATOR,
                OpCode::GetMetadata,
                GetMetadataRequest { stream: StreamId(1) }.encode(),
                Duration::from_secs(5),
            )
            .unwrap(),
    )
    .unwrap();
    assert!(md.placements.iter().all(|p| p.broker != broker_node(0)));
    // Sanity: the co-located backup id scheme holds.
    assert_eq!(backup_node(0), NodeId(1001));
    cluster.shutdown();
}
