//! The coordinator's replicated metadata log and its state machine.
//!
//! Every mutating coordinator operation is a [`MetaOp`] appended to a
//! [`MetaLog`] and applied to a [`MetaState`] only once committed (seen
//! by a quorum of replicas). The state is a deterministic fold over the
//! committed prefix: ops are *decided records* — the leader computes
//! placements and reassignments before appending — so applying them
//! never consults liveness, hash iteration order or the clock, and any
//! replica folding the same prefix holds byte-identical maps
//! (DESIGN.md §10).
//!
//! [`MetaState::snapshot`] emits a canonical (sorted) image of the fold
//! at an index, used both to compact the local log past
//! `CoordinatorConfig::snapshot_threshold` and to catch up followers
//! whose tail predates the leader's compaction horizon.

use std::collections::{HashMap, HashSet};

use kera_common::ids::{NodeId, StreamId};
use kera_wire::meta::{MetaOp, MetaRecord, MetaSnapshot};
use kera_wire::messages::StreamMetadata;

/// The coordinator state machine: membership and stream placements.
#[derive(Clone, Debug, Default)]
pub struct MetaState {
    /// Registered brokers, in registration order.
    pub brokers: Vec<NodeId>,
    /// Brokers marked dead by a committed `MarkDead`.
    pub dead: HashSet<NodeId>,
    /// Live streams with their placements.
    pub streams: HashMap<StreamId, StreamMetadata>,
}

impl MetaState {
    pub fn new() -> Self {
        Self::default()
    }

    /// Brokers currently believed alive, in registration order.
    pub fn alive_brokers(&self) -> Vec<NodeId> {
        self.brokers.iter().copied().filter(|b| !self.dead.contains(b)).collect()
    }

    /// Applies one committed op. Infallible and idempotent: the leader
    /// validated the op against the log before appending, so application
    /// is a pure map update on every replica.
    pub fn apply(&mut self, op: &MetaOp) {
        match op {
            MetaOp::RegisterBroker { node } => {
                if !self.brokers.contains(node) {
                    self.brokers.push(*node);
                }
            }
            MetaOp::CreateStream { metadata } => {
                self.streams.insert(metadata.config.id, metadata.clone());
            }
            MetaOp::DeleteStream { stream } => {
                self.streams.remove(stream);
            }
            MetaOp::MarkDead { node, reassignments } => {
                self.dead.insert(*node);
                for r in reassignments {
                    if let Some(meta) = self.streams.get_mut(&r.stream) {
                        for p in meta.placements.iter_mut() {
                            if p.streamlet == r.streamlet {
                                p.broker = r.new_broker;
                            }
                        }
                    }
                }
            }
        }
    }

    /// A canonical image of this state at log position
    /// `(last_index, last_term)`: collections are emitted in sorted
    /// order, so two replicas that folded the same prefix produce
    /// byte-identical snapshots.
    pub fn snapshot(&self, last_index: u64, last_term: u64) -> MetaSnapshot {
        let mut dead: Vec<NodeId> = self.dead.iter().copied().collect();
        dead.sort_unstable();
        let mut stream_ids: Vec<StreamId> = self.streams.keys().copied().collect();
        stream_ids.sort_unstable();
        MetaSnapshot {
            last_index,
            last_term,
            brokers: self.brokers.clone(),
            dead,
            streams: stream_ids.iter().map(|id| self.streams[id].clone()).collect(),
        }
    }

    /// Rebuilds the state a snapshot describes.
    pub fn restore(snap: &MetaSnapshot) -> Self {
        Self {
            brokers: snap.brokers.clone(),
            dead: snap.dead.iter().copied().collect(),
            streams: snap.streams.iter().map(|s| (s.config.id, s.clone())).collect(),
        }
    }
}

/// The in-memory metadata log: a compaction base (the position the last
/// snapshot covered) plus the entries after it. Indices are 1-based;
/// index 0 / term 0 denote "before the first record".
#[derive(Clone, Debug, Default)]
pub struct MetaLog {
    base_index: u64,
    base_term: u64,
    entries: Vec<MetaRecord>,
}

impl MetaLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the newest record (or the snapshot base when empty).
    pub fn last_index(&self) -> u64 {
        self.base_index + self.entries.len() as u64
    }

    /// Term of the newest record.
    pub fn last_term(&self) -> u64 {
        self.entries.last().map_or(self.base_term, |e| e.term)
    }

    /// Index the log was last compacted to (0 = never).
    pub fn base_index(&self) -> u64 {
        self.base_index
    }

    /// Number of entries currently held (after the base).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Term of the record at `index`: `Some(0)` for index 0, the base
    /// term at the base, `None` when the index is past the tail or
    /// already compacted away.
    pub fn term_at(&self, index: u64) -> Option<u64> {
        if index == 0 {
            return Some(0);
        }
        if index == self.base_index {
            return Some(self.base_term);
        }
        if index <= self.base_index || index > self.last_index() {
            return None;
        }
        Some(self.entries[(index - self.base_index - 1) as usize].term)
    }

    /// The record at `index`, if still held.
    pub fn get(&self, index: u64) -> Option<&MetaRecord> {
        if index <= self.base_index || index > self.last_index() {
            return None;
        }
        Some(&self.entries[(index - self.base_index - 1) as usize])
    }

    /// Leader append: assigns the next index.
    pub fn append(&mut self, term: u64, op: MetaOp) -> MetaRecord {
        let rec = MetaRecord { index: self.last_index() + 1, term, op };
        self.entries.push(rec.clone());
        rec
    }

    /// Follower append at the record's own index. The caller has already
    /// resolved conflicts (via [`MetaLog::truncate_from`]); records that
    /// are already present or non-contiguous are ignored.
    pub fn push(&mut self, rec: MetaRecord) {
        if rec.index == self.last_index() + 1 {
            self.entries.push(rec);
        }
    }

    /// Drops every record with `index >= from` (conflict resolution when
    /// an uncommitted suffix diverged from the new leader).
    pub fn truncate_from(&mut self, from: u64) {
        if from <= self.base_index {
            return;
        }
        let keep = (from - self.base_index - 1) as usize;
        self.entries.truncate(keep.min(self.entries.len()));
    }

    /// Clones the records with `index > from`, or `None` when `from`
    /// predates the compaction base (the caller must ship a snapshot).
    pub fn suffix_from(&self, from: u64) -> Option<Vec<MetaRecord>> {
        if from < self.base_index {
            return None;
        }
        let skip = (from - self.base_index) as usize;
        Some(self.entries[skip.min(self.entries.len())..].to_vec())
    }

    /// Iterates the records with `index > from` (e.g. apply-to-commit).
    pub fn entries_after(&self, from: u64) -> impl Iterator<Item = &MetaRecord> {
        let skip = from.saturating_sub(self.base_index) as usize;
        self.entries.iter().skip(skip)
    }

    /// Compacts: drops records up to `index` (which becomes the base).
    /// Only ever called with `index <=` the applied index, so dropped
    /// records are summarized by the caller's snapshot of the state.
    pub fn compact_to(&mut self, index: u64, term: u64) {
        if index <= self.base_index {
            return;
        }
        let drop = (index - self.base_index) as usize;
        self.entries.drain(..drop.min(self.entries.len()));
        self.base_index = index;
        self.base_term = term;
    }

    /// Follower-side snapshot install: resets the base to the snapshot
    /// position and discards every held record at or before it; records
    /// after it are dropped too when they conflict (the leader resends).
    pub fn install_snapshot(&mut self, last_index: u64, last_term: u64) {
        if last_index < self.base_index {
            return;
        }
        self.entries.clear();
        self.base_index = last_index;
        self.base_term = last_term;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kera_common::config::StreamConfig;
    use kera_common::ids::StreamletId;
    use kera_common::rng::SplitMix64;
    use kera_wire::messages::{Reassignment, StreamletPlacement};

    fn placements(brokers: &[NodeId], streamlets: u32) -> Vec<StreamletPlacement> {
        (0..streamlets)
            .map(|i| StreamletPlacement {
                streamlet: StreamletId(i),
                broker: brokers[i as usize % brokers.len()],
            })
            .collect()
    }

    fn create_op(id: u32, brokers: &[NodeId]) -> MetaOp {
        MetaOp::CreateStream {
            metadata: StreamMetadata {
                config: StreamConfig { id: StreamId(id), streamlets: 4, ..StreamConfig::default() },
                placements: placements(brokers, 4),
            },
        }
    }

    #[test]
    fn apply_is_idempotent_and_deterministic() {
        let brokers = [NodeId(1), NodeId(2), NodeId(3)];
        let mut s = MetaState::new();
        for b in brokers {
            s.apply(&MetaOp::RegisterBroker { node: b });
            s.apply(&MetaOp::RegisterBroker { node: b }); // duplicate: no-op
        }
        assert_eq!(s.brokers, brokers);
        s.apply(&create_op(1, &brokers));
        s.apply(&MetaOp::MarkDead {
            node: NodeId(2),
            reassignments: vec![Reassignment {
                stream: StreamId(1),
                streamlet: StreamletId(1),
                new_broker: NodeId(3),
            }],
        });
        assert_eq!(s.alive_brokers(), vec![NodeId(1), NodeId(3)]);
        assert_eq!(s.streams[&StreamId(1)].broker_of(StreamletId(1)), Some(NodeId(3)));
        s.apply(&MetaOp::DeleteStream { stream: StreamId(1) });
        assert!(s.streams.is_empty());
    }

    /// Satellite: snapshot/replay equivalence. Fold a random-but-seeded
    /// op sequence three ways — straight through, via snapshot+restore
    /// at every prefix, and with log compaction — and require identical
    /// canonical images.
    #[test]
    fn snapshot_replay_equivalence() {
        let brokers = [NodeId(1), NodeId(2), NodeId(3), NodeId(4)];
        let mut rng = SplitMix64::new(0x5EED_0F0E);
        let mut ops: Vec<MetaOp> =
            brokers.iter().map(|&b| MetaOp::RegisterBroker { node: b }).collect();
        let mut live: Vec<u32> = Vec::new();
        for _ in 0..60 {
            match rng.next_below(3) {
                0 => {
                    let id = rng.next_u32() % 16;
                    ops.push(create_op(id, &brokers));
                    if !live.contains(&id) {
                        live.push(id);
                    }
                }
                1 if !live.is_empty() => {
                    let id = live[rng.next_below(live.len() as u64) as usize];
                    ops.push(MetaOp::DeleteStream { stream: StreamId(id) });
                    live.retain(|&x| x != id);
                }
                _ => {
                    let dead = brokers[rng.next_below(4) as usize];
                    let survivor = brokers[rng.next_below(4) as usize];
                    let reassignments = live
                        .iter()
                        .map(|&id| Reassignment {
                            stream: StreamId(id),
                            streamlet: StreamletId(rng.next_u32() % 4),
                            new_broker: survivor,
                        })
                        .collect();
                    ops.push(MetaOp::MarkDead { node: dead, reassignments });
                }
            }
        }

        // Way 1: straight fold.
        let mut direct = MetaState::new();
        for op in &ops {
            direct.apply(op);
        }

        // Way 2: snapshot + restore at every prefix, replay the rest.
        for cut in 0..ops.len() {
            let mut head = MetaState::new();
            for op in &ops[..cut] {
                head.apply(op);
            }
            let snap = head.snapshot(cut as u64, 1);
            let mut resumed = MetaState::restore(&snap);
            for op in &ops[cut..] {
                resumed.apply(op);
            }
            assert_eq!(
                resumed.snapshot(ops.len() as u64, 1),
                direct.snapshot(ops.len() as u64, 1),
                "replay from snapshot at {cut} diverged"
            );
        }

        // Way 3: a log that compacts every 7 records while a second
        // replica folds the shipped snapshot + suffix.
        let mut log = MetaLog::new();
        let mut leader = MetaState::new();
        let mut applied = 0u64;
        for op in &ops {
            log.append(1, op.clone());
        }
        for i in 1..=ops.len() as u64 {
            leader.apply(&log.get(i).unwrap().op.clone());
            applied = i;
            if log.len() >= 7 {
                let term = log.term_at(applied).unwrap();
                log.compact_to(applied, term);
                assert_eq!(log.base_index(), applied);
            }
        }
        assert_eq!(
            leader.snapshot(applied, 1),
            direct.snapshot(applied, 1),
            "compacting fold diverged"
        );
    }

    #[test]
    fn log_indexing_truncation_and_suffixes() {
        let mut log = MetaLog::new();
        assert_eq!(log.last_index(), 0);
        assert_eq!(log.term_at(0), Some(0));
        for i in 0..5 {
            let rec = log.append(2, MetaOp::RegisterBroker { node: NodeId(i) });
            assert_eq!(rec.index, u64::from(i) + 1);
        }
        assert_eq!(log.last_index(), 5);
        assert_eq!(log.term_at(3), Some(2));
        assert_eq!(log.term_at(6), None);
        assert_eq!(log.suffix_from(3).unwrap().len(), 2);
        assert_eq!(log.suffix_from(0).unwrap().len(), 5);

        log.truncate_from(4);
        assert_eq!(log.last_index(), 3);

        log.compact_to(2, 2);
        assert_eq!(log.base_index(), 2);
        assert_eq!(log.term_at(2), Some(2));
        assert_eq!(log.term_at(1), None);
        assert!(log.suffix_from(1).is_none(), "compacted range needs a snapshot");
        assert_eq!(log.suffix_from(2).unwrap().len(), 1);

        // Follower-side contiguity: pushes must arrive in order.
        let mut f = MetaLog::new();
        f.install_snapshot(2, 2);
        f.push(MetaRecord { index: 5, term: 2, op: MetaOp::RegisterBroker { node: NodeId(9) } });
        assert_eq!(f.last_index(), 2, "non-contiguous push ignored");
        f.push(MetaRecord { index: 3, term: 2, op: MetaOp::RegisterBroker { node: NodeId(9) } });
        assert_eq!(f.last_index(), 3);
    }
}
