//! In-process cluster assembly.
//!
//! Mirrors the paper's deployment (§V-A): on each of `B` server nodes
//! live one broker service and one backup service; a coordinator manages
//! them. Clients register as extra nodes on the same fabric. With
//! `ClusterConfig::coordinator.replicas > 1` the coordinator itself is
//! replicated (metadata log + leader election, DESIGN.md §10): replica 0
//! keeps the historical node id 0, extra replicas live at 3000+i, and
//! clients resolve the leader via `RpcClient::call_leader`.

use std::sync::Arc;

use kera_common::config::{ClusterConfig, TransportChoice};
use kera_common::ids::NodeId;
use kera_common::Result;
use kera_obs::{NodeObs, RegistrySnapshot, Watchdog};
use kera_rpc::network::TransportKind;
use kera_rpc::{AnyNetwork, FaultInjector, FaultPlan, NodeRuntime, NullService, Transport};
use kera_storage::flush::DiskFlusher;
use parking_lot::Mutex;

use crate::backup::BackupService;
use crate::broker::BrokerService;
use crate::coordinator::CoordinatorService;

/// The coordinator's node id (replica 0 of a replicated coordinator).
pub const COORDINATOR: NodeId = NodeId(0);

/// Node id of coordinator replica `i`. Replica 0 keeps the historical
/// id 0 so single-coordinator callers are untouched; extra replicas get
/// their own range clear of brokers (1+), backups (1001+) and clients
/// (2001+).
pub const fn coordinator_node(i: u32) -> NodeId {
    if i == 0 { COORDINATOR } else { NodeId(3000 + i) }
}

/// Node id of broker `i`.
pub const fn broker_node(i: u32) -> NodeId {
    NodeId(1 + i)
}

/// Node id of backup `i` (co-located with broker `i`).
pub const fn backup_node(i: u32) -> NodeId {
    NodeId(1001 + i)
}

/// Node id of client `i`.
pub const fn client_node(i: u32) -> NodeId {
    NodeId(2001 + i)
}

/// A running in-process KerA cluster.
pub struct KeraCluster {
    pub net: AnyNetwork,
    config: ClusterConfig,
    fault_plan: Option<FaultPlan>,
    coordinator_rts: Vec<Option<NodeRuntime>>,
    broker_rts: Vec<Option<NodeRuntime>>,
    backup_rts: Vec<Option<NodeRuntime>>,
    /// Coordinator replicas, in replica order (index 0 = node id 0).
    pub coordinator_svcs: Vec<Arc<CoordinatorService>>,
    pub broker_svcs: Vec<Arc<BrokerService>>,
    pub backup_svcs: Vec<Arc<BackupService>>,
    /// Server-node observability handles (coordinator, brokers, backups).
    node_obs: Vec<Arc<NodeObs>>,
    /// Client-node handles, collected as [`KeraCluster::client`] runs.
    client_obs: Mutex<Vec<Arc<NodeObs>>>,
    /// Per-server-node stall watchdogs, armed when `KERA_WATCHDOG_MS` is
    /// set. Dropping the cluster stops and joins them.
    watchdogs: Vec<Watchdog>,
}

/// True when `KERA_FLIGHTREC` asks for crash dumps of the per-node event
/// rings (any non-empty value but `0`).
fn flightrec_requested() -> bool {
    std::env::var("KERA_FLIGHTREC").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
}

impl KeraCluster {
    /// Boots coordinator, brokers and backups.
    pub fn start(config: ClusterConfig) -> Result<KeraCluster> {
        config.validate()?;
        let kind = match config.transport {
            TransportChoice::InMemory => TransportKind::InMemory,
            TransportChoice::Tcp => TransportKind::Tcp,
        };
        let net = AnyNetwork::with_max_frame(kind, config.network, config.max_frame_bytes);
        // With a fault profile configured, every node's transport —
        // coordinator, brokers, backups and clients — goes through a
        // FaultInjector sharing one plan, so replication, re-replication
        // and recovery all run over the same lossy fabric.
        let fault_plan = config.faults.map(FaultPlan::new);
        let b = config.brokers;
        let broker_ids: Vec<NodeId> = (0..b).map(broker_node).collect();
        let backup_ids: Vec<NodeId> = (0..b).map(backup_node).collect();

        let register = |id: NodeId| -> Result<Arc<dyn Transport>> {
            let transport = net.register(id)?;
            Ok(match &fault_plan {
                Some(plan) => Arc::new(FaultInjector::new(transport, plan.clone())),
                None => transport,
            })
        };

        let mut node_obs: Vec<Arc<NodeObs>> = Vec::new();
        let flightrec = flightrec_requested();
        let mut make_obs = |id: NodeId| -> Arc<NodeObs> {
            let obs = NodeObs::new(id.raw(), config.observability);
            if flightrec {
                kera_obs::register_for_dump(obs.recorder());
            }
            node_obs.push(Arc::clone(&obs));
            obs
        };

        // Backups first (brokers replicate into them).
        let mut backup_svcs = Vec::with_capacity(b as usize);
        let mut backup_rts = Vec::with_capacity(b as usize);
        for i in 0..b {
            let obs = make_obs(backup_node(i));
            let flusher = match &config.flush_dir {
                Some(dir) => Some(DiskFlusher::start_with_histogram(
                    dir.join(format!("backup-{i}")),
                    obs.registry().histogram("kera.storage.flush", &[]),
                )?),
                None => None,
            };
            let svc = BackupService::with_obs(
                backup_node(i),
                flusher,
                config.io_cost_ns,
                Arc::clone(&obs),
            );
            let rt = NodeRuntime::start_with_obs(
                register(backup_node(i))?,
                Arc::clone(&svc) as Arc<dyn kera_rpc::Service>,
                config.worker_threads,
                config.retry,
                obs,
            );
            backup_svcs.push(svc);
            backup_rts.push(Some(rt));
        }

        // Brokers.
        let mut broker_svcs = Vec::with_capacity(b as usize);
        let mut broker_rts = Vec::with_capacity(b as usize);
        for i in 0..b {
            let obs = make_obs(broker_node(i));
            let svc = BrokerService::with_quotas(
                broker_node(i),
                backup_node(i),
                backup_ids.clone(),
                2,
                Arc::clone(&obs),
                config.quotas,
            );
            let rt = NodeRuntime::start_with_obs(
                register(broker_node(i))?,
                Arc::clone(&svc) as Arc<dyn kera_rpc::Service>,
                config.worker_threads,
                config.retry,
                obs,
            );
            svc.attach_client(rt.client());
            broker_svcs.push(svc);
            broker_rts.push(Some(rt));
        }

        // Coordinator replicas. Single replica (the default) elects
        // itself instantly inside start_ticker and spawns no thread —
        // the pre-replication behaviour. Replicated coordinators get
        // more workers: the leader replicates while serving votes.
        let r = config.coordinator.replicas;
        let coordinator_ids: Vec<NodeId> = (0..r).map(coordinator_node).collect();
        let mut coordinator_svcs = Vec::with_capacity(r as usize);
        let mut coordinator_rts = Vec::with_capacity(r as usize);
        for i in 0..r {
            let obs = make_obs(coordinator_node(i));
            let svc = CoordinatorService::replicated(
                coordinator_node(i),
                coordinator_ids.clone(),
                broker_ids.clone(),
                config.coordinator,
            );
            let rt = NodeRuntime::start_with_obs(
                register(coordinator_node(i))?,
                Arc::clone(&svc) as Arc<dyn kera_rpc::Service>,
                if r == 1 { 2 } else { 4 },
                config.retry,
                obs,
            );
            svc.attach_client(rt.client());
            coordinator_svcs.push(svc);
            coordinator_rts.push(Some(rt));
        }
        for svc in &coordinator_svcs {
            svc.start_ticker();
        }

        if flightrec {
            kera_obs::install_panic_hook(std::path::Path::new("results"));
        }

        // Arm the per-node stall watchdogs. A node counts as stalled when
        // it has RPCs in flight but its progress counter stops moving for
        // the configured window; the watchdog then auto-dumps that node's
        // flight-recorder ring and slow-trace store under results/tmp/.
        let mut watchdogs = Vec::new();
        if let Some(ms) = kera_obs::watchdog_ms_from_env() {
            let threshold = std::time::Duration::from_millis(ms);
            let base = std::path::Path::new("results");
            for obs in &node_obs {
                watchdogs.push(Watchdog::arm(obs, threshold, base));
            }
        }

        Ok(KeraCluster {
            net,
            config,
            fault_plan,
            coordinator_rts,
            broker_rts,
            backup_rts,
            coordinator_svcs,
            broker_svcs,
            backup_svcs,
            node_obs,
            client_obs: Mutex::named("cluster.client_obs", Vec::new()),
            watchdogs,
        })
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The first coordinator replica — the bootstrap leader contact for
    /// single-coordinator callers. Replica-aware callers should use
    /// [`KeraCluster::coordinators`] with `RpcClient::call_leader`.
    pub fn coordinator(&self) -> NodeId {
        COORDINATOR
    }

    /// All coordinator replica node ids, in replica order.
    pub fn coordinators(&self) -> Vec<NodeId> {
        (0..self.config.coordinator.replicas).map(coordinator_node).collect()
    }

    /// Index of the replica currently believing itself leader, if any.
    pub fn coordinator_leader(&self) -> Option<u32> {
        self.coordinator_svcs.iter().position(|s| s.is_leader()).map(|i| i as u32)
    }

    /// Kills coordinator replica `i`: it vanishes from the network and
    /// its runtime and ticker are joined — a clean process exit.
    /// Requires the in-memory fabric.
    pub fn kill_coordinator(&mut self, i: u32) {
        // lint: allow(no-panic) — chaos-test helper; killing a replica that
        // does not exist is a driver bug and must fail fast.
        assert!(
            self.net.crash(coordinator_node(i)),
            "kill_coordinator requires TransportChoice::InMemory"
        );
        if let Some(svc) = self.coordinator_svcs.get(i as usize) {
            svc.stop();
        }
        if let Some(rt) = self.coordinator_rts.get_mut(i as usize).and_then(Option::take) {
            rt.shutdown();
        }
    }

    /// Wedges coordinator replica `i` without exiting it: its ticker
    /// stops acting and every request hangs — the "frozen process"
    /// failure mode (as opposed to the clean exit of
    /// [`KeraCluster::kill_coordinator`]).
    pub fn freeze_coordinator(&self, i: u32) {
        if let Some(svc) = self.coordinator_svcs.get(i as usize) {
            svc.freeze();
        }
    }

    pub fn thaw_coordinator(&self, i: u32) {
        if let Some(svc) = self.coordinator_svcs.get(i as usize) {
            svc.thaw();
        }
    }

    /// Wedges broker `i`'s data plane without exiting it: produce-path
    /// requests hang until [`KeraCluster::thaw_broker`]. Fetches and the
    /// introspection plane stay live — a stalled data plane must remain
    /// observable, and the stall watchdog is expected to notice this
    /// exact failure mode.
    pub fn freeze_broker(&self, i: u32) {
        if let Some(svc) = self.broker_svcs.get(i as usize) {
            svc.freeze();
        }
    }

    pub fn thaw_broker(&self, i: u32) {
        if let Some(svc) = self.broker_svcs.get(i as usize) {
            svc.thaw();
        }
    }

    /// The armed stall watchdogs (empty unless `KERA_WATCHDOG_MS` was set
    /// when the cluster booted or [`KeraCluster::arm_watchdogs`] ran), in
    /// server-node registration order.
    pub fn watchdogs(&self) -> &[Watchdog] {
        &self.watchdogs
    }

    /// Arms a stall watchdog on every server node — the programmatic
    /// twin of booting with `KERA_WATCHDOG_MS` (chaos drills use this so
    /// they never mutate process-global env). Idempotent arming is not
    /// attempted: calling it twice doubles the monitors.
    pub fn arm_watchdogs(&mut self, threshold: std::time::Duration) {
        let base = std::path::Path::new("results");
        for obs in &self.node_obs {
            self.watchdogs.push(Watchdog::arm(obs, threshold, base));
        }
    }

    pub fn broker_count(&self) -> u32 {
        self.config.brokers
    }

    pub fn brokers(&self) -> Vec<NodeId> {
        (0..self.config.brokers).map(broker_node).collect()
    }

    pub fn backups(&self) -> Vec<NodeId> {
        (0..self.config.brokers).map(backup_node).collect()
    }

    /// The shared fault plan, when the cluster was started with a
    /// [`kera_common::config::FaultProfile`]. Tests use it to create and
    /// heal partitions and to assert faults actually fired.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Registers a pure client node on the fabric (producers, consumers,
    /// the recovery manager, test drivers). Client traffic crosses the
    /// same fault injector as server traffic.
    pub fn client(&self, i: u32) -> NodeRuntime {
        // lint: allow(no-panic) — cluster assembly in the test/bench harness;
        // a duplicate client id is a driver bug and must fail fast.
        let transport = self.net.register(client_node(i)).expect("register client node");
        let transport: Arc<dyn Transport> = match &self.fault_plan {
            Some(plan) => Arc::new(FaultInjector::new(transport, plan.clone())),
            None => transport,
        };
        let obs = NodeObs::new(client_node(i).raw(), self.config.observability);
        if flightrec_requested() {
            kera_obs::register_for_dump(obs.recorder());
        }
        self.client_obs.lock().push(Arc::clone(&obs));
        NodeRuntime::start_with_obs(transport, Arc::new(NullService), 1, self.config.retry, obs)
    }

    /// Observability handles of the server nodes (coordinator, brokers,
    /// backups), in registration order.
    pub fn node_obs(&self) -> &[Arc<NodeObs>] {
        &self.node_obs
    }

    /// One merged metrics snapshot across every node of the cluster —
    /// servers and clients. Keys stay distinct per node (the `node`
    /// label), so per-node drill-down survives the merge.
    pub fn metrics_snapshot(&self) -> RegistrySnapshot {
        let mut snap = RegistrySnapshot::default();
        for obs in &self.node_obs {
            snap.merge(&obs.registry().snapshot());
        }
        for obs in self.client_obs.lock().iter() {
            snap.merge(&obs.registry().snapshot());
        }
        snap
    }

    /// Dumps every node's flight-recorder ring under a fresh
    /// run-discriminated directory below `base/tmp/flightrec/` (chaos-
    /// failure path; the panic hook does the same on its own). Routing
    /// through [`kera_obs::dump_run_dir`] keeps concurrent test runs from
    /// clobbering each other's dumps.
    pub fn dump_flight_recorders(&self, base: &std::path::Path, reason: &str) -> Vec<std::path::PathBuf> {
        let dir = kera_obs::dump_run_dir(base, reason);
        let mut paths = Vec::new();
        for obs in self.node_obs.iter().chain(self.client_obs.lock().iter()) {
            if obs.recorder().recorded() > 0 {
                if let Ok(p) = obs.recorder().dump_to_dir(&dir) {
                    paths.push(p);
                }
            }
        }
        if !paths.is_empty() {
            // lint: allow(no-println-hot-path) — operator-facing notice on
            // the failure path; must reach stderr even when tracing is torn.
            eprintln!(
                "flight recorder dumped ({reason}): {} file(s) under {}",
                paths.len(),
                dir.display()
            );
        }
        paths
    }

    /// Kills server `i`: both its broker and its co-located backup vanish
    /// from the network, exactly like a machine crash. Requires the
    /// in-memory fabric (TCP does not support surgical crashes).
    pub fn crash_server(&mut self, i: u32) {
        assert!(
            self.net.crash(broker_node(i)),
            "crash_server requires TransportChoice::InMemory"
        );
        self.net.crash(backup_node(i));
        // Join the dead runtimes (their dispatch loops observe the closed
        // inboxes and exit).
        if let Some(rt) = self.broker_rts.get_mut(i as usize).and_then(Option::take) {
            rt.shutdown();
        }
        if let Some(rt) = self.backup_rts.get_mut(i as usize).and_then(Option::take) {
            rt.shutdown();
        }
    }

    /// Orderly shutdown of every node.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // Tickers first: they issue RPCs to sibling replicas, so every
        // replica's runtime must still be up while they drain.
        for svc in &self.coordinator_svcs {
            svc.stop();
        }
        for rt in self.coordinator_rts.iter_mut().filter_map(Option::take) {
            rt.shutdown();
        }
        for rt in self.broker_rts.iter_mut().filter_map(Option::take) {
            rt.shutdown();
        }
        for rt in self.backup_rts.iter_mut().filter_map(Option::take) {
            rt.shutdown();
        }
    }
}

impl Drop for KeraCluster {
    fn drop(&mut self) {
        // Idempotent: a cluster dropped on an error path still joins all
        // of its threads.
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use kera_common::config::{ReplicationConfig, StreamConfig, VirtualLogPolicy};
    use kera_common::ids::{ProducerId, StreamId, StreamletId};
    use kera_wire::chunk::{ChunkBuilder, ChunkIter};
    use kera_wire::cursor::SlotCursor;
    use kera_wire::frames::OpCode;
    use kera_wire::messages::*;
    use kera_wire::record::Record;
    use std::time::Duration;

    const T: Duration = Duration::from_secs(5);

    fn stream_config(id: u32, streamlets: u32, factor: u32) -> StreamConfig {
        StreamConfig {
            id: StreamId(id),
            streamlets,
            active_groups: 1,
            segments_per_group: 4,
            segment_size: 1 << 16,
            replication: ReplicationConfig {
                factor,
                policy: VirtualLogPolicy::SharedPerBroker(2),
                vseg_size: 1 << 16,
            },
        }
    }

    fn make_chunk(producer: u32, stream: u32, streamlet: u32, records: u32) -> Bytes {
        let mut b = ChunkBuilder::new(
            8192,
            ProducerId(producer),
            StreamId(stream),
            StreamletId(streamlet),
        );
        for i in 0..records {
            b.append(&Record::value_only(&[i as u8; 100]));
        }
        b.seal()
    }

    fn produce(
        client: &kera_rpc::RpcClient,
        broker: NodeId,
        producer: u32,
        chunks: &[Bytes],
    ) -> ProduceResponse {
        let mut body = Vec::new();
        for c in chunks {
            body.extend_from_slice(c);
        }
        let req = ProduceRequest {
            producer: ProducerId(producer),
            recovery: false,
            chunk_count: chunks.len() as u32,
            chunks: Bytes::from(body),
        };
        let resp = client.call(broker, OpCode::Produce, req.encode(), T).unwrap();
        ProduceResponse::decode(&resp).unwrap()
    }

    #[test]
    fn end_to_end_produce_fetch_r3() {
        let cfg = ClusterConfig {
            brokers: 4,
            worker_threads: 2,
            ..ClusterConfig::default()
        };
        let cluster = KeraCluster::start(cfg).unwrap();
        let client_rt = cluster.client(0);
        let client = client_rt.client();

        // Create a 4-streamlet stream, R3.
        let sc = stream_config(1, 4, 3);
        let md_bytes = client
            .call(
                COORDINATOR,
                OpCode::CreateStream,
                CreateStreamRequest { config: sc.clone() }.encode(),
                T,
            )
            .unwrap();
        let md = StreamMetadata::decode(&md_bytes).unwrap();
        assert_eq!(md.placements.len(), 4);
        // Streamlets spread over all 4 brokers.
        assert_eq!(md.brokers().len(), 4);

        // Produce 3 chunks to streamlet 0's broker.
        let broker = md.broker_of(StreamletId(0)).unwrap();
        let chunks: Vec<Bytes> = (0..3).map(|_| make_chunk(7, 1, 0, 5)).collect();
        let resp = produce(&client, broker, 7, &chunks);
        assert_eq!(resp.acks.len(), 3);
        assert_eq!(resp.acks[0].base_offset, 0);
        assert_eq!(resp.acks[1].base_offset, 5);
        assert_eq!(resp.acks[2].base_offset, 10);

        // Data is on 2 backups (R3 = leader + 2 copies).
        let total_backup_bytes: usize =
            cluster.backup_svcs.iter().map(|b| b.bytes_held()).sum();
        let chunk_bytes: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total_backup_bytes, chunk_bytes * 2);

        // Fetch it back (producer 7 -> slot 0 since Q=1).
        let freq = FetchRequest {
            consumer: kera_common::ids::ConsumerId(1),
            entries: vec![FetchEntry {
                stream: StreamId(1),
                streamlet: StreamletId(0),
                slot: 0,
                cursor: SlotCursor::START,
                max_bytes: 1 << 20,
            }],
        };
        let fresp = FetchResponse::decode(
            &client.call(broker, OpCode::Fetch, freq.encode(), T).unwrap(),
        )
        .unwrap();
        assert_eq!(fresp.results.len(), 1);
        let data = &fresp.results[0].data;
        let got: Vec<_> = ChunkIter::new(data).collect::<Result<_>>().unwrap();
        assert_eq!(got.len(), 3);
        let mut records = 0;
        for c in &got {
            c.verify().unwrap();
            records += c.records().count();
        }
        assert_eq!(records, 15);
        cluster.shutdown();
    }

    #[test]
    fn r1_skips_backups_entirely() {
        let cfg = ClusterConfig {
            brokers: 2,
            worker_threads: 2,
            ..ClusterConfig::default()
        };
        let cluster = KeraCluster::start(cfg).unwrap();
        let client_rt = cluster.client(0);
        let client = client_rt.client();

        let sc = stream_config(1, 1, 1);
        let md = StreamMetadata::decode(
            &client
                .call(
                    COORDINATOR,
                    OpCode::CreateStream,
                    CreateStreamRequest { config: sc }.encode(),
                    T,
                )
                .unwrap(),
        )
        .unwrap();
        let broker = md.broker_of(StreamletId(0)).unwrap();
        produce(&client, broker, 0, &[make_chunk(0, 1, 0, 2)]);
        assert_eq!(cluster.backup_svcs.iter().map(|b| b.bytes_held()).sum::<usize>(), 0);

        // Data is immediately fetchable (durable head == head at R1).
        let freq = FetchRequest {
            consumer: kera_common::ids::ConsumerId(0),
            entries: vec![FetchEntry {
                stream: StreamId(1),
                streamlet: StreamletId(0),
                slot: 0,
                cursor: SlotCursor::START,
                max_bytes: 1 << 20,
            }],
        };
        let fresp = FetchResponse::decode(
            &client.call(broker, OpCode::Fetch, freq.encode(), T).unwrap(),
        )
        .unwrap();
        assert_eq!(ChunkIter::new(&fresp.results[0].data).count(), 1);
        cluster.shutdown();
    }

    #[test]
    fn unknown_stream_errors_propagate() {
        let cfg = ClusterConfig { brokers: 1, ..ClusterConfig::default() };
        let cluster = KeraCluster::start(cfg).unwrap();
        let client_rt = cluster.client(0);
        let client = client_rt.client();

        let err = client
            .call(
                COORDINATOR,
                OpCode::GetMetadata,
                GetMetadataRequest { stream: StreamId(42) }.encode(),
                T,
            )
            .unwrap_err();
        assert!(matches!(err, kera_common::KeraError::Protocol(_)));

        let chunk = make_chunk(0, 42, 0, 1);
        let req = ProduceRequest {
            producer: ProducerId(0),
            recovery: false,
            chunk_count: 1,
            chunks: chunk,
        };
        let err = client
            .call(broker_node(0), OpCode::Produce, req.encode(), T)
            .unwrap_err();
        assert!(matches!(err, kera_common::KeraError::Protocol(_)));
        cluster.shutdown();
    }

    #[test]
    fn duplicate_stream_creation_fails() {
        let cfg = ClusterConfig { brokers: 2, ..ClusterConfig::default() };
        let cluster = KeraCluster::start(cfg).unwrap();
        let client_rt = cluster.client(0);
        let client = client_rt.client();
        let sc = stream_config(5, 2, 1);
        client
            .call(
                COORDINATOR,
                OpCode::CreateStream,
                CreateStreamRequest { config: sc.clone() }.encode(),
                T,
            )
            .unwrap();
        let err = client
            .call(
                COORDINATOR,
                OpCode::CreateStream,
                CreateStreamRequest { config: sc }.encode(),
                T,
            )
            .unwrap_err();
        assert!(matches!(err, kera_common::KeraError::Protocol(_)));
        cluster.shutdown();
    }

    #[test]
    fn consumers_never_see_unreplicated_data() {
        // With R3 but all backups crashed, producing fails and consumers
        // see nothing.
        let cfg = ClusterConfig {
            brokers: 3,
            worker_threads: 2,
            ..ClusterConfig::default()
        };
        let mut cluster = KeraCluster::start(cfg).unwrap();
        let client_rt = cluster.client(0);
        let client = client_rt.client();

        let sc = stream_config(1, 1, 3);
        let md = StreamMetadata::decode(
            &client
                .call(
                    COORDINATOR,
                    OpCode::CreateStream,
                    CreateStreamRequest { config: sc }.encode(),
                    T,
                )
                .unwrap(),
        )
        .unwrap();
        let broker = md.broker_of(StreamletId(0)).unwrap();
        // Crash the two servers that are NOT the leader: their backups go
        // with them, leaving zero backup candidates.
        for i in 0..3 {
            if broker_node(i) != broker {
                cluster.crash_server(i);
            }
        }
        let chunk = make_chunk(0, 1, 0, 4);
        let req = ProduceRequest {
            producer: ProducerId(0),
            recovery: false,
            chunk_count: 1,
            chunks: chunk,
        };
        let err = client.call(broker, OpCode::Produce, req.encode(), T).unwrap_err();
        assert!(matches!(err, kera_common::KeraError::NoCapacity(_)), "got {err}");

        // The appended-but-unreplicated chunk must be invisible.
        let freq = FetchRequest {
            consumer: kera_common::ids::ConsumerId(0),
            entries: vec![FetchEntry {
                stream: StreamId(1),
                streamlet: StreamletId(0),
                slot: 0,
                cursor: SlotCursor::START,
                max_bytes: 1 << 20,
            }],
        };
        let fresp = FetchResponse::decode(
            &client.call(broker, OpCode::Fetch, freq.encode(), T).unwrap(),
        )
        .unwrap();
        assert!(fresp.results[0].data.is_empty());
        cluster.shutdown();
    }

    use kera_common::Result;
}
