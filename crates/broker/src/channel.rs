//! The real replication channel: one `BackupWrite` RPC per backup, fanned
//! out in parallel ("it also sends (replicates) the chunk in parallel to
//! the backups", paper §II-B).

use std::time::Duration;

use kera_common::ids::NodeId;
use kera_common::{KeraError, Result};
use kera_rpc::RpcClient;
use kera_vlog::channel::BackupChannel;
use kera_wire::frames::OpCode;
use kera_wire::messages::{BackupWriteRequest, BackupWriteResponse};

/// Ships replication batches over the RPC fabric.
pub struct RpcBackupChannel {
    client: RpcClient,
    timeout: Duration,
}

impl RpcBackupChannel {
    pub fn new(client: RpcClient, timeout: Duration) -> Self {
        Self { client, timeout }
    }
}

impl BackupChannel for RpcBackupChannel {
    fn replicate(
        &self,
        backups: &[NodeId],
        req: &BackupWriteRequest,
    ) -> Result<BackupWriteResponse> {
        // Encode once; the payload Bytes is shared by all fan-out sends.
        let payload = req.encode();
        let calls: Vec<_> = backups
            .iter()
            .map(|&b| (b, self.client.call_async(b, OpCode::BackupWrite, payload.clone())))
            .collect();
        let mut last = BackupWriteResponse { durable_offset: 0 };
        for (backup, call) in calls {
            let resp = call.wait(self.timeout).map_err(|e| match e {
                // Normalize failures to Disconnected(backup) so the
                // virtual log can re-replicate around the dead node.
                KeraError::Disconnected(_) | KeraError::Timeout { .. } => {
                    KeraError::Disconnected(backup)
                }
                other => other,
            })?;
            last = BackupWriteResponse::decode(&resp)?;
        }
        Ok(last)
    }
}
