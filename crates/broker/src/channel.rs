//! The real replication channel: one `BackupWrite` RPC per backup, fanned
//! out in parallel ("it also sends (replicates) the chunk in parallel to
//! the backups", paper §II-B).
//!
//! Transient loss is the RPC plane's problem: each fan-out call
//! retransmits its request id under the node's retry policy, and the
//! backup's at-most-once cache absorbs the duplicates. Only when the
//! overall replication budget (or the retransmission budget) runs out
//! does a backup's failure normalize to `Disconnected(backup)`, which
//! is the virtual log's signal to re-replicate around the node.

use std::time::{Duration, Instant};

use kera_common::ids::NodeId;
use kera_common::{KeraError, Result};
use kera_rpc::RpcClient;
use kera_vlog::channel::BackupChannel;
use kera_wire::frames::OpCode;
use kera_wire::messages::{BackupWriteResponse, EncodedBackupWrite};

/// Ships replication batches over the RPC fabric.
pub struct RpcBackupChannel {
    client: RpcClient,
    timeout: Duration,
}

impl RpcBackupChannel {
    pub fn new(client: RpcClient, timeout: Duration) -> Self {
        Self { client, timeout }
    }
}

impl BackupChannel for RpcBackupChannel {
    fn replicate(
        &self,
        backups: &[NodeId],
        req: &EncodedBackupWrite,
    ) -> Result<BackupWriteResponse> {
        // Already on the wire format: the one body is shared by all
        // fan-out sends without re-encoding.
        // lint: allow(no-hot-copy) — refcount clone of the shared body
        let payload = req.body().clone();
        let overall = Instant::now() + self.timeout;
        let calls: Vec<_> = backups
            .iter()
            // lint: allow(no-hot-copy) — refcount clone per fan-out send
            .map(|&b| (b, self.client.call_async(b, OpCode::BackupWrite, payload.clone())))
            .collect();
        let mut last = BackupWriteResponse { durable_offset: 0 };
        for (backup, call) in calls {
            let remaining = overall.saturating_duration_since(Instant::now());
            let resp = match call.wait(remaining) {
                Ok(resp) => resp,
                Err(e) => {
                    return Err(match e {
                        // Normalize exhausted transient failures to
                        // Disconnected(backup) so the virtual log can
                        // re-replicate around the dead node.
                        KeraError::Disconnected(_) | KeraError::Timeout { .. } => {
                            KeraError::Disconnected(backup)
                        }
                        other => other,
                    });
                }
            };
            last = BackupWriteResponse::decode(&resp)?;
        }
        Ok(last)
    }
}
