//! The backup service (paper Figs. 1–2, §IV-B).
//!
//! Backups hold *replicated segments*: byte-for-byte copies of the chunks
//! a virtual segment references, in virtual-log order. "The backup's
//! segments contain chunks from possibly various groups of different
//! streamlets of multiple streams." Backups verify every chunk's payload
//! checksum on arrival and the virtual segment's checksum-of-checksums on
//! close, then asynchronously flush closed segments to secondary storage
//! with the same format. At recovery they enumerate and stream back what
//! they hold for a crashed broker.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use kera_common::checksum::Crc32c;
use kera_common::copymode::copy_data_plane;
use kera_common::ids::{NodeId, VirtualLogId, VirtualSegmentId};
use kera_common::metrics::Counter;
use kera_common::{KeraError, Result};
use kera_obs::{NodeObs, Stage};
use kera_rpc::{RequestContext, Service};
use kera_storage::flush::DiskFlusher;
use kera_wire::chunk::ChunkIter;
use kera_wire::frames::OpCode;
use kera_wire::messages::{
    backup_flags, BackupWriteRequest, BackupWriteResponse, RecoveryEnumerateRequest,
    RecoveryEnumerateResponse, RecoveryReadRequest, ReplicatedSegmentInfo,
};
use parking_lot::{Mutex, RwLock};

/// Key of a replicated segment: which broker's which virtual segment.
type SegKey = (NodeId, VirtualLogId, VirtualSegmentId);

struct ReplicatedSegment {
    /// Replication batches in arrival order, each holding the (shared)
    /// chunk train of one `BackupWrite`. Concatenated they are the
    /// segment's bytes; keeping them as slices means the synchronous
    /// replication path never copies the payload.
    batches: Vec<Bytes>,
    /// Total bytes across `batches` (the durable offset).
    len: usize,
    closed: bool,
    /// Running checksum over chunk checksums, must match the CLOSE
    /// request's `vseg_checksum`.
    checksum: Crc32c,
}

impl ReplicatedSegment {
    /// The segment's bytes as one contiguous buffer (cold paths only:
    /// the secondary-storage flush and recovery reads).
    fn contents(&self) -> Bytes {
        match self.batches.as_slice() {
            [single] => single.clone(),
            batches => {
                let mut buf = Vec::with_capacity(self.len);
                for b in batches {
                    buf.extend_from_slice(b);
                }
                Bytes::from(buf)
            }
        }
    }
}

/// The backup service of one node.
pub struct BackupService {
    node: NodeId,
    segments: RwLock<HashMap<SegKey, Arc<Mutex<ReplicatedSegment>>>>,
    flusher: Option<DiskFlusher>,
    /// Fixed IO cost charged when a *closed* virtual segment is flushed
    /// (asynchronous, segment granularity — "backups asynchronously
    /// write buffered chunks to secondary storage", §II-B). The
    /// synchronous replication path is a pure in-memory buffer append.
    io_cost_ns: u64,
    /// Observability handle; counters below live in its registry.
    obs: Arc<NodeObs>,
    /// Replication writes handled (`kera.backup.writes`).
    pub writes: Arc<Counter>,
    /// Chunk bytes received (`kera.backup.bytes_received`).
    pub bytes_received: Arc<Counter>,
    /// Chunks received (`kera.backup.chunks_received`).
    pub chunks_received: Arc<Counter>,
}

impl BackupService {
    pub fn new(node: NodeId, flusher: Option<DiskFlusher>) -> Arc<Self> {
        Self::with_io_cost(node, flusher, 0)
    }

    /// Like [`BackupService::new`] with an explicit per-write IO cost.
    pub fn with_io_cost(
        node: NodeId,
        flusher: Option<DiskFlusher>,
        io_cost_ns: u64,
    ) -> Arc<Self> {
        Self::with_obs(node, flusher, io_cost_ns, NodeObs::disabled(node.raw()))
    }

    /// Full constructor: binds the backup to a node's observability
    /// handle. Write counters register as `kera.backup.*`; replication
    /// writes emit `backup_write` (and, on segment close, `flush`) spans
    /// under the shipping broker's trace.
    pub fn with_obs(
        node: NodeId,
        flusher: Option<DiskFlusher>,
        io_cost_ns: u64,
        obs: Arc<NodeObs>,
    ) -> Arc<Self> {
        let reg = obs.registry();
        Arc::new(Self {
            node,
            segments: RwLock::named("backup.segments", HashMap::new()),
            flusher,
            io_cost_ns,
            writes: reg.counter("kera.backup.writes", &[]),
            bytes_received: reg.counter("kera.backup.bytes_received", &[]),
            chunks_received: reg.counter("kera.backup.chunks_received", &[]),
            obs,
        })
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of replicated segments held.
    pub fn segment_count(&self) -> usize {
        self.segments.read().len()
    }

    /// Total bytes held across replicated segments.
    pub fn bytes_held(&self) -> usize {
        self.segments.read().values().map(|s| s.lock().len).sum()
    }

    fn handle_write(&self, req: BackupWriteRequest) -> Result<BackupWriteResponse> {
        // Parented to the serving RPC's span (the worker thread's
        // current context), i.e. the broker's replicate RPC.
        let mut span = self.obs.span(Stage::BackupWrite, kera_obs::current());
        span.set_aux(req.chunks.len() as u64);
        let _in_span = span.is_recording().then(|| kera_obs::enter(span.context()));
        let key = (req.source_broker, req.vlog, req.vseg);
        let entry = {
            let guard = self.segments.read();
            guard.get(&key).cloned()
        };
        let entry = match entry {
            Some(e) => e,
            None => {
                let mut guard = self.segments.write();
                Arc::clone(guard.entry(key).or_insert_with(|| {
                    Arc::new(Mutex::named("backup.segment", ReplicatedSegment {
                        batches: Vec::new(),
                        len: 0,
                        closed: false,
                        checksum: Crc32c::new(),
                    }))
                }))
            }
        };

        let mut seg = entry.lock();
        let offset = req.vseg_offset as usize;
        if offset < seg.len {
            // Duplicate (retried) batch: idempotent ack.
            return Ok(BackupWriteResponse { durable_offset: seg.len as u32 });
        }
        if offset > seg.len {
            return Err(KeraError::Protocol(format!(
                "backup write at offset {offset} but segment holds {} bytes (hole)",
                seg.len
            )));
        }
        if seg.closed && !req.chunks.is_empty() {
            return Err(KeraError::Protocol("write to a closed replicated segment".into()));
        }

        // Verify every chunk *before* mutating any state, so a corrupt
        // batch leaves the replicated segment untouched.
        let mut checksums = Vec::new();
        for chunk in ChunkIter::new(&req.chunks) {
            let chunk = chunk?;
            chunk.verify()?; // payload integrity on the wire
            checksums.push(chunk.header().checksum);
        }
        let count = checksums.len() as u32;
        if count != req.chunk_count {
            return Err(KeraError::Protocol(format!(
                "chunk count mismatch: header says {}, body has {count}",
                req.chunk_count
            )));
        }
        for k in checksums {
            seg.checksum.update_u32(k);
        }
        if !req.chunks.is_empty() {
            let batch = if copy_data_plane() {
                // lint: allow(no-hot-copy) — the seed's buffer append,
                // kept reachable behind KERA_COPY_DATA_PLANE=1 for the
                // bench trajectory.
                Bytes::copy_from_slice(&req.chunks)
            } else {
                // The batch is a slice of the receive buffer.
                // lint: allow(no-hot-copy) — refcount clone, not a copy
                req.chunks.clone()
            };
            seg.len += batch.len();
            seg.batches.push(batch);
        }
        self.writes.inc();
        self.chunks_received.add(u64::from(count));
        self.bytes_received.add(req.chunks.len() as u64);
        self.obs.bump_progress();

        if req.flags & backup_flags::CLOSE != 0 {
            let actual = seg.checksum.finish();
            if actual != req.vseg_checksum {
                return Err(KeraError::Corruption {
                    what: "virtual segment",
                    expected: req.vseg_checksum,
                    actual,
                });
            }
            seg.closed = true;
            // Secondary-storage flush: one large asynchronous IO per
            // closed virtual segment (amortized over the whole segment).
            let mut flush_span = self.obs.span(Stage::Flush, kera_obs::current());
            flush_span.set_aux(seg.len as u64);
            if self.io_cost_ns > 0 {
                kera_common::timing::spin_for_ns(self.io_cost_ns);
            }
            if let Some(f) = &self.flusher {
                f.flush(
                    format!(
                        "broker{}/vlog{}/vseg{}.seg",
                        req.source_broker.raw(),
                        req.vlog.raw(),
                        req.vseg.raw()
                    ),
                    seg.contents(),
                );
            }
            flush_span.finish();
        }
        Ok(BackupWriteResponse { durable_offset: seg.len as u32 })
    }

    fn handle_free(&self, source: NodeId, vlog: VirtualLogId) -> Result<()> {
        self.segments.write().retain(|&(b, v, _), _| !(b == source && v == vlog));
        Ok(())
    }

    fn handle_enumerate(&self, req: RecoveryEnumerateRequest) -> RecoveryEnumerateResponse {
        let guard = self.segments.read();
        let mut segments: Vec<ReplicatedSegmentInfo> = guard
            .iter()
            .filter(|((b, _, _), _)| *b == req.crashed_broker)
            .map(|(&(_, vlog, vseg), s)| {
                let s = s.lock();
                ReplicatedSegmentInfo { vlog, vseg, len: s.len as u32, closed: s.closed }
            })
            .collect();
        segments.sort_by_key(|s| (s.vlog, s.vseg));
        RecoveryEnumerateResponse { segments }
    }

    fn handle_recovery_read(&self, req: RecoveryReadRequest) -> Result<Bytes> {
        let key = (req.crashed_broker, req.vlog, req.vseg);
        let seg = self.segments.read().get(&key).cloned().ok_or_else(|| {
            KeraError::Recovery(format!(
                "backup {} holds no segment for broker {} vlog {} vseg {}",
                self.node, req.crashed_broker, req.vlog, req.vseg
            ))
        })?;
        let data = seg.lock().contents();
        Ok(data)
    }
}

impl Service for BackupService {
    fn handle(&self, ctx: &RequestContext, payload: Bytes) -> Result<Bytes> {
        match ctx.opcode {
            OpCode::Ping => Ok(Bytes::new()),
            OpCode::BackupWrite => {
                // Slice the chunk train out of the receive buffer; the
                // retained batch shares that allocation.
                let req = BackupWriteRequest::decode_bytes(&payload)?;
                Ok(self.handle_write(req)?.encode())
            }
            OpCode::BackupFree => {
                // Payload: source broker u32, vlog u32.
                let mut r = kera_wire::codec::Reader::new(&payload);
                let source = NodeId(r.u32()?);
                let vlog = VirtualLogId(r.u32()?);
                self.handle_free(source, vlog)?;
                Ok(Bytes::new())
            }
            OpCode::RecoveryEnumerate => {
                let req = RecoveryEnumerateRequest::decode(&payload)?;
                Ok(self.handle_enumerate(req).encode())
            }
            OpCode::RecoveryRead => {
                let req = RecoveryReadRequest::decode(&payload)?;
                self.handle_recovery_read(req)
            }
            OpCode::Introspect => {
                let held = self.bytes_held() as u64;
                crate::introspect::serve(
                    &self.obs,
                    &payload,
                    crate::introspect::HealthFields {
                        role: kera_wire::messages::introspect_role::BACKUP,
                        segments: self.segment_count() as u32,
                        // Everything a backup holds is durable by
                        // definition; it IS the durable copy.
                        appended_bytes: held,
                        durable_bytes: held,
                        ..Default::default()
                    },
                )
            }
            other => Err(KeraError::Protocol(format!("backup cannot serve {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kera_common::ids::{ProducerId, StreamId, StreamletId};
    use kera_wire::chunk::ChunkBuilder;
    use kera_wire::record::Record;

    fn chunk_bytes(n: usize) -> (Bytes, u32) {
        let mut b = ChunkBuilder::new(4096, ProducerId(1), StreamId(1), StreamletId(0));
        for _ in 0..n {
            b.append(&Record::value_only(&[9u8; 50]));
        }
        let bytes = b.seal();
        let view = kera_wire::chunk::ChunkView::parse(&bytes).unwrap();
        let checksum = view.header().checksum;
        (bytes, checksum)
    }

    fn write_req(
        vseg_offset: u32,
        flags: u8,
        vseg_checksum: u32,
        chunks: &[Bytes],
    ) -> BackupWriteRequest {
        let mut body = Vec::new();
        for c in chunks {
            body.extend_from_slice(c);
        }
        BackupWriteRequest {
            source_broker: NodeId(1),
            vlog: VirtualLogId(0),
            vseg: VirtualSegmentId(0),
            vseg_offset,
            flags,
            vseg_checksum,
            chunk_count: chunks.len() as u32,
            chunks: Bytes::from(body),
        }
    }

    #[test]
    fn write_appends_and_acks() {
        let b = BackupService::new(NodeId(100), None);
        let (c, _) = chunk_bytes(2);
        let resp = b.handle_write(write_req(0, backup_flags::OPEN, 0, std::slice::from_ref(&c))).unwrap();
        assert_eq!(resp.durable_offset as usize, c.len());
        assert_eq!(b.segment_count(), 1);
        assert_eq!(b.bytes_held(), c.len());
    }

    #[test]
    fn duplicate_write_is_idempotent() {
        let b = BackupService::new(NodeId(100), None);
        let (c, _) = chunk_bytes(1);
        b.handle_write(write_req(0, backup_flags::OPEN, 0, std::slice::from_ref(&c))).unwrap();
        // Retry of the same batch.
        let resp = b.handle_write(write_req(0, 0, 0, std::slice::from_ref(&c))).unwrap();
        assert_eq!(resp.durable_offset as usize, c.len());
        assert_eq!(b.bytes_held(), c.len(), "duplicate must not double-append");
    }

    #[test]
    fn hole_is_rejected() {
        let b = BackupService::new(NodeId(100), None);
        let (c, _) = chunk_bytes(1);
        let err = b.handle_write(write_req(100, 0, 0, &[c])).unwrap_err();
        assert!(matches!(err, KeraError::Protocol(_)));
    }

    #[test]
    fn corrupt_chunk_is_rejected() {
        let b = BackupService::new(NodeId(100), None);
        let (c, _) = chunk_bytes(1);
        let mut bad = c.to_vec();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        let err = b
            .handle_write(write_req(0, backup_flags::OPEN, 0, &[Bytes::from(bad)]))
            .unwrap_err();
        assert!(matches!(err, KeraError::Corruption { .. }));
        // Nothing was stored.
        assert_eq!(b.bytes_held(), 0);
    }

    #[test]
    fn close_verifies_checksum_of_checksums() {
        let b = BackupService::new(NodeId(100), None);
        let (c1, k1) = chunk_bytes(1);
        let (c2, k2) = chunk_bytes(2);
        let mut crc = Crc32c::new();
        crc.update_u32(k1);
        crc.update_u32(k2);
        let good = crc.finish();

        b.handle_write(write_req(0, backup_flags::OPEN, 0, std::slice::from_ref(&c1))).unwrap();
        // Wrong checksum on close: corruption.
        let err = b
            .handle_write(write_req(c1.len() as u32, backup_flags::CLOSE, 0xbad, std::slice::from_ref(&c2)))
            .unwrap_err();
        assert!(matches!(err, KeraError::Corruption { .. }));

        // Fresh service, correct close.
        let b = BackupService::new(NodeId(100), None);
        b.handle_write(write_req(0, backup_flags::OPEN, 0, std::slice::from_ref(&c1))).unwrap();
        b.handle_write(write_req(c1.len() as u32, backup_flags::CLOSE, good, &[c2])).unwrap();
    }

    #[test]
    fn enumerate_and_recovery_read() {
        let b = BackupService::new(NodeId(100), None);
        let (c, _) = chunk_bytes(3);
        b.handle_write(write_req(0, backup_flags::OPEN, 0, std::slice::from_ref(&c))).unwrap();
        let resp = b.handle_enumerate(RecoveryEnumerateRequest { crashed_broker: NodeId(1) });
        assert_eq!(resp.segments.len(), 1);
        assert_eq!(resp.segments[0].len as usize, c.len());
        assert!(!resp.segments[0].closed);
        // Nothing held for other brokers.
        let resp = b.handle_enumerate(RecoveryEnumerateRequest { crashed_broker: NodeId(9) });
        assert!(resp.segments.is_empty());

        let data = b
            .handle_recovery_read(RecoveryReadRequest {
                crashed_broker: NodeId(1),
                vlog: VirtualLogId(0),
                vseg: VirtualSegmentId(0),
            })
            .unwrap();
        assert_eq!(&data[..], &c[..]);
        assert!(b
            .handle_recovery_read(RecoveryReadRequest {
                crashed_broker: NodeId(1),
                vlog: VirtualLogId(7),
                vseg: VirtualSegmentId(0),
            })
            .is_err());
    }

    #[test]
    fn free_drops_vlog_segments() {
        let b = BackupService::new(NodeId(100), None);
        let (c, _) = chunk_bytes(1);
        b.handle_write(write_req(0, backup_flags::OPEN, 0, &[c])).unwrap();
        assert_eq!(b.segment_count(), 1);
        b.handle_free(NodeId(1), VirtualLogId(0)).unwrap();
        assert_eq!(b.segment_count(), 0);
    }

    #[test]
    fn closed_segments_flush_to_disk() {
        let dir = std::env::temp_dir().join(format!("kera-backup-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let flusher = DiskFlusher::start(dir.clone()).unwrap();
        let b = BackupService::new(NodeId(100), Some(flusher));
        let (c, k) = chunk_bytes(2);
        let mut crc = Crc32c::new();
        crc.update_u32(k);
        b.handle_write(write_req(
            0,
            backup_flags::OPEN | backup_flags::CLOSE,
            crc.finish(),
            std::slice::from_ref(&c),
        ))
        .unwrap();
        // Force the flusher to drain by dropping the service (drops flusher).
        drop(b);
        let file = dir.join("broker1/vlog0/vseg0.seg");
        let on_disk = std::fs::read(&file).unwrap();
        assert_eq!(on_disk, c.to_vec(), "disk format == in-memory format");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
