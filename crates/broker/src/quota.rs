//! Multi-tenant admission control: the broker-side gate of the
//! backpressure plane (DESIGN.md §11).
//!
//! Every produce request passes through [`AdmissionControl::admit`]
//! before any append work happens. Each tenant (client node) owns a
//! token bucket (bytes/sec with a burst cap) and an in-flight byte
//! window; the broker as a whole owns an admission-queue byte cap — the
//! RSS proxy that bounds how much unacknowledged producer data the
//! broker will ever hold. A request that cannot be admitted gets a
//! structured answer instead of a queue slot, climbing the degradation
//! ladder:
//!
//! 1. **Throttle** — over rate or over window, in good standing:
//!    `Throttled { retry_after, window_hint }`. A polite client sleeps
//!    and retries through the idempotent dedup path.
//! 2. **Reject** — the tenant kept sending through throttles
//!    (`reject_after_throttles` in a row), or the broker-wide queue cap
//!    is hit: `Rejected { reason }`, no retry hint.
//! 3. **Evict** — `evict_after_rejections` ladder rejections: the
//!    session is refused outright for `evict_cooldown`, then may start
//!    fresh. Sessions idle past `zombie_idle` are swept the same way so
//!    dead clients cannot pin accounting forever.
//!
//! Admission state lives under one `broker.quota` lock, acquired only
//! for short, RPC-free critical sections (kera-lint enforces this); the
//! admitted-byte total is a plain atomic so releasing a permit after
//! the durability wait touches the lock only to fix the per-tenant
//! window. With quotas disabled (the default) the gate is a single
//! relaxed atomic load.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use kera_common::config::QuotaConfig;
use kera_common::ids::NodeId;
use kera_common::metrics::Counter;
use kera_common::{KeraError, Result};
use kera_obs::{Gauge, NodeObs, Stage};
use kera_wire::frames::OpCode;
use kera_wire::messages::QuotaStateResponse;
use parking_lot::Mutex;

/// Floor on computed retry hints so clients never busy-spin on a
/// sub-microsecond suggestion.
const MIN_RETRY_AFTER: Duration = Duration::from_micros(200);
/// Ceiling on computed retry hints; anything longer means the request
/// can never be admitted at the current rate and rejection is near.
const MAX_RETRY_AFTER: Duration = Duration::from_millis(500);

/// Per-tenant admission state. Counters are per-tenant label series of
/// `kera.broker.quota_throttles_total` / `quota_rejections_total`.
struct TenantState {
    /// Produce token balance in bytes; refilled at `produce_bytes_per_sec`
    /// up to `burst_bytes`.
    tokens: f64,
    /// Fetch bytes owed (debt model: serve first, charge after; a tenant
    /// in debt is throttled until the debt drains at `fetch_bytes_per_sec`).
    fetch_debt: f64,
    last_refill: Instant,
    last_seen: Instant,
    /// Admitted-but-unacknowledged bytes of this tenant.
    inflight: u64,
    consecutive_throttles: u32,
    ladder_rejections: u32,
    evicted_until: Option<Instant>,
    throttles: Arc<Counter>,
    rejections: Arc<Counter>,
}

struct QuotaState {
    cfg: QuotaConfig,
    tenants: HashMap<u32, TenantState>,
    last_sweep: Instant,
}

/// The broker's admission gate. One per [`crate::broker::BrokerService`].
pub struct AdmissionControl {
    /// Fast-path switch; `false` makes `admit` a single relaxed load.
    enabled: AtomicBool,
    state: Mutex<QuotaState>,
    /// Broker-wide admitted-but-unacknowledged bytes (the memory bound).
    queue_bytes: AtomicU64,
    /// High-water mark of `queue_bytes` since start — the RSS-proxy gate.
    queue_hwm: AtomicU64,
    throttles_total: AtomicU64,
    rejections_total: AtomicU64,
    evictions_total: AtomicU64,
    queue_gauge: Arc<Gauge>,
    hwm_gauge: Arc<Gauge>,
    evictions_ctr: Arc<Counter>,
    obs: Arc<NodeObs>,
}

impl AdmissionControl {
    pub fn new(cfg: QuotaConfig, obs: Arc<NodeObs>) -> Arc<Self> {
        let reg = obs.registry();
        let now = Instant::now();
        Arc::new(Self {
            enabled: AtomicBool::new(cfg.enabled),
            state: Mutex::named("broker.quota", QuotaState {
                cfg,
                tenants: HashMap::new(),
                last_sweep: now,
            }),
            queue_bytes: AtomicU64::new(0),
            queue_hwm: AtomicU64::new(0),
            throttles_total: AtomicU64::new(0),
            rejections_total: AtomicU64::new(0),
            evictions_total: AtomicU64::new(0),
            queue_gauge: reg.gauge("kera.broker.admission_queue_bytes", &[]),
            hwm_gauge: reg.gauge("kera.broker.admission_queue_hwm_bytes", &[]),
            evictions_ctr: reg.counter("kera.broker.quota_evictions_total", &[]),
            obs,
        })
    }

    /// Quotas active right now (runtime-flippable, see [`Self::set_enabled`]).
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flips the gate at runtime (quota-flapping drills). Tenant
    /// accounting persists across flips; in-flight permits release
    /// normally either way.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Adjusts the per-tenant produce rate at runtime. Existing token
    /// balances are kept (they re-clamp to the burst cap on next refill).
    pub fn set_produce_rate(&self, bytes_per_sec: u64) {
        self.state.lock().cfg.produce_bytes_per_sec = bytes_per_sec.max(1);
    }

    /// Broker-wide admitted-but-unacknowledged bytes right now.
    pub fn queue_bytes(&self) -> u64 {
        self.queue_bytes.load(Ordering::Relaxed)
    }

    /// High-water mark of [`Self::queue_bytes`] since the broker started.
    pub fn queue_hwm(&self) -> u64 {
        self.queue_hwm.load(Ordering::Relaxed)
    }

    /// Number of live tenant sessions (zombie-sweep observability).
    pub fn tenant_count(&self) -> usize {
        self.state.lock().tenants.len()
    }

    /// The admission gate on the produce path. Returns a permit whose
    /// `Drop` releases the tenant's window and the broker's queue bytes
    /// once the request is acknowledged (or fails). With quotas off the
    /// permit is inert and this is one atomic load.
    pub fn admit(self: &Arc<Self>, tenant: NodeId, bytes: u64) -> Result<AdmissionPermit> {
        if !self.is_enabled() {
            return Ok(AdmissionPermit::inactive());
        }
        let tenant = tenant.raw();
        let now = Instant::now();
        let mut s = self.state.lock();
        self.sweep_zombies(&mut s, now);
        if !s.tenants.contains_key(&tenant) {
            // First contact: create the per-tenant counter series with
            // the quota lock *released* — the registry has its own lock
            // and we keep the two strictly un-nested.
            drop(s);
            let (throttles, rejections) = self.tenant_counters(tenant);
            s = self.state.lock();
            let cfg = s.cfg;
            s.tenants.entry(tenant).or_insert_with(|| TenantState {
                tokens: cfg.burst_bytes as f64,
                fetch_debt: 0.0,
                last_refill: now,
                last_seen: now,
                inflight: 0,
                consecutive_throttles: 0,
                ladder_rejections: 0,
                evicted_until: None,
                throttles,
                rejections,
            });
        }
        let cfg = s.cfg;
        let queue = self.queue_bytes.load(Ordering::Relaxed);
        // lint: allow(no-panic) — inserted above under this same lock
        // hold; no sweep can run in between.
        let t = s.tenants.get_mut(&tenant).expect("tenant just ensured");
        t.last_seen = now;
        refill(t, &cfg, now);

        if let Some(until) = t.evicted_until {
            if now < until {
                t.rejections.inc();
                self.rejections_total.fetch_add(1, Ordering::Relaxed);
                return Err(KeraError::Rejected {
                    reason: format!("session evicted for {}ms more", (until - now).as_millis()),
                });
            }
            // Cooldown served: fresh session, full bucket, clean slate.
            t.evicted_until = None;
            t.consecutive_throttles = 0;
            t.ladder_rejections = 0;
            t.tokens = cfg.burst_bytes as f64;
        }

        // Broker-wide memory bound first: running out of admission-queue
        // room is pressure, not politeness — reject without a retry hint,
        // but don't walk this tenant toward eviction for it.
        if queue.saturating_add(bytes) > cfg.admission_queue_bytes {
            return Err(self.reject(t, tenant, "admission queue full", false, now, &cfg));
        }

        let window_ok = t.inflight.saturating_add(bytes) <= cfg.max_inflight_bytes;
        if window_ok && t.tokens >= bytes as f64 {
            t.tokens -= bytes as f64;
            t.consecutive_throttles = 0;
            t.ladder_rejections = 0;
            t.inflight += bytes;
            drop(s);
            let q = self.queue_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
            self.queue_gauge.add(bytes as i64);
            if q > self.queue_hwm.fetch_max(q, Ordering::Relaxed) {
                self.hwm_gauge.set(q as i64);
            }
            return Ok(AdmissionPermit { ctl: Some(Arc::clone(self)), tenant, bytes });
        }

        // Over rate or over window: throttle, escalating to rejection if
        // the tenant has been ignoring the hints.
        t.consecutive_throttles += 1;
        if t.consecutive_throttles > cfg.reject_after_throttles {
            return Err(self.reject(t, tenant, "quota exceeded and throttles ignored", true, now, &cfg));
        }
        let deficit = (bytes as f64 - t.tokens).max(0.0);
        let refill_wait =
            Duration::from_secs_f64(deficit / cfg.produce_bytes_per_sec.max(1) as f64);
        let retry_after = refill_wait.clamp(MIN_RETRY_AFTER, MAX_RETRY_AFTER);
        t.throttles.inc();
        self.throttles_total.fetch_add(1, Ordering::Relaxed);
        self.obs.event(
            Stage::QuotaThrottle,
            kera_obs::current(),
            OpCode::Produce as u8,
            u64::from(tenant),
        );
        Err(KeraError::Throttled { retry_after, window_hint: cfg.max_inflight_bytes })
    }

    /// The fetch-side gate (debt model): a tenant still paying off
    /// previously served bytes is throttled; otherwise the fetch is
    /// served and [`Self::charge_fetch`] records the debt afterwards.
    pub fn admit_fetch(&self, tenant: NodeId) -> Result<()> {
        if !self.is_enabled() {
            return Ok(());
        }
        let tenant = tenant.raw();
        let now = Instant::now();
        let mut s = self.state.lock();
        let cfg = s.cfg;
        if cfg.fetch_bytes_per_sec == 0 {
            return Ok(());
        }
        let Some(t) = s.tenants.get_mut(&tenant) else {
            return Ok(()); // no history, nothing owed
        };
        t.last_seen = now;
        refill(t, &cfg, now);
        if t.fetch_debt <= 0.0 {
            return Ok(());
        }
        let retry_after = Duration::from_secs_f64(t.fetch_debt / cfg.fetch_bytes_per_sec as f64)
            .clamp(MIN_RETRY_AFTER, MAX_RETRY_AFTER);
        t.throttles.inc();
        self.throttles_total.fetch_add(1, Ordering::Relaxed);
        self.obs.event(
            Stage::QuotaThrottle,
            kera_obs::current(),
            OpCode::Fetch as u8,
            u64::from(tenant),
        );
        Err(KeraError::Throttled { retry_after, window_hint: 0 })
    }

    /// Records `bytes` of served fetch data against the tenant's debt.
    pub fn charge_fetch(&self, tenant: NodeId, bytes: u64) {
        if !self.is_enabled() || bytes == 0 {
            return;
        }
        let tenant = tenant.raw();
        let now = Instant::now();
        let mut s = self.state.lock();
        let cfg = s.cfg;
        if cfg.fetch_bytes_per_sec == 0 {
            return;
        }
        if !s.tenants.contains_key(&tenant) {
            drop(s);
            let (throttles, rejections) = self.tenant_counters(tenant);
            s = self.state.lock();
            let cfg = s.cfg;
            s.tenants.entry(tenant).or_insert_with(|| TenantState {
                tokens: cfg.burst_bytes as f64,
                fetch_debt: 0.0,
                last_refill: now,
                last_seen: now,
                inflight: 0,
                consecutive_throttles: 0,
                ladder_rejections: 0,
                evicted_until: None,
                throttles,
                rejections,
            });
        }
        // lint: allow(no-panic) — inserted above under this same lock
        // hold; no sweep can run in between.
        let t = s.tenants.get_mut(&tenant).expect("tenant just ensured");
        t.last_seen = now;
        t.fetch_debt += bytes as f64;
    }

    /// Diagnostic snapshot for the `QuotaState` RPC. `tenant` is the raw
    /// node id to report on; unknown tenants report zeroed accounting.
    pub fn snapshot(&self, tenant: u32) -> QuotaStateResponse {
        let s = self.state.lock();
        let (known, tokens, inflight) = match s.tenants.get(&tenant) {
            Some(t) => (true, t.tokens.max(0.0) as u64, t.inflight),
            None => (false, 0, 0),
        };
        QuotaStateResponse {
            enabled: self.is_enabled(),
            known,
            tokens,
            inflight_bytes: inflight,
            queue_bytes: self.queue_bytes.load(Ordering::Relaxed),
            queue_hwm_bytes: self.queue_hwm.load(Ordering::Relaxed),
            throttles: self.throttles_total.load(Ordering::Relaxed),
            rejections: self.rejections_total.load(Ordering::Relaxed),
            evictions: self.evictions_total.load(Ordering::Relaxed),
        }
    }

    /// Registers (or re-finds) the per-tenant counter series. Never
    /// called with the quota lock held — the registry lock must not
    /// nest under `broker.quota`.
    fn tenant_counters(&self, tenant: u32) -> (Arc<Counter>, Arc<Counter>) {
        let reg = self.obs.registry();
        let id = tenant.to_string();
        (
            reg.counter("kera.broker.quota_throttles_total", &[("tenant", &id)]),
            reg.counter("kera.broker.quota_rejections_total", &[("tenant", &id)]),
        )
    }

    /// One step up the ladder: count a rejection and, if `escalate` and
    /// the tenant has burned through its allowance, evict the session.
    fn reject(
        &self,
        t: &mut TenantState,
        tenant: u32,
        reason: &str,
        escalate: bool,
        now: Instant,
        cfg: &QuotaConfig,
    ) -> KeraError {
        t.rejections.inc();
        self.rejections_total.fetch_add(1, Ordering::Relaxed);
        self.obs.event(
            Stage::QuotaReject,
            kera_obs::current(),
            OpCode::Produce as u8,
            u64::from(tenant),
        );
        if escalate {
            t.ladder_rejections += 1;
            if t.ladder_rejections >= cfg.evict_after_rejections {
                t.evicted_until = Some(now + cfg.evict_cooldown);
                self.evictions_total.fetch_add(1, Ordering::Relaxed);
                self.evictions_ctr.inc();
                self.obs.event(
                    Stage::QuotaEvict,
                    kera_obs::current(),
                    OpCode::Produce as u8,
                    u64::from(tenant),
                );
                return KeraError::Rejected {
                    reason: format!("{reason}; session evicted"),
                };
            }
        }
        KeraError::Rejected { reason: reason.to_string() }
    }

    /// Drops sessions idle past `zombie_idle` — a crashed client must
    /// not pin tenant accounting forever. The broker-wide queue bytes
    /// are owned by outstanding permits and untouched here, so a
    /// stuck-in-flight request still releases correctly on permit drop.
    fn sweep_zombies(&self, s: &mut QuotaState, now: Instant) {
        let interval = (s.cfg.zombie_idle / 2).max(Duration::from_millis(50));
        if now.duration_since(s.last_sweep) < interval {
            return;
        }
        s.last_sweep = now;
        let idle = s.cfg.zombie_idle;
        let before = s.tenants.len();
        s.tenants.retain(|_, t| now.duration_since(t.last_seen) <= idle);
        let swept = before - s.tenants.len();
        if swept > 0 {
            self.evictions_total.fetch_add(swept as u64, Ordering::Relaxed);
            self.evictions_ctr.add(swept as u64);
        }
    }

    fn release(&self, tenant: u32, bytes: u64) {
        self.queue_bytes.fetch_sub(bytes, Ordering::Relaxed);
        self.queue_gauge.sub(bytes as i64);
        let mut s = self.state.lock();
        if let Some(t) = s.tenants.get_mut(&tenant) {
            t.inflight = t.inflight.saturating_sub(bytes);
        }
    }
}

fn refill(t: &mut TenantState, cfg: &QuotaConfig, now: Instant) {
    let dt = now.duration_since(t.last_refill).as_secs_f64();
    t.last_refill = now;
    t.tokens = (t.tokens + dt * cfg.produce_bytes_per_sec as f64).min(cfg.burst_bytes as f64);
    if cfg.fetch_bytes_per_sec > 0 {
        t.fetch_debt = (t.fetch_debt - dt * cfg.fetch_bytes_per_sec as f64).max(0.0);
    }
}

/// RAII admission slot: holds the tenant's window share and the
/// broker's queue bytes from admission until the produce request is
/// acknowledged (or fails) — dropping it releases both.
pub struct AdmissionPermit {
    ctl: Option<Arc<AdmissionControl>>,
    tenant: u32,
    bytes: u64,
}

impl AdmissionPermit {
    /// The no-op permit handed out when quotas are off or the request
    /// bypasses the gate (recovery re-ingestion).
    pub fn inactive() -> Self {
        Self { ctl: None, tenant: 0, bytes: 0 }
    }
}

impl std::fmt::Debug for AdmissionPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionPermit")
            .field("active", &self.ctl.is_some())
            .field("tenant", &self.tenant)
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        if let Some(ctl) = self.ctl.take() {
            ctl.release(self.tenant, self.bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quotas() -> QuotaConfig {
        QuotaConfig {
            enabled: true,
            produce_bytes_per_sec: 1_000_000,
            burst_bytes: 10_000,
            fetch_bytes_per_sec: 1_000_000,
            max_inflight_bytes: 8_000,
            admission_queue_bytes: 20_000,
            reject_after_throttles: 3,
            evict_after_rejections: 2,
            evict_cooldown: Duration::from_millis(50),
            zombie_idle: Duration::from_millis(120),
        }
    }

    fn ctl(cfg: QuotaConfig) -> Arc<AdmissionControl> {
        AdmissionControl::new(cfg, NodeObs::disabled(1))
    }

    #[test]
    fn disabled_gate_admits_everything() {
        let ctl = ctl(QuotaConfig::default());
        for _ in 0..1000 {
            ctl.admit(NodeId(2001), u64::MAX / 2).unwrap();
        }
        assert_eq!(ctl.queue_bytes(), 0);
        assert_eq!(ctl.tenant_count(), 0);
    }

    #[test]
    fn bucket_admits_then_throttles_and_permit_releases() {
        let ctl = ctl(quotas());
        let p = ctl.admit(NodeId(2001), 6_000).unwrap();
        assert_eq!(ctl.queue_bytes(), 6_000);
        // Burst exhausted (10 KB bucket, 6 KB spent): an instant 6 KB
        // follow-up throttles with a structured hint.
        match ctl.admit(NodeId(2001), 6_000).unwrap_err() {
            KeraError::Throttled { retry_after, window_hint } => {
                assert!(retry_after >= MIN_RETRY_AFTER);
                assert_eq!(window_hint, 8_000);
            }
            other => panic!("wrong error: {other}"),
        }
        drop(p);
        assert_eq!(ctl.queue_bytes(), 0);
        assert_eq!(ctl.snapshot(2001).inflight_bytes, 0);
        assert!(ctl.queue_hwm() >= 6_000);
    }

    #[test]
    fn inflight_window_binds_even_with_tokens() {
        let cfg = QuotaConfig { burst_bytes: 100_000, ..quotas() };
        let ctl = ctl(cfg);
        let _p = ctl.admit(NodeId(2001), 8_000).unwrap();
        // Tokens remain, but the 8 KB window is full.
        assert!(matches!(
            ctl.admit(NodeId(2001), 1_000).unwrap_err(),
            KeraError::Throttled { .. }
        ));
    }

    #[test]
    fn ladder_escalates_to_reject_then_evict_then_cooldown_resets() {
        let ctl = ctl(quotas());
        let tenant = NodeId(2002);
        // Oversized batches (bigger than the burst cap and the window,
        // though within the broker-wide queue cap) can never be
        // admitted: throttles, then rejections, then eviction.
        let mut throttles = 0;
        let mut rejections = 0;
        let mut evicted = false;
        for _ in 0..20 {
            match ctl.admit(tenant, 15_000).unwrap_err() {
                KeraError::Throttled { .. } => throttles += 1,
                KeraError::Rejected { reason } => {
                    rejections += 1;
                    if reason.contains("evicted") {
                        evicted = true;
                        break;
                    }
                }
                other => panic!("wrong error: {other}"),
            }
        }
        assert_eq!(throttles, 3);
        assert_eq!(rejections, 2);
        assert!(evicted);
        // During cooldown even a polite request is refused...
        assert!(matches!(
            ctl.admit(tenant, 100).unwrap_err(),
            KeraError::Rejected { .. }
        ));
        // ...and after it the session starts fresh.
        std::thread::sleep(Duration::from_millis(60));
        ctl.admit(tenant, 100).unwrap();
        let snap = ctl.snapshot(tenant.raw());
        assert!(snap.evictions >= 1);
        assert!(snap.throttles >= 3);
    }

    #[test]
    fn queue_cap_rejects_without_escalation() {
        let cfg = QuotaConfig {
            burst_bytes: 20_000,
            max_inflight_bytes: 20_000,
            admission_queue_bytes: 20_000,
            ..quotas()
        };
        let ctl = ctl(cfg);
        let _a = ctl.admit(NodeId(2001), 15_000).unwrap();
        // A *different* tenant hits the broker-wide cap: rejected, but
        // its ladder standing is untouched (no eviction risk).
        for _ in 0..10 {
            assert!(matches!(
                ctl.admit(NodeId(2002), 10_000).unwrap_err(),
                KeraError::Rejected { .. }
            ));
        }
        drop(_a);
        ctl.admit(NodeId(2002), 10_000).unwrap();
    }

    #[test]
    fn zombie_sessions_are_swept() {
        let ctl = ctl(quotas());
        ctl.admit(NodeId(2001), 100).unwrap();
        assert_eq!(ctl.tenant_count(), 1);
        std::thread::sleep(Duration::from_millis(150));
        // Any other tenant's traffic triggers the sweep.
        ctl.admit(NodeId(2002), 100).unwrap();
        assert_eq!(ctl.tenant_count(), 1);
        assert!(ctl.snapshot(0).evictions >= 1);
        assert!(!ctl.snapshot(2001).known);
    }

    #[test]
    fn fetch_debt_throttles_until_it_drains() {
        let ctl = ctl(quotas());
        let tenant = NodeId(2005);
        ctl.admit_fetch(tenant).unwrap(); // no history, free
        ctl.charge_fetch(tenant, 5_000);
        match ctl.admit_fetch(tenant).unwrap_err() {
            KeraError::Throttled { retry_after, .. } => assert!(retry_after > Duration::ZERO),
            other => panic!("wrong error: {other}"),
        }
        // 5 KB at 1 MB/s drains in 5 ms.
        std::thread::sleep(Duration::from_millis(10));
        ctl.admit_fetch(tenant).unwrap();
    }

    #[test]
    fn runtime_flapping_keeps_accounting_consistent() {
        let ctl = ctl(quotas());
        let p = ctl.admit(NodeId(2001), 4_000).unwrap();
        ctl.set_enabled(false);
        ctl.admit(NodeId(2001), u64::MAX / 2).unwrap(); // gate bypassed
        ctl.set_produce_rate(2_000_000);
        ctl.set_enabled(true);
        drop(p);
        assert_eq!(ctl.queue_bytes(), 0);
        assert_eq!(ctl.snapshot(2001).inflight_bytes, 0);
    }
}
