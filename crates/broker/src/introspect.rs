//! Shared serving path for the `Introspect` RPC (opcode 20).
//!
//! Every node role — broker, backup, coordinator replica — answers the
//! same wire shape: a fixed health header plus two optional JSON
//! sections (metrics snapshot, sampled slow-span trees) selected by the
//! request's section bitmask. The role-specific service fills in the
//! health fields it owns; this helper adds everything derived from the
//! node's [`NodeObs`] handle and encodes the response.

use bytes::Bytes;
use kera_common::Result;
use kera_obs::NodeObs;
use kera_wire::messages::{introspect_sections, IntrospectRequest, IntrospectResponse};

/// Role-owned health fields of an introspection response. The obs-derived
/// fields (in-flight window, progress heartbeat, watchdog arming, the
/// metrics and traces sections) are filled in by [`serve`].
#[derive(Default)]
pub struct HealthFields {
    pub role: u8,
    pub is_leader: bool,
    pub term: u64,
    pub vlogs: u32,
    pub segments: u32,
    pub appended_bytes: u64,
    pub durable_bytes: u64,
    pub consumer_lag_bytes: u64,
    pub quota_enabled: bool,
    pub quota_queue_bytes: u64,
    pub quota_queue_hwm_bytes: u64,
    pub quota_throttles: u64,
    pub quota_rejections: u64,
}

/// Decodes the request, assembles the selected sections and encodes the
/// response.
pub fn serve(obs: &NodeObs, payload: &[u8], h: HealthFields) -> Result<Bytes> {
    let req = IntrospectRequest::decode(payload)?;
    let metrics_json = if req.sections & introspect_sections::METRICS != 0 {
        let mut snap = obs.registry().snapshot();
        // Lock contention is process-global in the parking_lot shim, so
        // every node of an in-process cluster reports the same classes;
        // scrapers must merge it once per process, not once per node.
        snap.merge(&kera_obs::lock_contention_snapshot());
        snap.to_json()
    } else {
        String::new()
    };
    let traces_json = if req.sections & introspect_sections::TRACES != 0 {
        obs.slow_traces().to_json(obs.recorder())
    } else {
        String::new()
    };
    IntrospectResponse {
        node: obs.node(),
        role: h.role,
        is_leader: h.is_leader,
        quota_enabled: h.quota_enabled,
        term: h.term,
        vlogs: h.vlogs,
        segments: h.segments,
        appended_bytes: h.appended_bytes,
        durable_bytes: h.durable_bytes,
        consumer_lag_bytes: h.consumer_lag_bytes,
        quota_queue_bytes: h.quota_queue_bytes,
        quota_queue_hwm_bytes: h.quota_queue_hwm_bytes,
        quota_throttles: h.quota_throttles,
        quota_rejections: h.quota_rejections,
        inflight: obs.inflight(),
        progress: obs.progress_counter(),
        watchdog_ms: obs.watchdog_ms(),
        metrics_json,
        traces_json,
    }
    .encode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kera_obs::Stage;
    use kera_wire::messages::introspect_role;

    #[test]
    fn sections_bitmask_gates_the_json_payloads() {
        let obs = NodeObs::new(77, true);
        obs.root_span(Stage::Append).finish();
        let fields = || HealthFields {
            role: introspect_role::BROKER,
            appended_bytes: 123,
            ..Default::default()
        };

        let health_only =
            serve(&obs, &IntrospectRequest { sections: introspect_sections::HEALTH }.encode(), fields())
                .unwrap();
        let resp = IntrospectResponse::decode(&health_only).unwrap();
        assert_eq!(resp.node, 77);
        assert_eq!(resp.appended_bytes, 123);
        assert!(resp.metrics_json.is_empty());
        assert!(resp.traces_json.is_empty());

        let all =
            serve(&obs, &IntrospectRequest { sections: introspect_sections::ALL }.encode(), fields())
                .unwrap();
        let resp = IntrospectResponse::decode(&all).unwrap();
        assert!(resp.metrics_json.contains("kera.trace.stage"));
        assert!(resp.traces_json.contains("\"stage\":\"append\""), "{}", resp.traces_json);
    }
}
