//! The KerA broker stack: broker, backup and coordinator services plus
//! in-process cluster assembly (paper Fig. 1).
//!
//! - [`backup`] — the backup service: holds replicated virtual segments
//!   in memory, verifies chunk and segment checksums, asynchronously
//!   flushes closed segments to secondary storage, and serves recovery
//!   reads;
//! - [`broker`] — the broker (ingestion) service: the produce path
//!   (physical append + virtual-log append + consolidated replication)
//!   and the fetch path (durable reads);
//! - [`channel`] — [`channel::RpcBackupChannel`]: fans one replication
//!   batch out to all of a virtual segment's backups in parallel;
//! - [`coordinator`] — stream creation, streamlet placement, metadata
//!   service and crash-time reassignment, replicated over a quorum of
//!   coordinator replicas via the metadata log;
//! - [`election`] — the pure leader-election state machine (terms,
//!   quorum votes, log-freshness checks) the coordinator replicas run;
//! - [`metalog`] — the replicated metadata log and the deterministic
//!   state machine folded from its committed prefix;
//! - [`cluster`] — [`cluster::KeraCluster`]: spawns a whole cluster
//!   (coordinator + brokers + backups) on an in-memory network, the way
//!   the paper deploys one broker + one backup service per node.

pub mod backup;
pub mod broker;
pub mod channel;
pub mod cluster;
pub mod coordinator;
pub mod election;
pub mod introspect;
pub mod metalog;
pub mod quota;

pub use cluster::KeraCluster;
