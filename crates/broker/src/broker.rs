//! The broker (ingestion) service: produce and fetch paths (paper §IV-B).
//!
//! Produce path, per chunk: identify the stream object and the streamlet's
//! active group from the producer id; append the chunk to the group's open
//! segment (physical append, header fields assigned in place); append a
//! chunk *reference* to the streamlet's virtual log — atomically with the
//! physical append, under the slot lock. Once all chunks of the request
//! are appended, the touched virtual logs are synchronized on the backups
//! and the producer is acknowledged. Integrity note: payload checksums are
//! producer-computed and verified on the *backups* (and at recovery); the
//! broker append path stays copy-and-patch only, preserving the paper's
//! zero-copy claim.
//!
//! Fetch path: consumers read whole chunks below the durable head only.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use bytes::Bytes;
use kera_common::config::{QuotaConfig, StreamConfig};
use kera_common::ids::{NodeId, StreamId, StreamletId};
use kera_common::metrics::Counter;
use kera_common::{KeraError, Result};
use kera_obs::{Gauge, NodeObs, Stage};
use parking_lot::Mutex;
use kera_rpc::{RequestContext, RpcClient, Service};
use kera_storage::store::StreamStore;
use kera_storage::streamlet::SlotAppend;
use kera_vlog::selector::SelectionPolicy;
use kera_vlog::vseg::ChunkRef;
use kera_vlog::{ReplicationDriver, VirtualLog, VirtualLogSet};
use kera_wire::chunk::ChunkIter;
use kera_wire::cursor::SlotCursor;
use kera_wire::frames::OpCode;
use kera_wire::messages::{
    introspect_role, FetchRequest, FetchResponse, FetchResult, HostStreamRequest,
    ProduceRequest, ProduceResponse, QuotaStateRequest, ReplicaRole, SeekRequest,
    SeekResponse,
};

use crate::channel::RpcBackupChannel;
use crate::introspect::{self, HealthFields};
use crate::quota::{AdmissionControl, AdmissionPermit};

/// Timeout for one replication round.
const REPLICATION_TIMEOUT: Duration = Duration::from_secs(5);

/// The broker service of one node.
pub struct BrokerService {
    node: NodeId,
    store: StreamStore,
    vlogs: VirtualLogSet,
    /// Background replication executor (RAMCloud's ReplicaManager role);
    /// created when the broker is attached to its runtime.
    driver: OnceLock<Arc<ReplicationDriver>>,
    /// Raw RPC handle (stream deletion's backup frees).
    rpc: OnceLock<RpcClient>,
    /// How many shipping threads the driver runs.
    replication_threads: usize,
    /// Observability handle; the counters below live in its registry.
    obs: Arc<NodeObs>,
    /// Multi-tenant admission gate on the produce/fetch paths (inert
    /// unless `QuotaConfig::enabled`).
    admission: Arc<AdmissionControl>,
    /// Chunks ingested (`kera.broker.chunks_in`).
    pub chunks_in: Arc<Counter>,
    /// Records ingested (`kera.broker.records_in`).
    pub records_in: Arc<Counter>,
    /// Chunk bytes ingested (`kera.broker.bytes_in`).
    pub bytes_in: Arc<Counter>,
    /// Fetch requests served (`kera.broker.fetches`).
    pub fetches: Arc<Counter>,
    /// Retried chunks answered from the per-slot replay cache instead of
    /// being appended a second time (`kera.broker.chunks_replayed`).
    pub chunks_replayed: Arc<Counter>,
    /// Chunk bytes served to consumers (`kera.broker.bytes_fetched`).
    pub bytes_fetched: Arc<Counter>,
    /// Bytes ingested but not yet fetched by any consumer
    /// (`kera.broker.consumer_lag_bytes`; refreshed on introspection).
    consumer_lag_gauge: Arc<Gauge>,
    /// Bytes appended to virtual logs but not yet durable on backups
    /// (`kera.broker.replication_lag_bytes`; refreshed on introspection).
    replication_lag_gauge: Arc<Gauge>,
    /// Last-fetched cursor per (stream, streamlet, slot): the consumers'
    /// committed read positions. Updated only on the fetch path, with no
    /// other guard held.
    fetch_pos: Mutex<BTreeMap<(StreamId, StreamletId, u32), SlotCursor>>,
    /// Chaos hook: a frozen broker wedges mid-ingest — produce requests
    /// hang (holding their RPC worker) until thawed, while fetch and
    /// introspection keep answering.
    frozen: AtomicBool,
}

impl BrokerService {
    /// `colocated_backup`: the backup service on this broker's machine
    /// (never selected — it would die with the broker);
    /// `cluster_backups`: every backup node in the cluster (virtual logs
    /// pick per-virtual-segment subsets from it).
    pub fn new(node: NodeId, colocated_backup: NodeId, cluster_backups: Vec<NodeId>) -> Arc<Self> {
        Self::with_replication_threads(node, colocated_backup, cluster_backups, 2)
    }

    /// Like [`BrokerService::new`] with an explicit replication-driver
    /// thread count.
    pub fn with_replication_threads(
        node: NodeId,
        colocated_backup: NodeId,
        cluster_backups: Vec<NodeId>,
        replication_threads: usize,
    ) -> Arc<Self> {
        Self::with_obs(
            node,
            colocated_backup,
            cluster_backups,
            replication_threads,
            NodeObs::disabled(node.raw()),
        )
    }

    /// Full constructor: binds the broker (and its virtual logs) to a
    /// node's observability handle. Ingestion counters register as
    /// `kera.broker.*`; produce requests emit `append` and `replicate`
    /// spans under the serving RPC's trace.
    pub fn with_obs(
        node: NodeId,
        colocated_backup: NodeId,
        cluster_backups: Vec<NodeId>,
        replication_threads: usize,
        obs: Arc<NodeObs>,
    ) -> Arc<Self> {
        Self::with_quotas(
            node,
            colocated_backup,
            cluster_backups,
            replication_threads,
            obs,
            QuotaConfig::default(),
        )
    }

    /// Full constructor: [`BrokerService::with_obs`] plus the tenant
    /// quota configuration (the default is disabled — no admission gate).
    pub fn with_quotas(
        node: NodeId,
        colocated_backup: NodeId,
        cluster_backups: Vec<NodeId>,
        replication_threads: usize,
        obs: Arc<NodeObs>,
        quotas: QuotaConfig,
    ) -> Arc<Self> {
        let reg = obs.registry();
        Arc::new(Self {
            node,
            store: StreamStore::new(),
            vlogs: VirtualLogSet::new_with_obs(
                node,
                colocated_backup,
                cluster_backups,
                SelectionPolicy::RoundRobin,
                Arc::clone(&obs),
            ),
            driver: OnceLock::new(),
            rpc: OnceLock::new(),
            replication_threads,
            chunks_in: reg.counter("kera.broker.chunks_in", &[]),
            records_in: reg.counter("kera.broker.records_in", &[]),
            bytes_in: reg.counter("kera.broker.bytes_in", &[]),
            fetches: reg.counter("kera.broker.fetches", &[]),
            chunks_replayed: reg.counter("kera.broker.chunks_replayed", &[]),
            bytes_fetched: reg.counter("kera.broker.bytes_fetched", &[]),
            consumer_lag_gauge: reg.gauge("kera.broker.consumer_lag_bytes", &[]),
            replication_lag_gauge: reg.gauge("kera.broker.replication_lag_bytes", &[]),
            fetch_pos: Mutex::named("broker.fetchpos", BTreeMap::new()),
            frozen: AtomicBool::new(false),
            admission: AdmissionControl::new(quotas, Arc::clone(&obs)),
            obs,
        })
    }

    /// The admission gate (runtime quota flips, chaos drills, tooling).
    pub fn admission(&self) -> &Arc<AdmissionControl> {
        &self.admission
    }

    /// Wires the service to its node runtime's RPC client and starts the
    /// replication driver (must be called once, right after
    /// `NodeRuntime::start`).
    pub fn attach_client(&self, client: RpcClient) {
        let channel = Arc::new(RpcBackupChannel::new(client.clone(), REPLICATION_TIMEOUT));
        let _ = self.rpc.set(client);
        let _ = self
            .driver
            .set(ReplicationDriver::start(channel, self.replication_threads));
    }

    fn driver(&self) -> Result<&Arc<ReplicationDriver>> {
        self.driver
            .get()
            .ok_or_else(|| KeraError::Protocol("broker not attached to its runtime".into()))
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    pub fn obs(&self) -> &Arc<NodeObs> {
        &self.obs
    }

    pub fn store(&self) -> &StreamStore {
        &self.store
    }

    pub fn vlogs(&self) -> &VirtualLogSet {
        &self.vlogs
    }

    /// Chaos hook: wedge the ingest path — produce requests hang until
    /// [`BrokerService::thaw`]. Fetch and introspection keep answering:
    /// a stalled data plane must stay observable.
    pub fn freeze(&self) {
        self.frozen.store(true, Ordering::SeqCst);
    }

    pub fn thaw(&self) {
        self.frozen.store(false, Ordering::SeqCst);
    }

    fn wait_if_frozen(&self, ctx: &RequestContext) -> Result<()> {
        while self.frozen.load(Ordering::SeqCst) {
            if let Some(d) = ctx.deadline {
                if Instant::now() >= d {
                    return Err(KeraError::Timeout { op: "frozen broker" });
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(())
    }

    /// Bytes ingested but never fetched by any consumer — the broker's
    /// aggregate committed-offset lag.
    pub fn consumer_lag_bytes(&self) -> u64 {
        self.bytes_in.get().saturating_sub(self.bytes_fetched.get())
    }

    /// Slots with at least one recorded consumer fetch position.
    pub fn tracked_fetch_slots(&self) -> usize {
        self.fetch_pos.lock().len()
    }

    fn handle_host(&self, req: HostStreamRequest) -> Result<()> {
        let leaders: Vec<_> = req
            .assignments
            .iter()
            .filter(|a| a.role == ReplicaRole::Leader)
            .map(|a| a.streamlet)
            .collect();
        self.store.host(req.metadata, &leaders);
        Ok(())
    }

    fn handle_produce(
        &self,
        req: ProduceRequest,
        durability_timeout: Duration,
    ) -> Result<ProduceResponse> {
        let mut acks = Vec::with_capacity(req.chunk_count as usize);
        // Touched virtual logs, deduped, with the highest ticket each.
        let mut pending: Vec<(Arc<VirtualLog>, u64)> = Vec::new();

        // The append stage, parented to the serving RPC's span (the
        // worker thread's current context). Entered so the virtual logs
        // see this span as the rider context of every appended chunk.
        let mut append_span = self.obs.span(Stage::Append, kera_obs::current());
        append_span.set_aux(u64::from(req.chunk_count));
        let append_guard =
            append_span.is_recording().then(|| kera_obs::enter(append_span.context()));

        for chunk in ChunkIter::new(&req.chunks) {
            let chunk = chunk?;
            let h = *chunk.header();
            if h.record_count == 0 {
                continue; // empty chunks carry nothing; skip quietly
            }
            let hosted = self.store.stream(h.stream)?;
            let config: StreamConfig = hosted.config().clone();
            let streamlet = hosted
                .streamlet(h.streamlet)
                .ok_or(KeraError::UnknownStreamlet(h.stream, h.streamlet))?;

            let seq = h.sequence_tag();
            if config.replication.factor > 1 {
                let slot = streamlet.slot_of(h.producer);
                let vlog = self.vlogs.log_for(&config, h.streamlet, slot)?;
                let checksum = h.checksum;
                let outcome = streamlet.append_chunk_tracked(
                    h.producer,
                    chunk.bytes(),
                    h.record_count,
                    seq,
                    |a| {
                        vlog.append(ChunkRef {
                            segment: Arc::clone(&a.segment),
                            offset: a.offset_in_segment,
                            len: a.len,
                            checksum,
                            gref: a.gref,
                        })
                        .map(Some)
                    },
                )?;
                let (ack, ticket, fresh) = match outcome {
                    SlotAppend::Fresh { append, token } => (append.to_ack(), token, true),
                    SlotAppend::Replay { ack, token } => (ack, token, false),
                };
                // A replayed chunk still gates the response on the
                // durability of its *original* append: wait on the
                // ticket recorded back then.
                if let Some(ticket) = ticket {
                    match pending.iter_mut().find(|(l, _)| Arc::ptr_eq(l, &vlog)) {
                        Some((_, t)) => *t = (*t).max(ticket),
                        None => pending.push((Arc::clone(&vlog), ticket)),
                    }
                }
                acks.push(ack);
                if !fresh {
                    self.chunks_replayed.inc();
                    continue;
                }
            } else {
                let outcome = streamlet.append_chunk_tracked(
                    h.producer,
                    chunk.bytes(),
                    h.record_count,
                    seq,
                    |a| {
                        a.segment.make_all_durable();
                        Ok(None)
                    },
                )?;
                match outcome {
                    SlotAppend::Fresh { append, .. } => acks.push(append.to_ack()),
                    SlotAppend::Replay { ack, .. } => {
                        acks.push(ack);
                        self.chunks_replayed.inc();
                        continue;
                    }
                }
            }
            self.chunks_in.inc();
            self.records_in.add(u64::from(h.record_count));
            self.bytes_in.add(chunk.len() as u64);
        }

        drop(append_guard);
        append_span.finish();

        // Hand every touched virtual log to the replication driver, then
        // wait for the tickets. The driver ships consolidated batches for
        // all logs concurrently; this worker only blocks on durability —
        // "once all chunks of a request are appended, the corresponding
        // replicated virtual logs are synchronized on backups" (§IV-B).
        if !pending.is_empty() {
            // The replicate stage: how long this request waited for its
            // chunks to become durable on the backups.
            let mut rep_span = self.obs.span(Stage::Replicate, kera_obs::current());
            rep_span.set_aux(pending.len() as u64);
            let driver = self.driver()?;
            for (vlog, _) in &pending {
                driver.enqueue(vlog);
            }
            for (vlog, ticket) in &pending {
                vlog.wait_durable(*ticket, durability_timeout)?;
            }
            rep_span.finish();
        }
        self.obs.bump_progress();
        Ok(ProduceResponse { acks })
    }

    /// Unhosts a deleted stream: groups close, dedicated virtual logs are
    /// dropped and their replicated segments freed on every backup.
    /// Shared-pool logs stay (their space interleaves live streams; the
    /// paper leaves reclaiming it to log cleaning).
    fn handle_delete(&self, stream: StreamId) -> Result<()> {
        self.store.remove(stream);
        let dropped = self.vlogs.remove_stream(stream);
        if dropped.is_empty() {
            return Ok(());
        }
        // Free replicated segments on every backup (idempotent; dead
        // backups are skipped; fire-and-forget).
        if let Some(rpc) = self.rpc.get() {
            for vlog in dropped {
                let mut w = kera_wire::codec::Writer::new();
                w.u32(self.node.raw()).u32(vlog.id().raw());
                let payload = w.finish();
                for &backup in self.vlogs.cluster_backups() {
                    // lint: allow(no-hot-copy) — refcount clone of a tiny control frame
                    let _ = rpc.call_async(backup, OpCode::BackupFree, payload.clone());
                }
            }
        }
        Ok(())
    }

    fn handle_fetch(&self, req: FetchRequest) -> Result<FetchResponse> {
        let mut results = Vec::with_capacity(req.entries.len());
        for e in &req.entries {
            let (data, cursor) = self.store.read_slot(
                e.stream,
                e.streamlet,
                e.slot,
                e.cursor,
                e.max_bytes as usize,
            )?;
            self.bytes_fetched.add(data.len() as u64);
            // Committed read position, recorded with no other guard held
            // (the slot read above has already released its locks).
            self.fetch_pos.lock().insert((e.stream, e.streamlet, e.slot), cursor);
            results.push(FetchResult {
                stream: e.stream,
                streamlet: e.streamlet,
                slot: e.slot,
                cursor,
                data: Bytes::from(data),
            });
        }
        self.fetches.inc();
        self.obs.bump_progress();
        Ok(FetchResponse { results })
    }

    /// Serves the Introspect RPC: health from the broker's own stores
    /// and quota gate, metrics/traces via the shared helper. Refreshes
    /// the lag gauges as a side effect so metric scrapes see them too.
    fn handle_introspect(&self, ctx: &RequestContext, payload: &[u8]) -> Result<Bytes> {
        let logs = self.vlogs.all_logs();
        let appended: u64 = logs.iter().map(|l| l.appended()).sum();
        let durable: u64 = logs.iter().map(|l| l.durable()).sum();
        let segments: usize = logs.iter().map(|l| l.live_vsegs()).sum();
        let consumer_lag = self.consumer_lag_bytes();
        self.consumer_lag_gauge.set(consumer_lag.min(i64::MAX as u64) as i64);
        self.replication_lag_gauge
            .set(appended.saturating_sub(durable).min(i64::MAX as u64) as i64);
        let quota = self.admission.snapshot(ctx.from.raw());
        introspect::serve(
            &self.obs,
            payload,
            HealthFields {
                role: introspect_role::BROKER,
                is_leader: false,
                term: 0,
                vlogs: self.vlogs.log_count() as u32,
                segments: segments as u32,
                appended_bytes: appended,
                durable_bytes: durable,
                consumer_lag_bytes: consumer_lag,
                quota_enabled: self.admission.is_enabled(),
                quota_queue_bytes: quota.queue_bytes,
                quota_queue_hwm_bytes: quota.queue_hwm_bytes,
                quota_throttles: quota.throttles,
                quota_rejections: quota.rejections,
            },
        )
    }
}

impl Service for BrokerService {
    fn handle(&self, ctx: &RequestContext, payload: Bytes) -> Result<Bytes> {
        match ctx.opcode {
            OpCode::Ping => Ok(Bytes::new()),
            OpCode::HostStream => {
                let req = HostStreamRequest::decode(&payload)?;
                self.handle_host(req)?;
                Ok(Bytes::new())
            }
            // Recovery re-ingestion is "handled as a normal producer
            // request" (paper §IV-B).
            OpCode::Produce | OpCode::RecoveryIngest => {
                self.wait_if_frozen(ctx)?;
                // Slice the chunk train straight out of the receive
                // buffer: the broker never re-owns the payload.
                let req = ProduceRequest::decode_bytes(&payload)?;
                // Admission gate, before any append work. Recovery
                // re-ingestion bypasses it: throttling our own crash
                // recovery would turn overload into data loss. The
                // permit spans the durability wait — its bytes *are*
                // the broker's admission-queue occupancy.
                let _permit = if ctx.opcode == OpCode::Produce && !req.recovery {
                    self.admission.admit(ctx.from, req.chunks.len() as u64)?
                } else {
                    AdmissionPermit::inactive()
                };
                // Don't block on durability longer than the caller is
                // willing to wait (propagated deadline), nor longer than
                // the replication timeout.
                let timeout = ctx
                    .remaining()
                    .map_or(REPLICATION_TIMEOUT, |r| r.min(REPLICATION_TIMEOUT));
                Ok(self.handle_produce(req, timeout)?.encode())
            }
            OpCode::Fetch => {
                let req = FetchRequest::decode(&payload)?;
                // Fetch quota is a debt model: refuse while the tenant
                // still owes for previously served bytes, else serve
                // and charge afterwards.
                self.admission.admit_fetch(ctx.from)?;
                let resp = self.handle_fetch(req)?;
                let served: u64 = resp.results.iter().map(|r| r.data.len() as u64).sum();
                self.admission.charge_fetch(ctx.from, served);
                resp.encode()
            }
            OpCode::QuotaState => {
                let req = QuotaStateRequest::decode(&payload)?;
                let tenant =
                    if req.tenant == u32::MAX { ctx.from.raw() } else { req.tenant };
                Ok(self.admission.snapshot(tenant).encode())
            }
            OpCode::Introspect => self.handle_introspect(ctx, &payload),
            OpCode::Seek => {
                let req = SeekRequest::decode(&payload)?;
                let streamlet = self.store.streamlet(req.stream, req.streamlet)?;
                let resp = match streamlet.seek(req.slot, req.record_offset) {
                    Some(cursor) => SeekResponse { found: true, cursor },
                    None => SeekResponse {
                        found: false,
                        cursor: kera_wire::cursor::SlotCursor::START,
                    },
                };
                Ok(resp.encode())
            }
            OpCode::DeleteStream => {
                let stream =
                    StreamId(kera_wire::codec::Reader::new(&payload).u32()?);
                self.handle_delete(stream)?;
                Ok(Bytes::new())
            }
            other => Err(KeraError::Protocol(format!("broker cannot serve {other:?}"))),
        }
    }
}
