//! The coordinator's leader-election state machine.
//!
//! [`ElectionMachine`] is the *pure* core of the protocol: terms, votes,
//! role transitions and the log-freshness check, with no clocks, RPC or
//! locks. The coordinator service drives it — its ticker thread decides
//! *when* to start an election (randomized timeouts drawn from the
//! seeded [`kera_common::rng::SplitMix64`]) and carries the vote
//! messages over kera-rpc; the machine decides *what* the replica may
//! do. Keeping it pure makes the protocol unit-testable with fully
//! deterministic message interleavings (see the tests below) and keeps
//! kera-lint's no-guards-across-RPC rule trivially satisfiable.
//!
//! The protocol is the Raft election subset (DESIGN.md §10): a replica
//! votes at most once per term, only for candidates whose log is at
//! least as up-to-date as its own, and a candidate needs a strict
//! majority of the replica set. Together these give the invariant the
//! chaos suite asserts: **at most one leader per term**.

use std::collections::HashSet;

use kera_common::ids::NodeId;
use kera_wire::meta::{VoteRequest, VoteResponse};

/// A replica's role in the current term.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    Follower,
    Candidate,
    Leader,
}

/// Pure election state for one coordinator replica.
#[derive(Debug)]
pub struct ElectionMachine {
    me: NodeId,
    /// The other replicas (never contains `me`).
    peers: Vec<NodeId>,
    term: u64,
    voted_for: Option<NodeId>,
    role: Role,
    /// Last known leader (the `NotLeader` redirect hint).
    leader: Option<NodeId>,
    /// Votes gathered while a candidate in `term` (includes `me`).
    votes: HashSet<NodeId>,
    /// Every term this replica won, for split-brain auditing: across a
    /// cluster, no term may appear in two replicas' lists.
    won_terms: Vec<u64>,
}

impl ElectionMachine {
    /// `replicas` is the full replica set (including `me`), identically
    /// ordered on every replica.
    pub fn new(me: NodeId, replicas: &[NodeId]) -> Self {
        Self {
            me,
            peers: replicas.iter().copied().filter(|&r| r != me).collect(),
            term: 0,
            voted_for: None,
            role: Role::Follower,
            leader: None,
            votes: HashSet::new(),
            won_terms: Vec::new(),
        }
    }

    pub fn me(&self) -> NodeId {
        self.me
    }

    pub fn peers(&self) -> &[NodeId] {
        &self.peers
    }

    pub fn term(&self) -> u64 {
        self.term
    }

    pub fn role(&self) -> Role {
        self.role
    }

    pub fn is_leader(&self) -> bool {
        self.role == Role::Leader
    }

    /// Redirect hint for `NotLeader` errors: the leader if known and not
    /// ourselves (we would not be erring if it were us).
    pub fn leader_hint(&self) -> Option<NodeId> {
        self.leader.filter(|&l| l != self.me)
    }

    pub fn won_terms(&self) -> Vec<u64> {
        self.won_terms.clone()
    }

    /// Votes needed to win: a strict majority of the replica set.
    pub fn quorum(&self) -> usize {
        self.peers.len().div_ceil(2) + 1
    }

    /// Starts (or restarts) a candidacy: bumps the term, votes for
    /// ourselves and returns the request to broadcast. A single-replica
    /// cluster wins immediately.
    pub fn start_election(&mut self, last_log_index: u64, last_log_term: u64) -> VoteRequest {
        self.term += 1;
        self.role = Role::Candidate;
        self.voted_for = Some(self.me);
        self.leader = None;
        self.votes.clear();
        self.votes.insert(self.me);
        if self.votes.len() >= self.quorum() {
            self.become_leader();
        }
        VoteRequest { term: self.term, candidate: self.me, last_log_index, last_log_term }
    }

    /// Answers a vote request given our own log tail. Grants at most one
    /// vote per term, and only to candidates whose log is at least as
    /// up-to-date as ours (term-then-index comparison).
    pub fn on_vote_request(
        &mut self,
        req: &VoteRequest,
        my_last_index: u64,
        my_last_term: u64,
    ) -> VoteResponse {
        if req.term > self.term {
            self.step_down_to(req.term);
        }
        let log_ok = (req.last_log_term, req.last_log_index) >= (my_last_term, my_last_index);
        let granted = req.term == self.term
            && log_ok
            && self.voted_for.is_none_or(|v| v == req.candidate);
        if granted {
            self.voted_for = Some(req.candidate);
            self.role = Role::Follower;
        }
        VoteResponse { term: self.term, granted }
    }

    /// Records a peer's vote. Returns `true` exactly when this response
    /// completes the quorum and we just became leader.
    pub fn on_vote_response(&mut self, from: NodeId, resp: &VoteResponse) -> bool {
        if resp.term > self.term {
            self.step_down_to(resp.term);
            return false;
        }
        if self.role != Role::Candidate || resp.term < self.term || !resp.granted {
            return false;
        }
        self.votes.insert(from);
        if self.votes.len() >= self.quorum() {
            self.become_leader();
            return true;
        }
        false
    }

    /// A leader of `term` contacted us (MetaAppend). Returns `false` —
    /// reject — when the sender's term is stale; otherwise we adopt it
    /// as leader (abandoning any candidacy of the same term).
    pub fn on_leader_contact(&mut self, term: u64, leader: NodeId) -> bool {
        if term < self.term {
            return false;
        }
        if term > self.term {
            self.step_down_to(term);
        }
        self.role = Role::Follower;
        self.leader = Some(leader);
        true
    }

    /// Observes a term carried on any response. Returns `true` when this
    /// deposed us as leader (the caller records a failover).
    pub fn observe_term(&mut self, term: u64) -> bool {
        if term <= self.term {
            return false;
        }
        let was_leader = self.role == Role::Leader;
        self.step_down_to(term);
        was_leader
    }

    /// Voluntary stepdown (leader lost contact with its quorum). Keeps
    /// the term: a failed leader must not inflate terms on its own.
    pub fn abdicate(&mut self) {
        if self.role == Role::Leader {
            self.role = Role::Follower;
            self.leader = None;
        }
    }

    fn become_leader(&mut self) {
        self.role = Role::Leader;
        self.leader = Some(self.me);
        self.won_terms.push(self.term);
    }

    fn step_down_to(&mut self, term: u64) {
        self.term = term;
        self.voted_for = None;
        self.role = Role::Follower;
        self.leader = None;
        self.votes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kera_common::rng::SplitMix64;

    const A: NodeId = NodeId(0);
    const B: NodeId = NodeId(3001);
    const C: NodeId = NodeId(3002);

    fn trio() -> [ElectionMachine; 3] {
        let replicas = [A, B, C];
        [
            ElectionMachine::new(A, &replicas),
            ElectionMachine::new(B, &replicas),
            ElectionMachine::new(C, &replicas),
        ]
    }

    #[test]
    fn single_replica_wins_instantly() {
        let mut m = ElectionMachine::new(A, &[A]);
        assert_eq!(m.quorum(), 1);
        m.start_election(0, 0);
        assert!(m.is_leader());
        assert_eq!(m.term(), 1);
        assert_eq!(m.won_terms(), vec![1]);
    }

    #[test]
    fn majority_elects_and_term_bumps() {
        let [mut a, mut b, mut c] = trio();
        let req = a.start_election(5, 2);
        assert_eq!(req.term, 1);
        assert_eq!(a.role(), Role::Candidate);

        let vb = b.on_vote_request(&req, 5, 2);
        assert!(vb.granted);
        assert!(a.on_vote_response(B, &vb), "second vote completes the quorum");
        assert!(a.is_leader());

        // C's vote arrives late: granted but changes nothing.
        let vc = c.on_vote_request(&req, 3, 1);
        assert!(vc.granted);
        assert!(!a.on_vote_response(C, &vc));

        // Followers adopt the leader on first contact.
        assert!(b.on_leader_contact(1, A));
        assert_eq!(b.leader_hint(), Some(A));

        // A second election bumps the term past the first.
        let req2 = b.start_election(5, 2);
        assert_eq!(req2.term, 2);
    }

    #[test]
    fn one_vote_per_term_blocks_double_grant() {
        let [_, mut b, _] = trio();
        let ra = VoteRequest { term: 3, candidate: A, last_log_index: 4, last_log_term: 2 };
        let rc = VoteRequest { term: 3, candidate: C, last_log_index: 4, last_log_term: 2 };
        assert!(b.on_vote_request(&ra, 4, 2).granted);
        assert!(!b.on_vote_request(&rc, 4, 2).granted, "already voted for A in term 3");
        // Re-request from the same candidate (retransmit) is still granted.
        assert!(b.on_vote_request(&ra, 4, 2).granted);
    }

    #[test]
    fn stale_log_candidates_are_rejected() {
        let [_, mut b, _] = trio();
        // Shorter log, same term: reject.
        let r1 = VoteRequest { term: 1, candidate: A, last_log_index: 3, last_log_term: 1 };
        assert!(!b.on_vote_request(&r1, 5, 1).granted);
        // Longer log but older last term: reject (term dominates).
        let r2 = VoteRequest { term: 2, candidate: A, last_log_index: 9, last_log_term: 1 };
        assert!(!b.on_vote_request(&r2, 5, 2).granted);
        // Rejection still adopts the higher term.
        assert_eq!(b.term(), 2);
    }

    #[test]
    fn stale_leader_and_stale_votes_are_ignored() {
        let [mut a, mut b, _] = trio();
        let r4 = VoteRequest { term: 4, candidate: C, last_log_index: 0, last_log_term: 0 };
        b.on_vote_request(&r4, 0, 0);
        assert!(!b.on_leader_contact(3, A), "leader with stale term rejected");

        // A campaigns, but a stray grant from an old term must not count.
        let req = a.start_election(0, 0);
        let stale = VoteResponse { term: req.term - 1, granted: true };
        assert!(!a.on_vote_response(B, &stale));
        assert_eq!(a.role(), Role::Candidate);

        // A higher-term response deposes the candidacy entirely.
        assert!(!a.on_vote_response(B, &VoteResponse { term: 9, granted: false }));
        assert_eq!(a.role(), Role::Follower);
        assert_eq!(a.term(), 9);
    }

    #[test]
    fn split_vote_resolves_next_term() {
        let [mut a, mut b, mut c] = trio();
        // A and B time out simultaneously in term 1; C votes for A first.
        let ra = a.start_election(0, 0);
        let rb = b.start_election(0, 0);
        assert!(c.on_vote_request(&ra, 0, 0).granted);
        assert!(!c.on_vote_request(&rb, 0, 0).granted);
        // A and B each voted for themselves, so neither grants the other.
        assert!(!a.on_vote_request(&rb, 0, 0).granted);
        assert!(!b.on_vote_request(&ra, 0, 0).granted);
        // A reached quorum via C; B stays candidate until A's heartbeat.
        assert!(a.on_vote_response(C, &c.on_vote_request(&ra, 0, 0)));
        assert!(a.is_leader());
        assert!(b.on_leader_contact(a.term(), A));
        assert_eq!(b.role(), Role::Follower);
    }

    #[test]
    fn deposed_leader_steps_down_and_abdication_keeps_term() {
        let mut a = ElectionMachine::new(A, &[A]);
        a.start_election(0, 0);
        assert!(a.is_leader());
        assert!(a.observe_term(7), "higher term deposes the leader");
        assert!(!a.is_leader());
        assert_eq!(a.term(), 7);

        let mut b = ElectionMachine::new(A, &[A]);
        b.start_election(0, 0);
        b.abdicate();
        assert!(!b.is_leader());
        assert_eq!(b.term(), 1, "abdication must not bump the term");
    }

    /// Satellite: a randomized-but-seeded message shuffle. Three replicas
    /// run elections with every delivery order drawn from SplitMix64;
    /// whatever the interleaving, no term is ever won twice.
    #[test]
    fn fuzzed_interleavings_never_double_elect() {
        for seed in 0..32u64 {
            let mut rng = SplitMix64::new(0xE1EC_7104 ^ seed);
            let mut nodes = trio();
            // Pending (to, from, request) vote traffic.
            let mut inflight: Vec<(usize, usize, VoteRequest)> = Vec::new();
            let mut grants: Vec<(usize, usize, VoteResponse)> = Vec::new();
            for _ in 0..200 {
                match rng.next_below(3) {
                    0 => {
                        // A random non-leader times out and campaigns.
                        let i = rng.next_below(3) as usize;
                        if nodes[i].role() != Role::Leader {
                            let req = nodes[i].start_election(0, nodes[i].term());
                            for j in 0..3 {
                                if j != i {
                                    inflight.push((j, i, req));
                                }
                            }
                        }
                    }
                    1 if !inflight.is_empty() => {
                        let k = rng.next_below(inflight.len() as u64) as usize;
                        let (to, from, req) = inflight.swap_remove(k);
                        let resp = nodes[to].on_vote_request(&req, 0, req.last_log_term);
                        grants.push((from, to, resp));
                    }
                    _ if !grants.is_empty() => {
                        let k = rng.next_below(grants.len() as u64) as usize;
                        let (to, from, resp) = grants.swap_remove(k);
                        let voter = nodes[from].me();
                        nodes[to].on_vote_response(voter, &resp);
                    }
                    _ => {}
                }
            }
            let mut seen = HashSet::new();
            for n in &nodes {
                for t in n.won_terms() {
                    assert!(seen.insert(t), "seed {seed}: term {t} won twice — split brain");
                }
            }
        }
    }
}
