//! The coordinator: cluster membership, stream creation and placement,
//! metadata service, crash-time reassignment (paper Fig. 1: "the
//! coordinator manages storage nodes on which live broker and backup
//! processes").

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use bytes::Bytes;
use kera_common::ids::{NodeId, StreamId};
use kera_common::{KeraError, Result};
use kera_rpc::{RequestContext, RpcClient, Service};
use kera_wire::frames::OpCode;
use kera_wire::messages::{
    CrashReassignmentResponse, CreateStreamRequest, GetMetadataRequest, HostAssignment,
    HostStreamRequest, Reassignment, ReplicaRole, ReportCrashRequest, StreamMetadata,
    StreamletPlacement,
};
use kera_wire::codec::{Reader, Writer};
use parking_lot::Mutex;

const HOST_TIMEOUT: Duration = Duration::from_secs(5);

struct CoordinatorState {
    brokers: Vec<NodeId>,
    dead: HashSet<NodeId>,
    streams: HashMap<StreamId, StreamMetadata>,
}

/// The coordinator service.
pub struct CoordinatorService {
    node: NodeId,
    state: Mutex<CoordinatorState>,
    client: OnceLock<RpcClient>,
}

impl CoordinatorService {
    pub fn new(node: NodeId, brokers: Vec<NodeId>) -> Arc<Self> {
        Arc::new(Self {
            node,
            state: Mutex::named("coordinator.state", CoordinatorState {
                brokers,
                dead: HashSet::new(),
                streams: HashMap::new(),
            }),
            client: OnceLock::new(),
        })
    }

    pub fn attach_client(&self, client: RpcClient) {
        let _ = self.client.set(client);
    }

    fn client(&self) -> Result<&RpcClient> {
        self.client
            .get()
            .ok_or_else(|| KeraError::Protocol("coordinator not attached to its runtime".into()))
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Brokers currently believed alive, in registration order.
    fn alive_brokers(state: &CoordinatorState) -> Vec<NodeId> {
        state.brokers.iter().copied().filter(|b| !state.dead.contains(b)).collect()
    }

    fn handle_create(&self, req: CreateStreamRequest) -> Result<StreamMetadata> {
        req.config.validate()?;
        let metadata = {
            let mut st = self.state.lock();
            if st.streams.contains_key(&req.config.id) {
                return Err(KeraError::StreamExists(req.config.id));
            }
            let alive = Self::alive_brokers(&st);
            if alive.is_empty() {
                return Err(KeraError::NoCapacity("no alive brokers".into()));
            }
            // Streamlet i -> broker i mod B: equal distribution, the
            // paper's "streams equally distributed over four brokers".
            let placements: Vec<StreamletPlacement> = (0..req.config.streamlets)
                .map(|i| StreamletPlacement {
                    streamlet: kera_common::ids::StreamletId(i),
                    broker: alive[i as usize % alive.len()],
                })
                .collect();
            let metadata = StreamMetadata { config: req.config.clone(), placements };
            st.streams.insert(req.config.id, metadata.clone());
            metadata
        };
        self.push_hosting(&metadata, None)?;
        Ok(metadata)
    }

    /// Sends HostStream to every broker owning streamlets of `metadata`.
    /// With `only` set, restricts to that broker (recovery path).
    fn push_hosting(&self, metadata: &StreamMetadata, only: Option<NodeId>) -> Result<()> {
        let mut per_broker: HashMap<NodeId, Vec<HostAssignment>> = HashMap::new();
        for p in &metadata.placements {
            if only.map(|b| b != p.broker).unwrap_or(false) {
                continue;
            }
            per_broker.entry(p.broker).or_default().push(HostAssignment {
                streamlet: p.streamlet,
                role: ReplicaRole::Leader,
                leader: p.broker,
            });
        }
        let client = self.client()?;
        let calls: Vec<_> = per_broker
            .into_iter()
            .map(|(broker, assignments)| {
                let req =
                    HostStreamRequest { metadata: metadata.clone(), assignments };
                client.call_async(broker, OpCode::HostStream, req.encode())
            })
            .collect();
        for c in calls {
            c.wait(HOST_TIMEOUT)?;
        }
        Ok(())
    }

    /// Deletes a stream: drops the metadata and tells every broker that
    /// hosted its streamlets to unhost them (freeing dedicated virtual
    /// logs and their backup segments).
    fn handle_delete(&self, stream: StreamId) -> Result<()> {
        let metadata = self
            .state
            .lock()
            .streams
            .remove(&stream)
            .ok_or(KeraError::UnknownStream(stream))?;
        let client = self.client()?;
        let mut payload_w = Writer::new();
        payload_w.u32(stream.raw());
        let payload = payload_w.finish();
        let calls: Vec<_> = metadata
            .brokers()
            .into_iter()
            .map(|b| client.call_async(b, OpCode::DeleteStream, payload.clone()))
            .collect();
        for c in calls {
            c.wait(HOST_TIMEOUT)?;
        }
        Ok(())
    }

    fn handle_metadata(&self, req: GetMetadataRequest) -> Result<StreamMetadata> {
        self.state
            .lock()
            .streams
            .get(&req.stream)
            .cloned()
            .ok_or(KeraError::UnknownStream(req.stream))
    }

    /// Marks `dead` crashed and reassigns its streamlets to survivors.
    /// Returns the reassignments; the caller (recovery manager) replays
    /// the data from backups afterwards.
    fn handle_crash(&self, req: ReportCrashRequest) -> Result<CrashReassignmentResponse> {
        let (reassigned, metas) = {
            let mut st = self.state.lock();
            st.dead.insert(req.node);
            let alive = Self::alive_brokers(&st);
            if alive.is_empty() {
                return Err(KeraError::NoCapacity("no alive brokers left".into()));
            }
            let mut reassigned = Vec::new();
            let mut metas: Vec<StreamMetadata> = Vec::new();
            let mut rr = 0usize;
            for meta in st.streams.values_mut() {
                let mut touched = false;
                for p in meta.placements.iter_mut() {
                    if p.broker == req.node {
                        p.broker = alive[rr % alive.len()];
                        rr += 1;
                        touched = true;
                        reassigned.push(Reassignment {
                            stream: meta.config.id,
                            streamlet: p.streamlet,
                            new_broker: p.broker,
                        });
                    }
                }
                if touched {
                    metas.push(meta.clone());
                }
            }
            (reassigned, metas)
        };
        // Tell the new owners to host their inherited streamlets.
        for meta in &metas {
            for broker in meta.brokers() {
                self.push_hosting(meta, Some(broker))?;
            }
        }
        Ok(CrashReassignmentResponse { reassignments: reassigned })
    }
}

impl Service for CoordinatorService {
    fn handle(&self, ctx: &RequestContext, payload: Bytes) -> Result<Bytes> {
        match ctx.opcode {
            OpCode::Ping => Ok(Bytes::new()),
            OpCode::CreateStream => {
                let req = CreateStreamRequest::decode(&payload)?;
                Ok(self.handle_create(req)?.encode())
            }
            OpCode::GetMetadata => {
                let req = GetMetadataRequest::decode(&payload)?;
                Ok(self.handle_metadata(req)?.encode())
            }
            OpCode::ReportCrash => {
                let req = ReportCrashRequest::decode(&payload)?;
                Ok(self.handle_crash(req)?.encode())
            }
            OpCode::DeleteStream => {
                let stream = StreamId(Reader::new(&payload).u32()?);
                self.handle_delete(stream)?;
                Ok(Bytes::new())
            }
            other => Err(KeraError::Protocol(format!("coordinator cannot serve {other:?}"))),
        }
    }
}
