//! The coordinator: cluster membership, stream creation and placement,
//! metadata service, crash-time reassignment (paper Fig. 1: "the
//! coordinator manages storage nodes on which live broker and backup
//! processes") — replicated so it is no longer a single point of
//! failure (DESIGN.md §10).
//!
//! Every mutating operation is a [`MetaOp`] the leader appends to the
//! replicated metadata log ([`crate::metalog`]) and acknowledges only
//! once a quorum of replicas holds it; replicas fold the committed
//! prefix into their [`MetaState`] deterministically. Leadership comes
//! from the election machine ([`crate::election`]): a ticker thread per
//! replica runs heartbeats while leader and randomized election
//! timeouts while follower. Client-facing ops on a non-leader fail with
//! [`KeraError::NotLeader`] carrying a redirect hint;
//! `RpcClient::call_leader` follows it.
//!
//! Lock discipline: the single `coord.replica` mutex guards all
//! replication state and is **never** held across an RPC — every
//! handler and every ticker action computes its outbound batch under
//! the lock, drops it, performs the calls, then re-locks to fold the
//! responses in.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use kera_common::config::CoordinatorConfig;
use kera_common::ids::{NodeId, StreamId, StreamletId};
use kera_common::rng::SplitMix64;
use kera_common::{KeraError, Result};
use kera_obs::trace::Stage;
use kera_obs::NodeObs;
use kera_rpc::{PendingCall, RequestContext, RpcClient, Service};
use kera_wire::codec::{Reader, Writer};
use kera_wire::frames::OpCode;
use kera_wire::messages::{
    CrashReassignmentResponse, CreateStreamRequest, GetMetadataRequest, HostAssignment,
    HostStreamRequest, Reassignment, ReplicaRole, ReportCrashRequest, StreamMetadata,
    StreamletPlacement,
};
use kera_wire::meta::{
    GetLeaderResponse, MetaAppendRequest, MetaAppendResponse, MetaOp, VoteRequest, VoteResponse,
};
use parking_lot::Mutex;

use crate::election::ElectionMachine;
use crate::metalog::{MetaLog, MetaState};

const HOST_TIMEOUT: Duration = Duration::from_secs(5);
/// Commit budget for one metadata op when the caller sent no deadline.
const COMMIT_TIMEOUT: Duration = Duration::from_secs(5);

/// All replication state of one coordinator replica, under one mutex.
struct Replica {
    election: ElectionMachine,
    log: MetaLog,
    /// Fold of the committed log prefix (up to `applied_index`).
    state: MetaState,
    commit_index: u64,
    applied_index: u64,
    /// Leader-only: highest log index each peer confirmed.
    match_index: HashMap<NodeId, u64>,
    /// Follower: last valid leader contact (heartbeat or granted vote).
    last_leader_contact: Instant,
    /// Leader: last instant a quorum acknowledged an append round.
    last_quorum_ack: Instant,
    /// Current randomized election timeout; redrawn per candidacy.
    election_timeout: Duration,
    rng: SplitMix64,
    leader_since: Option<Instant>,
}

/// The coordinator service: one replica of the replicated coordinator.
/// `CoordinatorService::new` builds the single-replica configuration,
/// which commits locally and never elects — the pre-replication
/// behaviour, still the cluster default.
pub struct CoordinatorService {
    node: NodeId,
    /// The full replica set (identical order on every replica).
    replicas: Vec<NodeId>,
    /// Brokers this cluster was configured with; (re-)registered into
    /// the metadata log whenever this replica wins leadership.
    brokers_cfg: Vec<NodeId>,
    cfg: CoordinatorConfig,
    replica: Mutex<Replica>,
    client: OnceLock<RpcClient>,
    shutdown: AtomicBool,
    /// Chaos hook: a frozen replica stops ticking and hangs every
    /// request, simulating a wedged (but not exited) process.
    frozen: AtomicBool,
    ticker: Mutex<Option<JoinHandle<()>>>,
}

fn draw_timeout(cfg: &CoordinatorConfig, rng: &mut SplitMix64) -> Duration {
    let min = cfg.election_timeout_min.as_millis() as u64;
    let max = cfg.election_timeout_max.as_millis() as u64;
    Duration::from_millis(min + rng.next_below(max - min + 1))
}

impl CoordinatorService {
    /// Single-replica coordinator (the pre-replication configuration).
    pub fn new(node: NodeId, brokers: Vec<NodeId>) -> Arc<Self> {
        Self::replicated(node, vec![node], brokers, CoordinatorConfig::default())
    }

    /// One replica of a replicated coordinator. `replicas` must list the
    /// full set (including `node`) in the same order on every replica.
    pub fn replicated(
        node: NodeId,
        replicas: Vec<NodeId>,
        brokers: Vec<NodeId>,
        cfg: CoordinatorConfig,
    ) -> Arc<Self> {
        // Distinct per-replica streams from the shared seed, so a
        // cluster-wide seed still desynchronizes election timeouts.
        let mut rng = SplitMix64::new(cfg.seed ^ (u64::from(node.raw()) << 20));
        let election_timeout = draw_timeout(&cfg, &mut rng);
        Arc::new(Self {
            node,
            brokers_cfg: brokers,
            replica: Mutex::named("coord.replica", Replica {
                election: ElectionMachine::new(node, &replicas),
                log: MetaLog::new(),
                state: MetaState::new(),
                commit_index: 0,
                applied_index: 0,
                match_index: HashMap::new(),
                last_leader_contact: Instant::now(),
                last_quorum_ack: Instant::now(),
                election_timeout,
                rng,
                leader_since: None,
            }),
            replicas,
            cfg,
            client: OnceLock::new(),
            shutdown: AtomicBool::new(false),
            frozen: AtomicBool::new(false),
            ticker: Mutex::named("coord.ticker", None),
        })
    }

    pub fn attach_client(&self, client: RpcClient) {
        let _ = self.client.set(client);
    }

    fn client(&self) -> Result<&RpcClient> {
        self.client
            .get()
            .ok_or_else(|| KeraError::Protocol("coordinator not attached to its runtime".into()))
    }

    fn obs(&self) -> Option<&Arc<NodeObs>> {
        self.client.get().map(|c| c.obs())
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    pub fn replicas(&self) -> &[NodeId] {
        &self.replicas
    }

    pub fn is_leader(&self) -> bool {
        self.replica.lock().election.is_leader()
    }

    pub fn current_term(&self) -> u64 {
        self.replica.lock().election.term()
    }

    /// Every term this replica ever won — the chaos suite aggregates
    /// these across replicas to assert no term was won twice.
    pub fn won_terms(&self) -> Vec<u64> {
        self.replica.lock().election.won_terms()
    }

    /// Committed stream count (test/diagnostic aid).
    pub fn committed_streams(&self) -> usize {
        self.replica.lock().state.streams.len()
    }

    // ---- lifecycle -----------------------------------------------------

    /// Starts this replica's protocol clock. A single-replica
    /// configuration elects itself instantly and needs no thread; a
    /// multi-replica one spawns the heartbeat/election ticker.
    pub fn start_ticker(self: &Arc<Self>) {
        if self.replicas.len() == 1 {
            {
                let now = Instant::now();
                let mut st = self.replica.lock();
                if !st.election.is_leader() {
                    let (li, lt) = (st.log.last_index(), st.log.last_term());
                    st.election.start_election(li, lt);
                    st.leader_since = Some(now);
                }
            }
            let _ = self.ensure_brokers_registered();
            return;
        }
        let svc = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("coord-tick-{}", self.node.raw()))
            .spawn(move || svc.tick_loop());
        if let Ok(h) = handle {
            *self.ticker.lock() = Some(h);
        }
    }

    /// Stops the ticker (idempotent). Also thaws a frozen replica so
    /// blocked handlers drain during shutdown.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let handle = self.ticker.lock().take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }

    /// Chaos hook: wedge the replica — the ticker stops acting and every
    /// request (including heartbeats and votes) hangs until [`Self::thaw`].
    pub fn freeze(&self) {
        self.frozen.store(true, Ordering::SeqCst);
    }

    pub fn thaw(&self) {
        self.frozen.store(false, Ordering::SeqCst);
    }

    fn wait_if_frozen(&self, ctx: &RequestContext) -> Result<()> {
        while self.frozen.load(Ordering::SeqCst) && !self.shutdown.load(Ordering::SeqCst) {
            if let Some(d) = ctx.deadline {
                if Instant::now() >= d {
                    return Err(KeraError::Timeout { op: "frozen coordinator" });
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(())
    }

    // ---- observability helpers ----------------------------------------

    fn bump(&self, name: &'static str) {
        if let Some(obs) = self.obs() {
            obs.registry().counter(name, &[]).inc();
        }
    }

    fn set_tenure_ms(&self, v: i64) {
        if let Some(obs) = self.obs() {
            obs.registry().gauge("coord_leader_tenure_ms", &[]).set(v);
        }
    }

    /// Progress heartbeat for the stall watchdog: committed/accepted
    /// metadata entries are this replica's unit of real work.
    fn bump_progress(&self) {
        if let Some(obs) = self.obs() {
            obs.bump_progress();
        }
    }

    /// Serves the Introspect RPC. Deliberately *not* gated on the frozen
    /// chaos hook: a wedged replica is exactly the node an operator most
    /// needs to scrape.
    fn handle_introspect(&self, payload: &[u8]) -> Result<Bytes> {
        let (is_leader, term, streams) = {
            let st = self.replica.lock();
            (st.election.is_leader(), st.election.term(), st.state.streams.len())
        };
        let fields = crate::introspect::HealthFields {
            role: kera_wire::messages::introspect_role::COORDINATOR,
            is_leader,
            term,
            // Committed streams stand in for the segment count on the
            // control plane.
            segments: streams as u32,
            ..Default::default()
        };
        match self.obs() {
            Some(obs) => crate::introspect::serve(obs, payload, fields),
            // Not attached to a runtime yet: answer with an inert handle
            // so the health header still goes out.
            None => crate::introspect::serve(&NodeObs::disabled(self.node.raw()), payload, fields),
        }
    }

    /// Records an instant election event as a root span (aux = term) so
    /// it lands in the flight recorder even with no ambient trace.
    fn election_event(&self, stage: Stage, term: u64) {
        if let Some(obs) = self.obs() {
            let mut span = obs.root_span(stage);
            span.set_aux(term);
        }
    }

    fn note_stepdown(&self, st: &mut Replica) {
        st.leader_since = None;
        self.set_tenure_ms(0);
        self.election_event(Stage::ElectionStepdown, st.election.term());
    }

    // ---- state machine plumbing ---------------------------------------

    /// The committed fold plus the uncommitted log suffix: what the
    /// leader validates new ops against, so two racing ops in the same
    /// term cannot both pass validation.
    fn preview(st: &Replica) -> MetaState {
        let mut view = st.state.clone();
        for rec in st.log.entries_after(st.applied_index) {
            view.apply(&rec.op);
        }
        view
    }

    fn apply_committed(st: &mut Replica) {
        while st.applied_index < st.commit_index {
            let next = st.applied_index + 1;
            let Some(rec) = st.log.get(next) else { break };
            let op = rec.op.clone();
            st.state.apply(&op);
            st.applied_index = next;
        }
    }

    fn maybe_compact(&self, st: &mut Replica) {
        if st.applied_index.saturating_sub(st.log.base_index())
            >= self.cfg.snapshot_threshold as u64
        {
            if let Some(term) = st.log.term_at(st.applied_index) {
                st.log.compact_to(st.applied_index, term);
            }
        }
    }

    fn require_leader(&self, st: &Replica) -> Result<()> {
        if st.election.is_leader() {
            Ok(())
        } else {
            Err(KeraError::NotLeader {
                hint: st.election.leader_hint(),
                term: st.election.term(),
            })
        }
    }

    fn op_deadline(&self, ctx: &RequestContext) -> Instant {
        Instant::now() + ctx.remaining().map_or(COMMIT_TIMEOUT, |r| r.min(COMMIT_TIMEOUT))
    }

    fn round_timeout(&self) -> Duration {
        (self.cfg.heartbeat_interval * 4).max(Duration::from_millis(50))
    }

    // ---- replication (leader side) ------------------------------------

    /// One append batch per peer, each carrying everything the peer is
    /// missing (suffix from its match index, or a snapshot plus the tail
    /// when the suffix was compacted away). Computed under the lock;
    /// sent after it drops.
    fn build_round(&self, st: &Replica) -> Vec<(NodeId, MetaAppendRequest)> {
        let term = st.election.term();
        st.election
            .peers()
            .iter()
            .map(|&peer| {
                let from = st
                    .match_index
                    .get(&peer)
                    .copied()
                    .unwrap_or(0)
                    .min(st.log.last_index());
                let (snapshot, prev_index) = if st.log.suffix_from(from).is_some() {
                    (None, from)
                } else {
                    // Peer is behind the compaction horizon: ship the
                    // committed fold and the entries after it.
                    let snap_term = st.log.term_at(st.applied_index).unwrap_or(0);
                    (Some(st.state.snapshot(st.applied_index, snap_term)), st.applied_index)
                };
                let entries = st.log.suffix_from(prev_index).unwrap_or_default();
                let prev_term = st.log.term_at(prev_index).unwrap_or(0);
                let req = MetaAppendRequest {
                    term,
                    leader: self.node,
                    prev_index,
                    prev_term,
                    commit_index: st.commit_index,
                    snapshot,
                    entries,
                };
                (peer, req)
            })
            .collect()
    }

    /// Sends one append round and folds the responses in: match indices
    /// move forward, the commit index advances over quorum-replicated
    /// current-term entries, and a higher observed term deposes us.
    fn run_append_round(&self, batches: Vec<(NodeId, MetaAppendRequest)>) -> Result<()> {
        let client = self.client()?;
        let mut calls: Vec<(NodeId, PendingCall)> = Vec::with_capacity(batches.len());
        for (peer, req) in batches {
            calls.push((peer, client.call_async(peer, OpCode::MetaAppend, req.encode()?)));
        }
        let round_deadline = Instant::now() + self.round_timeout();
        let mut responses = Vec::new();
        for (peer, call) in calls {
            let left = round_deadline
                .saturating_duration_since(Instant::now())
                .max(Duration::from_millis(1));
            if let Ok(bytes) = call.wait(left) {
                if let Ok(resp) = MetaAppendResponse::decode(&bytes) {
                    responses.push((peer, resp));
                }
            }
        }

        // Clock read hoisted above the lock (no-time-under-lock): an
        // ack timestamp a hair early only shortens the leader's lease.
        let acked_at = Instant::now();
        let mut st = self.replica.lock();
        let mut successes = 0usize;
        for (peer, resp) in responses {
            if st.election.observe_term(resp.term) {
                self.note_stepdown(&mut st);
                return Err(KeraError::NotLeader {
                    hint: st.election.leader_hint(),
                    term: st.election.term(),
                });
            }
            if !st.election.is_leader() {
                break;
            }
            if resp.success {
                successes += 1;
                let mi = st.match_index.entry(peer).or_insert(0);
                *mi = (*mi).max(resp.match_index);
            } else {
                // The follower told us where its log actually ends; the
                // next round resends from there (or ships a snapshot).
                let cap = st.log.last_index();
                st.match_index.insert(peer, resp.match_index.min(cap));
            }
        }
        if st.election.is_leader() {
            if successes + 1 >= st.election.quorum() {
                st.last_quorum_ack = acked_at;
            }
            Self::advance_commit(&mut st);
            self.maybe_compact(&mut st);
        }
        Ok(())
    }

    fn advance_commit(st: &mut Replica) {
        let mut indices: Vec<u64> = vec![st.log.last_index()];
        indices.extend(st.match_index.values().copied());
        indices.sort_unstable_by(|a, b| b.cmp(a));
        let candidate = indices[st.election.quorum() - 1];
        // Raft commit rule: only entries of the current term commit by
        // counting; prior-term entries commit transitively under them.
        if candidate > st.commit_index && st.log.term_at(candidate) == Some(st.election.term()) {
            st.commit_index = candidate;
            Self::apply_committed(st);
        }
    }

    /// Drives append rounds until the record at `target` is committed,
    /// the deadline passes, or we are deposed.
    fn replicate_to_commit(&self, target: u64, deadline: Instant) -> Result<()> {
        let r = self.replicate_to_commit_inner(target, deadline);
        if r.is_ok() {
            // A committed metadata entry is control-plane progress (the
            // stall watchdog watches this heartbeat).
            self.bump_progress();
        }
        r
    }

    fn replicate_to_commit_inner(&self, target: u64, deadline: Instant) -> Result<()> {
        loop {
            let batches = {
                let mut st = self.replica.lock();
                self.require_leader(&st)?;
                if self.replicas.len() == 1 {
                    st.commit_index = st.log.last_index();
                    Self::apply_committed(&mut st);
                    self.maybe_compact(&mut st);
                }
                if st.commit_index >= target {
                    return Ok(());
                }
                self.build_round(&st)
            };
            self.run_append_round(batches)?;
            if self.replica.lock().commit_index >= target {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(KeraError::Timeout { op: "metadata log commit" });
            }
            // A dead peer fails sends instantly; don't spin hot on it.
            std::thread::sleep(self.cfg.heartbeat_interval.min(Duration::from_millis(25)));
        }
    }

    // ---- ticker: heartbeats, timeouts, campaigns ----------------------

    fn tick_loop(self: &Arc<Self>) {
        enum Action {
            Idle,
            Heartbeat,
            Campaign(VoteRequest),
        }
        let granularity = (self.cfg.heartbeat_interval / 2).max(Duration::from_millis(1));
        let mut last_heartbeat = Instant::now() - self.cfg.heartbeat_interval;
        loop {
            std::thread::sleep(granularity);
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if self.frozen.load(Ordering::SeqCst) {
                continue;
            }
            let now = Instant::now();
            let action = {
                let mut st = self.replica.lock();
                if st.election.is_leader() {
                    if let Some(since) = st.leader_since {
                        self.set_tenure_ms(now.duration_since(since).as_millis() as i64);
                    }
                    if now.duration_since(st.last_quorum_ack) > self.cfg.election_timeout_max {
                        // Lost our quorum: stop accepting writes rather
                        // than serving a possibly-partitioned minority.
                        st.election.abdicate();
                        self.note_stepdown(&mut st);
                        st.last_leader_contact = now;
                        Action::Idle
                    } else if now.duration_since(last_heartbeat) >= self.cfg.heartbeat_interval {
                        Action::Heartbeat
                    } else {
                        Action::Idle
                    }
                } else if now.duration_since(st.last_leader_contact) >= st.election_timeout {
                    self.election_event(Stage::ElectionTimeout, st.election.term());
                    let (li, lt) = (st.log.last_index(), st.log.last_term());
                    let req = st.election.start_election(li, lt);
                    st.election_timeout = draw_timeout(&self.cfg, &mut st.rng);
                    st.last_leader_contact = now;
                    Action::Campaign(req)
                } else {
                    Action::Idle
                }
            };
            match action {
                Action::Heartbeat => {
                    last_heartbeat = Instant::now();
                    let _ = self.heartbeat_round();
                }
                Action::Campaign(req) => {
                    self.bump("coord_elections_total");
                    self.run_campaign(req);
                }
                Action::Idle => {}
            }
        }
    }

    /// One heartbeat: an append round that doubles as catch-up and
    /// commit-index driver for lagging peers.
    fn heartbeat_round(&self) -> Result<()> {
        let batches = {
            let st = self.replica.lock();
            if !st.election.is_leader() {
                return Ok(());
            }
            self.build_round(&st)
        };
        self.run_append_round(batches)
    }

    /// Broadcasts one vote request and folds the responses. On winning,
    /// asserts authority immediately and re-drives cluster side effects.
    fn run_campaign(self: &Arc<Self>, req: VoteRequest) {
        let Ok(client) = self.client() else { return };
        let mut span = client.obs().root_span(Stage::ElectionVote);
        span.set_aux(req.term);
        let peers = { self.replica.lock().election.peers().to_vec() };
        let calls: Vec<(NodeId, PendingCall)> = peers
            .into_iter()
            .map(|peer| (peer, client.call_async(peer, OpCode::RequestVote, req.encode())))
            .collect();
        let vote_deadline =
            Instant::now() + (self.cfg.election_timeout_min / 2).max(Duration::from_millis(20));
        let mut won = false;
        for (peer, call) in calls {
            let left = vote_deadline
                .saturating_duration_since(Instant::now())
                .max(Duration::from_millis(1));
            let Ok(bytes) = call.wait(left) else { continue };
            let Ok(resp) = VoteResponse::decode(&bytes) else { continue };
            let now = Instant::now();
            let mut st = self.replica.lock();
            if st.election.on_vote_response(peer, &resp) {
                st.leader_since = Some(now);
                st.last_quorum_ack = now;
                let floor = st.log.last_index().min(st.commit_index);
                for p in st.election.peers().to_vec() {
                    // Optimistically assume peers hold our committed
                    // prefix; a rejection lowers this to the real tail.
                    st.match_index.insert(p, floor);
                }
                let term = st.election.term();
                drop(st);
                self.election_event(Stage::ElectionWon, term);
                if term > 1 {
                    self.bump("coord_failovers_total");
                }
                won = true;
                break;
            }
        }
        if won {
            // Assert authority before followers' timers fire again.
            let _ = self.heartbeat_round();
            // Re-drive side effects a deposed leader may have left
            // half-done; both are idempotent.
            let _ = self.ensure_brokers_registered();
            let svc = Arc::clone(self);
            let _ = std::thread::Builder::new()
                .name(format!("coord-repush-{}", self.node.raw()))
                .spawn(move || svc.repush_all_hosting());
        }
    }

    /// Appends (idempotent) RegisterBroker records for the configured
    /// broker set. Every new leader appends at least one, which also
    /// serves as the current-term record that unblocks committing any
    /// prior-term tail (see [`Self::advance_commit`]).
    fn ensure_brokers_registered(&self) -> Result<()> {
        let target = {
            let mut st = self.replica.lock();
            self.require_leader(&st)?;
            let view = Self::preview(&st);
            let term = st.election.term();
            let mut target = 0u64;
            for &b in &self.brokers_cfg {
                if !view.brokers.contains(&b) {
                    target = st.log.append(term, MetaOp::RegisterBroker { node: b }).index;
                }
            }
            if target == 0 {
                match self.brokers_cfg.first() {
                    Some(&b) => {
                        target = st.log.append(term, MetaOp::RegisterBroker { node: b }).index;
                    }
                    None => return Ok(()),
                }
            }
            target
        };
        self.replicate_to_commit(target, Instant::now() + COMMIT_TIMEOUT)
    }

    /// Re-sends HostStream for every committed stream (idempotent on the
    /// brokers): a failover may have interrupted the previous leader
    /// between commit and push.
    fn repush_all_hosting(&self) {
        let metas: Vec<StreamMetadata> = {
            let st = self.replica.lock();
            if !st.election.is_leader() {
                return;
            }
            st.state.streams.values().cloned().collect()
        };
        for meta in &metas {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let _ = self.push_hosting(meta, None);
        }
    }

    // ---- consensus RPC handlers ---------------------------------------

    fn handle_vote(&self, payload: &Bytes) -> Result<Bytes> {
        let req = VoteRequest::decode(payload)?;
        let resp = {
            let now = Instant::now();
            let mut st = self.replica.lock();
            let was_leader = st.election.is_leader();
            let (li, lt) = (st.log.last_index(), st.log.last_term());
            let resp = st.election.on_vote_request(&req, li, lt);
            if resp.granted {
                // We promised our vote; grant the candidate a full
                // election window before campaigning ourselves.
                st.last_leader_contact = now;
            }
            if was_leader && !st.election.is_leader() {
                self.note_stepdown(&mut st);
            }
            resp
        };
        self.election_event(Stage::ElectionVote, resp.term);
        Ok(resp.encode())
    }

    fn handle_append(&self, payload: &Bytes) -> Result<Bytes> {
        let req = MetaAppendRequest::decode(payload)?;
        let now = Instant::now();
        let mut st = self.replica.lock();
        let was_leader = st.election.is_leader();
        if !st.election.on_leader_contact(req.term, req.leader) {
            let resp =
                MetaAppendResponse { term: st.election.term(), success: false, match_index: 0 };
            return Ok(resp.encode());
        }
        if was_leader && !st.election.is_leader() {
            self.note_stepdown(&mut st);
        }
        st.last_leader_contact = now;

        if let Some(snap) = &req.snapshot {
            if snap.last_index > st.applied_index {
                st.state = MetaState::restore(snap);
                st.log.install_snapshot(snap.last_index, snap.last_term);
                st.applied_index = snap.last_index;
                st.commit_index = st.commit_index.max(snap.last_index);
            }
        }

        let consistent = match st.log.term_at(req.prev_index) {
            Some(t) if t == req.prev_term => true,
            Some(_) => {
                // Our record at prev diverges from the leader's: drop it
                // and everything after (all uncommitted by definition).
                st.log.truncate_from(req.prev_index);
                false
            }
            None => false,
        };
        if !consistent {
            let resp = MetaAppendResponse {
                term: st.election.term(),
                success: false,
                match_index: st.log.last_index().min(req.prev_index.saturating_sub(1)),
            };
            return Ok(resp.encode());
        }
        for rec in req.entries {
            match st.log.term_at(rec.index) {
                Some(t) if t == rec.term => continue,
                Some(_) => st.log.truncate_from(rec.index),
                None => {}
            }
            st.log.push(rec);
        }
        st.commit_index = st.commit_index.max(req.commit_index.min(st.log.last_index()));
        Self::apply_committed(&mut st);
        self.maybe_compact(&mut st);
        let resp = MetaAppendResponse {
            term: st.election.term(),
            success: true,
            match_index: st.log.last_index(),
        };
        drop(st);
        self.bump_progress();
        Ok(resp.encode())
    }

    fn handle_get_leader(&self) -> Result<Bytes> {
        let st = self.replica.lock();
        let resp = GetLeaderResponse {
            leader: if st.election.is_leader() {
                Some(self.node)
            } else {
                st.election.leader_hint()
            },
            term: st.election.term(),
            is_leader: st.election.is_leader(),
        };
        Ok(resp.encode())
    }

    // ---- client-facing ops (leader only) ------------------------------

    fn handle_create(&self, ctx: &RequestContext, req: CreateStreamRequest) -> Result<StreamMetadata> {
        req.config.validate()?;
        let (index, metadata) = {
            let mut st = self.replica.lock();
            self.require_leader(&st)?;
            let view = Self::preview(&st);
            if view.streams.contains_key(&req.config.id) {
                return Err(KeraError::StreamExists(req.config.id));
            }
            let alive = view.alive_brokers();
            if alive.is_empty() {
                return Err(KeraError::NoCapacity("no alive brokers".into()));
            }
            // Streamlet i -> broker i mod B: equal distribution, the
            // paper's "streams equally distributed over four brokers".
            let placements: Vec<StreamletPlacement> = (0..req.config.streamlets)
                .map(|i| StreamletPlacement {
                    streamlet: StreamletId(i),
                    broker: alive[i as usize % alive.len()],
                })
                .collect();
            let metadata = StreamMetadata { config: req.config.clone(), placements };
            let term = st.election.term();
            let rec = st.log.append(term, MetaOp::CreateStream { metadata: metadata.clone() });
            (rec.index, metadata)
        };
        self.replicate_to_commit(index, self.op_deadline(ctx))?;
        self.push_hosting(&metadata, None)?;
        Ok(metadata)
    }

    /// Sends HostStream to every broker owning streamlets of `metadata`.
    /// With `only` set, restricts to that broker (recovery path).
    fn push_hosting(&self, metadata: &StreamMetadata, only: Option<NodeId>) -> Result<()> {
        let mut per_broker: HashMap<NodeId, Vec<HostAssignment>> = HashMap::new();
        for p in &metadata.placements {
            if only.map(|b| b != p.broker).unwrap_or(false) {
                continue;
            }
            per_broker.entry(p.broker).or_default().push(HostAssignment {
                streamlet: p.streamlet,
                role: ReplicaRole::Leader,
                leader: p.broker,
            });
        }
        let client = self.client()?;
        let calls: Vec<_> = per_broker
            .into_iter()
            .map(|(broker, assignments)| {
                let req = HostStreamRequest { metadata: metadata.clone(), assignments };
                client.call_async(broker, OpCode::HostStream, req.encode())
            })
            .collect();
        for c in calls {
            c.wait(HOST_TIMEOUT)?;
        }
        Ok(())
    }

    /// Deletes a stream: commits the removal, then tells every broker
    /// that hosted its streamlets to unhost them (freeing dedicated
    /// virtual logs and their backup segments).
    fn handle_delete(&self, ctx: &RequestContext, stream: StreamId) -> Result<()> {
        let (index, metadata) = {
            let mut st = self.replica.lock();
            self.require_leader(&st)?;
            let view = Self::preview(&st);
            let metadata =
                view.streams.get(&stream).cloned().ok_or(KeraError::UnknownStream(stream))?;
            let term = st.election.term();
            let rec = st.log.append(term, MetaOp::DeleteStream { stream });
            (rec.index, metadata)
        };
        self.replicate_to_commit(index, self.op_deadline(ctx))?;
        let client = self.client()?;
        let mut payload_w = Writer::new();
        payload_w.u32(stream.raw());
        let payload = payload_w.finish();
        let calls: Vec<_> = metadata
            .brokers()
            .into_iter()
            // lint: allow(no-hot-copy) — refcount clone of a tiny control frame
            .map(|b| client.call_async(b, OpCode::DeleteStream, payload.clone()))
            .collect();
        for c in calls {
            c.wait(HOST_TIMEOUT)?;
        }
        Ok(())
    }

    fn handle_metadata(&self, req: GetMetadataRequest) -> Result<StreamMetadata> {
        let st = self.replica.lock();
        self.require_leader(&st)?;
        st.state.streams.get(&req.stream).cloned().ok_or(KeraError::UnknownStream(req.stream))
    }

    /// Marks `dead` crashed and reassigns its streamlets to survivors.
    /// The reassignment list is computed once by the leader and carried
    /// in the committed record, so every replica applies the identical
    /// decision. Returns the reassignments; the caller (recovery
    /// manager) replays the data from backups afterwards.
    fn handle_crash(
        &self,
        ctx: &RequestContext,
        req: ReportCrashRequest,
    ) -> Result<CrashReassignmentResponse> {
        let (index, reassignments, metas) = {
            let mut st = self.replica.lock();
            self.require_leader(&st)?;
            let mut view = Self::preview(&st);
            view.dead.insert(req.node);
            let alive = view.alive_brokers();
            if alive.is_empty() {
                return Err(KeraError::NoCapacity("no alive brokers left".into()));
            }
            // Deterministic order (sorted stream ids, placement order
            // within a stream) so the decided record is reproducible.
            let mut ids: Vec<StreamId> = view.streams.keys().copied().collect();
            ids.sort_unstable();
            let mut reassignments = Vec::new();
            let mut rr = 0usize;
            for id in &ids {
                for p in &view.streams[id].placements {
                    if p.broker == req.node {
                        reassignments.push(Reassignment {
                            stream: *id,
                            streamlet: p.streamlet,
                            new_broker: alive[rr % alive.len()],
                        });
                        rr += 1;
                    }
                }
            }
            let op = MetaOp::MarkDead { node: req.node, reassignments: reassignments.clone() };
            view.apply(&op);
            let mut touched: Vec<StreamId> =
                reassignments.iter().map(|r| r.stream).collect();
            touched.sort_unstable();
            touched.dedup();
            let metas: Vec<StreamMetadata> =
                touched.iter().map(|id| view.streams[id].clone()).collect();
            let term = st.election.term();
            let rec = st.log.append(term, op);
            (rec.index, reassignments, metas)
        };
        self.replicate_to_commit(index, self.op_deadline(ctx))?;
        // Tell the new owners to host their inherited streamlets.
        for meta in &metas {
            for broker in meta.brokers() {
                self.push_hosting(meta, Some(broker))?;
            }
        }
        Ok(CrashReassignmentResponse { reassignments })
    }
}

impl Service for CoordinatorService {
    fn handle(&self, ctx: &RequestContext, payload: Bytes) -> Result<Bytes> {
        if ctx.opcode == OpCode::Introspect {
            // The introspection plane bypasses the frozen chaos hook.
            return self.handle_introspect(&payload);
        }
        self.wait_if_frozen(ctx)?;
        match ctx.opcode {
            OpCode::Ping => Ok(Bytes::new()),
            OpCode::RequestVote => self.handle_vote(&payload),
            OpCode::MetaAppend => self.handle_append(&payload),
            OpCode::GetLeader => self.handle_get_leader(),
            OpCode::CreateStream => {
                let req = CreateStreamRequest::decode(&payload)?;
                Ok(self.handle_create(ctx, req)?.encode())
            }
            OpCode::GetMetadata => {
                let req = GetMetadataRequest::decode(&payload)?;
                Ok(self.handle_metadata(req)?.encode())
            }
            OpCode::ReportCrash => {
                let req = ReportCrashRequest::decode(&payload)?;
                Ok(self.handle_crash(ctx, req)?.encode())
            }
            OpCode::DeleteStream => {
                let stream = StreamId(Reader::new(&payload).u32()?);
                self.handle_delete(ctx, stream)?;
                Ok(Bytes::new())
            }
            other => Err(KeraError::Protocol(format!("coordinator cannot serve {other:?}"))),
        }
    }
}

impl Drop for CoordinatorService {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}
