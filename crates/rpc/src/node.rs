//! The node runtime: polling dispatch + worker pool (RAMCloud's threading
//! model, which KerA borrows — paper §IV, §V-E).
//!
//! One *dispatch* thread polls the transport. Incoming **requests** are
//! handed to a pool of *worker* threads that invoke the node's
//! [`Service`]; incoming **responses** complete pending calls directly on
//! the dispatch thread, so a worker blocked inside a handler (e.g. a
//! broker waiting for backup acks) can always be completed — the dispatch
//! thread never executes handlers and therefore never blocks on workers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{self, Receiver, Sender};
use kera_common::ids::NodeId;
use kera_common::metrics::Counter;
use kera_common::{KeraError, Result};
use kera_wire::frames::{Envelope, FrameKind, OpCode};
use parking_lot::Mutex;

use crate::transport::Transport;

/// How long the dispatch thread waits per poll before re-checking the
/// shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// A request being handled.
#[derive(Clone, Copy, Debug)]
pub struct RequestContext {
    pub from: NodeId,
    pub opcode: OpCode,
    pub request_id: u64,
}

/// The application living on a node. Handlers run on worker threads and
/// may block (e.g. on replication acks of nested RPCs).
pub trait Service: Send + Sync + 'static {
    fn handle(&self, ctx: &RequestContext, payload: Bytes) -> Result<Bytes>;
}

/// A service that rejects everything — used by pure client nodes.
pub struct NullService;

impl Service for NullService {
    fn handle(&self, ctx: &RequestContext, _payload: Bytes) -> Result<Bytes> {
        Err(KeraError::Protocol(format!("node serves no requests (got {:?})", ctx.opcode)))
    }
}

struct NodeInner {
    id: NodeId,
    transport: Arc<dyn Transport>,
    pending: Mutex<HashMap<u64, Sender<Envelope>>>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    /// RPCs served (requests handled) — observability for tests/benches.
    pub requests_served: Counter,
    /// RPCs issued from this node.
    pub calls_issued: Counter,
}

/// A running node: dispatch thread + workers. Dropping the runtime shuts
/// the node down and joins its threads.
pub struct NodeRuntime {
    inner: Arc<NodeInner>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl NodeRuntime {
    /// Starts a node on `transport` serving `service` with `workers`
    /// handler threads.
    pub fn start(
        transport: Arc<dyn Transport>,
        service: Arc<dyn Service>,
        workers: usize,
    ) -> NodeRuntime {
        assert!(workers >= 1, "a node needs at least one worker");
        let inner = Arc::new(NodeInner {
            id: transport.local(),
            transport,
            pending: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            requests_served: Counter::new(),
            calls_issued: Counter::new(),
        });

        let (work_tx, work_rx) = channel::unbounded::<Envelope>();
        let mut threads = Vec::with_capacity(workers + 1);

        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("dispatch-{}", inner.id.raw()))
                    .spawn(move || dispatch_loop(inner, work_tx))
                    .expect("spawn dispatch"),
            );
        }
        for w in 0..workers {
            let inner = Arc::clone(&inner);
            let service = Arc::clone(&service);
            let work_rx: Receiver<Envelope> = work_rx.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("worker-{}-{}", inner.id.raw(), w))
                    .spawn(move || worker_loop(inner, service, work_rx))
                    .expect("spawn worker"),
            );
        }
        NodeRuntime { inner, threads }
    }

    pub fn node_id(&self) -> NodeId {
        self.inner.id
    }

    /// A cheap cloneable handle for issuing RPCs from any thread.
    pub fn client(&self) -> RpcClient {
        RpcClient { inner: Arc::clone(&self.inner) }
    }

    /// Requests handled so far.
    pub fn requests_served(&self) -> u64 {
        self.inner.requests_served.get()
    }

    /// Initiates shutdown and joins all threads.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    fn begin_shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.transport.close();
        // Fail anything still waiting.
        self.inner.fail_all_pending();
    }
}

impl Drop for NodeRuntime {
    fn drop(&mut self) {
        self.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl NodeInner {
    fn fail_all_pending(&self) {
        // Dropping the senders closes the per-call channels; waiters see
        // Disconnected.
        self.pending.lock().clear();
    }
}

fn dispatch_loop(inner: Arc<NodeInner>, work_tx: Sender<Envelope>) {
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match inner.transport.recv(POLL_INTERVAL) {
            Ok(Some(env)) => match env.kind {
                FrameKind::Request => {
                    if work_tx.send(env).is_err() {
                        break; // workers gone
                    }
                }
                FrameKind::Response => {
                    let waiter = inner.pending.lock().remove(&env.request_id);
                    if let Some(tx) = waiter {
                        let _ = tx.send(env);
                    }
                    // else: the call timed out and gave up — drop the
                    // stale response.
                }
            },
            Ok(None) => continue,
            Err(_) => break, // transport closed (shutdown or crash)
        }
    }
    // Closing the work channel stops the workers; pending calls fail.
    drop(work_tx);
    inner.fail_all_pending();
}

fn worker_loop(inner: Arc<NodeInner>, service: Arc<dyn Service>, work_rx: Receiver<Envelope>) {
    while let Ok(env) = work_rx.recv() {
        let ctx = RequestContext { from: env.from, opcode: env.opcode, request_id: env.request_id };
        let reply = match service.handle(&ctx, env.payload) {
            Ok(payload) => Envelope::response(
                ctx.opcode,
                ctx.request_id,
                inner.id,
                kera_wire::frames::StatusCode::Ok,
                payload,
            ),
            Err(e) => Envelope::error_response(ctx.opcode, ctx.request_id, inner.id, &e),
        };
        inner.requests_served.inc();
        // The requester may be gone; that's its problem.
        let _ = inner.transport.send(ctx.from, reply);
    }
}

/// Handle for issuing RPCs from a node.
#[derive(Clone)]
pub struct RpcClient {
    inner: Arc<NodeInner>,
}

impl RpcClient {
    pub fn node_id(&self) -> NodeId {
        self.inner.id
    }

    /// Issues a request without waiting; the returned [`PendingCall`]
    /// resolves on response, timeout or disconnection.
    pub fn call_async(&self, to: NodeId, opcode: OpCode, payload: Bytes) -> PendingCall {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = channel::bounded(1);
        self.inner.pending.lock().insert(id, tx);
        self.inner.calls_issued.inc();
        let env = Envelope::request(opcode, id, self.inner.id, payload);
        if let Err(e) = self.inner.transport.send(to, env) {
            self.inner.pending.lock().remove(&id);
            return PendingCall { id, rx, failed: Some(e), inner: Arc::clone(&self.inner) };
        }
        PendingCall { id, rx, failed: None, inner: Arc::clone(&self.inner) }
    }

    /// Synchronous call: send, wait, check status, return the payload.
    pub fn call(
        &self,
        to: NodeId,
        opcode: OpCode,
        payload: Bytes,
        timeout: Duration,
    ) -> Result<Bytes> {
        self.call_async(to, opcode, payload).wait(timeout)
    }
}

/// An in-flight RPC.
pub struct PendingCall {
    id: u64,
    rx: Receiver<Envelope>,
    failed: Option<KeraError>,
    inner: Arc<NodeInner>,
}

impl PendingCall {
    /// True when the call has resolved (response arrived, send failed,
    /// or the channel closed). Lets pipelined callers reap completions
    /// opportunistically.
    pub fn is_ready(&self) -> bool {
        self.failed.is_some() || !self.rx.is_empty()
    }

    /// Waits up to `timeout` without consuming the call: returns
    /// `Some(result)` once resolved, `None` on timeout (the call stays
    /// pending and may be polled again). Used by pipelined callers that
    /// block on the oldest in-flight request.
    pub fn poll_wait(&mut self, timeout: Duration) -> Option<Result<Bytes>> {
        if let Some(e) = self.failed.take() {
            return Some(Err(e));
        }
        match self.rx.recv_timeout(timeout) {
            Ok(env) => Some(match env.check_status() {
                Ok(()) => Ok(env.payload),
                Err(e) => Err(e),
            }),
            Err(channel::RecvTimeoutError::Timeout) => None,
            Err(channel::RecvTimeoutError::Disconnected) => {
                Some(Err(KeraError::Disconnected(self.inner.id)))
            }
        }
    }

    /// Waits up to `timeout` for the response. On success returns the
    /// response payload; error statuses are converted back to
    /// [`KeraError`].
    pub fn wait(mut self, timeout: Duration) -> Result<Bytes> {
        match self.poll_wait(timeout) {
            Some(result) => result,
            None => {
                self.inner.pending.lock().remove(&self.id);
                Err(KeraError::Timeout { op: "rpc" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inmem::InMemNetwork;
    use kera_common::config::NetworkModel;

    /// Echoes the payload; `Shutdown` opcode returns an error; `Fetch`
    /// sleeps to simulate a slow handler.
    struct EchoService;

    impl Service for EchoService {
        fn handle(&self, ctx: &RequestContext, payload: Bytes) -> Result<Bytes> {
            match ctx.opcode {
                OpCode::Shutdown => Err(KeraError::ShuttingDown),
                OpCode::Fetch => {
                    std::thread::sleep(Duration::from_millis(200));
                    Ok(payload)
                }
                _ => Ok(payload),
            }
        }
    }

    fn pair() -> (InMemNetwork, NodeRuntime, NodeRuntime) {
        let net = InMemNetwork::new(NetworkModel::default());
        let server = NodeRuntime::start(
            Arc::new(net.register(NodeId(1))),
            Arc::new(EchoService),
            2,
        );
        let client = NodeRuntime::start(
            Arc::new(net.register(NodeId(2))),
            Arc::new(NullService),
            1,
        );
        (net, server, client)
    }

    #[test]
    fn roundtrip_call() {
        let (_net, _server, client) = pair();
        let got = client
            .client()
            .call(NodeId(1), OpCode::Ping, Bytes::from_static(b"hi"), Duration::from_secs(1))
            .unwrap();
        assert_eq!(&got[..], b"hi");
    }

    #[test]
    fn error_status_propagates() {
        let (_net, _server, client) = pair();
        let err = client
            .client()
            .call(NodeId(1), OpCode::Shutdown, Bytes::new(), Duration::from_secs(1))
            .unwrap_err();
        assert!(matches!(err, KeraError::ShuttingDown));
    }

    #[test]
    fn call_to_dead_node_fails_fast() {
        let (_net, _server, client) = pair();
        let err = client
            .client()
            .call(NodeId(42), OpCode::Ping, Bytes::new(), Duration::from_secs(1))
            .unwrap_err();
        assert!(matches!(err, KeraError::Disconnected(NodeId(42))));
    }

    #[test]
    fn timeout_when_server_is_slow() {
        let (_net, _server, client) = pair();
        let err = client
            .client()
            .call(NodeId(1), OpCode::Fetch, Bytes::new(), Duration::from_millis(20))
            .unwrap_err();
        assert!(matches!(err, KeraError::Timeout { .. }));
    }

    #[test]
    fn concurrent_calls_multiplex_on_one_link() {
        let (_net, server, client) = pair();
        let c = client.client();
        let calls: Vec<_> = (0..64u64)
            .map(|i| {
                let body = Bytes::from(i.to_le_bytes().to_vec());
                (i, c.call_async(NodeId(1), OpCode::Ping, body))
            })
            .collect();
        for (i, call) in calls {
            let got = call.wait(Duration::from_secs(2)).unwrap();
            assert_eq!(u64::from_le_bytes(got[..].try_into().unwrap()), i);
        }
        assert_eq!(server.requests_served(), 64);
    }

    #[test]
    fn calls_from_many_threads() {
        let (_net, _server, client) = pair();
        let c = client.client();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let body = Bytes::from(vec![t as u8, i as u8]);
                        let got = c
                            .call(NodeId(1), OpCode::Ping, body.clone(), Duration::from_secs(2))
                            .unwrap();
                        assert_eq!(got, body);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn nested_calls_do_not_deadlock() {
        // A service whose handler itself issues an RPC to another node —
        // the broker→backup pattern. With dispatch separated from workers
        // this must complete even with a single worker.
        struct Proxy {
            next: NodeId,
            client: Mutex<Option<RpcClient>>,
        }
        impl Service for Proxy {
            fn handle(&self, _ctx: &RequestContext, payload: Bytes) -> Result<Bytes> {
                let client = self.client.lock().clone().unwrap();
                client.call(self.next, OpCode::Ping, payload, Duration::from_secs(1))
            }
        }

        let net = InMemNetwork::new(NetworkModel::default());
        let proxy_svc = Arc::new(Proxy { next: NodeId(3), client: Mutex::new(None) });
        let proxy = NodeRuntime::start(
            Arc::new(net.register(NodeId(1))),
            Arc::clone(&proxy_svc) as Arc<dyn Service>,
            1,
        );
        *proxy_svc.client.lock() = Some(proxy.client());
        let _backend = NodeRuntime::start(
            Arc::new(net.register(NodeId(3))),
            Arc::new(EchoService),
            1,
        );
        let client =
            NodeRuntime::start(Arc::new(net.register(NodeId(2))), Arc::new(NullService), 1);

        let got = client
            .client()
            .call(NodeId(1), OpCode::Ping, Bytes::from_static(b"through"), Duration::from_secs(2))
            .unwrap();
        assert_eq!(&got[..], b"through");
    }

    #[test]
    fn null_service_rejects() {
        let (_net, _server, _client) = pair();
        // Call *into* the pure client node from the server side.
        let err = _server
            .client()
            .call(NodeId(2), OpCode::Ping, Bytes::new(), Duration::from_secs(1))
            .unwrap_err();
        assert!(matches!(err, KeraError::Protocol(_)));
    }

    #[test]
    fn shutdown_fails_outstanding_calls() {
        let (_net, server, client) = pair();
        let c = client.client();
        let call = c.call_async(NodeId(1), OpCode::Fetch, Bytes::new()); // slow op
        std::thread::sleep(Duration::from_millis(20));
        server.shutdown();
        // Either the response never comes (timeout) or the channel drops.
        let res = call.wait(Duration::from_millis(400));
        assert!(res.is_err());
    }

    #[test]
    fn stale_response_after_timeout_is_dropped() {
        let (_net, _server, client) = pair();
        let c = client.client();
        // Times out while the handler sleeps...
        let err = c
            .call(NodeId(1), OpCode::Fetch, Bytes::new(), Duration::from_millis(20))
            .unwrap_err();
        assert!(matches!(err, KeraError::Timeout { .. }));
        // ...and the late response must not corrupt a later call.
        std::thread::sleep(Duration::from_millis(250));
        let got = c
            .call(NodeId(1), OpCode::Ping, Bytes::from_static(b"ok"), Duration::from_secs(1))
            .unwrap();
        assert_eq!(&got[..], b"ok");
    }

    #[test]
    fn request_counters() {
        let (_net, server, client) = pair();
        let c = client.client();
        for _ in 0..5 {
            c.call(NodeId(1), OpCode::Ping, Bytes::new(), Duration::from_secs(1)).unwrap();
        }
        assert_eq!(server.requests_served(), 5);
    }
}
