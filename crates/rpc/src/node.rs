//! The node runtime: polling dispatch + worker pool (RAMCloud's threading
//! model, which KerA borrows — paper §IV, §V-E).
//!
//! One *dispatch* thread polls the transport. Incoming **requests** are
//! handed to a pool of *worker* threads that invoke the node's
//! [`Service`]; incoming **responses** complete pending calls directly on
//! the dispatch thread, so a worker blocked inside a handler (e.g. a
//! broker waiting for backup acks) can always be completed — the dispatch
//! thread never executes handlers and therefore never blocks on workers.
//!
//! Synchronous calls ([`RpcClient::call`]) retry transient failures with
//! exponential backoff under one overall deadline. Every attempt of a
//! logical call reuses the **same request id**, and the server keeps a
//! bounded cache of completed responses keyed by `(caller, request_id)`
//! (RAMCloud's RIFL discipline): a retry whose original executed but
//! whose response was lost is answered from the cache instead of being
//! re-executed, making retried RPCs at-most-once even for non-idempotent
//! handlers. Requests also carry their remaining time budget so servers
//! can drop queued work whose caller has already given up.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{self, Receiver, Sender};
use kera_common::config::RetryPolicy;
use kera_common::ids::NodeId;
use kera_common::metrics::Counter;
use kera_common::rng::SplitMix64;
use kera_common::{KeraError, Result};
use kera_obs::{NodeObs, Span, Stage, TraceContext};
use kera_wire::frames::{Envelope, FrameKind, OpCode};
use parking_lot::Mutex;

use crate::transport::Transport;

/// How long the dispatch thread waits per poll before re-checking the
/// shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// A request being handled.
#[derive(Clone, Copy, Debug)]
pub struct RequestContext {
    pub from: NodeId,
    pub opcode: OpCode,
    pub request_id: u64,
    /// When the caller's budget for this request runs out (from the
    /// envelope's deadline field); `None` if the caller sent none.
    pub deadline: Option<Instant>,
    /// The server-side span of this request ([`TraceContext::NONE`] when
    /// untraced). Also installed as the worker thread's current context
    /// for the duration of the handler, so nested RPCs inherit it.
    pub trace: TraceContext,
}

impl RequestContext {
    /// Time left before the caller gives up; `None` when no deadline was
    /// propagated. Handlers issuing nested RPCs (broker → backup) should
    /// cap their own waits by this.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }
}

/// The application living on a node. Handlers run on worker threads and
/// may block (e.g. on replication acks of nested RPCs).
pub trait Service: Send + Sync + 'static {
    fn handle(&self, ctx: &RequestContext, payload: Bytes) -> Result<Bytes>;
}

/// A service that rejects everything — used by pure client nodes.
pub struct NullService;

impl Service for NullService {
    fn handle(&self, ctx: &RequestContext, _payload: Bytes) -> Result<Bytes> {
        Err(KeraError::Protocol(format!("node serves no requests (got {:?})", ctx.opcode)))
    }
}

/// Verdict for an incoming request against the at-most-once state.
enum Admit {
    /// First sighting: execute it.
    New,
    /// Same request is being executed right now — drop the duplicate;
    /// the in-flight execution's response resolves the caller's pending
    /// slot for this id.
    Inflight,
    /// Already executed; resend the cached response without re-running
    /// the handler.
    Completed(Envelope),
}

/// At-most-once bookkeeping: which requests are executing, and a bounded
/// FIFO of completed responses for duplicate suppression. Bounded by
/// entry count and total cached payload bytes — eviction only matters
/// across the millisecond-scale retry window, so small caps suffice.
struct DedupState {
    inflight: std::collections::HashSet<(NodeId, u64)>,
    completed: HashMap<(NodeId, u64), Envelope>,
    order: VecDeque<(NodeId, u64)>,
    cached_bytes: usize,
}

struct DedupCache {
    state: Mutex<DedupState>,
}

impl DedupCache {
    const MAX_ENTRIES: usize = 1024;
    const MAX_BYTES: usize = 4 << 20;

    fn new() -> Self {
        Self {
            state: Mutex::named("rpc.dedup", DedupState {
                inflight: std::collections::HashSet::new(),
                completed: HashMap::new(),
                order: VecDeque::new(),
                cached_bytes: 0,
            }),
        }
    }

    fn admit(&self, key: (NodeId, u64)) -> Admit {
        let mut s = self.state.lock();
        if let Some(reply) = s.completed.get(&key) {
            return Admit::Completed(reply.clone());
        }
        if !s.inflight.insert(key) {
            return Admit::Inflight;
        }
        Admit::New
    }

    /// Records a finished request's response and evicts oldest entries
    /// past the caps.
    fn complete(&self, key: (NodeId, u64), reply: Envelope) {
        let mut s = self.state.lock();
        s.inflight.remove(&key);
        s.cached_bytes += reply.payload.len();
        if s.completed.insert(key, reply).is_none() {
            s.order.push_back(key);
        }
        while s.order.len() > Self::MAX_ENTRIES || s.cached_bytes > Self::MAX_BYTES {
            let Some(oldest) = s.order.pop_front() else { break };
            if let Some(evicted) = s.completed.remove(&oldest) {
                s.cached_bytes -= evicted.payload.len();
            }
        }
    }

    /// Clears the in-flight mark without caching anything (the request
    /// was dropped unexecuted, e.g. expired in queue) so a later retry
    /// is admitted as new.
    fn abandon(&self, key: (NodeId, u64)) {
        self.state.lock().inflight.remove(&key);
    }
}

/// A request queued for the worker pool, with its absolute expiry (from
/// the envelope's propagated deadline) resolved at receipt time.
struct WorkItem {
    env: Envelope,
    expires: Option<Instant>,
}

struct NodeInner {
    id: NodeId,
    transport: Arc<dyn Transport>,
    pending: Mutex<HashMap<u64, Sender<Envelope>>>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    retry: RetryPolicy,
    dedup: DedupCache,
    /// This node's observability handle (disabled unless the runtime was
    /// started with [`NodeRuntime::start_with_obs`]).
    obs: Arc<NodeObs>,
    /// RPCs served (requests handled) — `kera.rpc.requests_served`.
    pub requests_served: Arc<Counter>,
    /// RPCs issued from this node — `kera.rpc.calls_issued`.
    pub calls_issued: Arc<Counter>,
    /// Retransmissions performed by this node's synchronous calls —
    /// `kera.rpc.retries_sent`.
    pub retries_sent: Arc<Counter>,
    /// Duplicate requests suppressed by the at-most-once cache —
    /// `kera.rpc.requests_deduped`.
    pub requests_deduped: Arc<Counter>,
    /// Requests dropped unexecuted because their deadline passed in
    /// queue — `kera.rpc.requests_expired`.
    pub requests_expired: Arc<Counter>,
}

/// A running node: dispatch thread + workers. Dropping the runtime shuts
/// the node down and joins its threads.
pub struct NodeRuntime {
    inner: Arc<NodeInner>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl NodeRuntime {
    /// Starts a node on `transport` serving `service` with `workers`
    /// handler threads and the default [`RetryPolicy`].
    pub fn start(
        transport: Arc<dyn Transport>,
        service: Arc<dyn Service>,
        workers: usize,
    ) -> NodeRuntime {
        Self::start_with_policy(transport, service, workers, RetryPolicy::default())
    }

    /// Starts a node with an explicit retry/backoff policy for its
    /// synchronous calls.
    pub fn start_with_policy(
        transport: Arc<dyn Transport>,
        service: Arc<dyn Service>,
        workers: usize,
        retry: RetryPolicy,
    ) -> NodeRuntime {
        let obs = NodeObs::disabled(transport.local().raw());
        Self::start_with_obs(transport, service, workers, retry, obs)
    }

    /// Starts a node with an explicit observability handle; its RPC
    /// counters register in the handle's metrics registry, and (when the
    /// handle is enabled) every served request records a span.
    pub fn start_with_obs(
        transport: Arc<dyn Transport>,
        service: Arc<dyn Service>,
        workers: usize,
        retry: RetryPolicy,
        obs: Arc<NodeObs>,
    ) -> NodeRuntime {
        assert!(workers >= 1, "a node needs at least one worker");
        // lint: allow(no-panic) — construction-time config validation;
        // a malformed retry policy must fail fast at node startup.
        retry.validate().expect("invalid retry policy");
        let reg = obs.registry();
        let inner = Arc::new(NodeInner {
            id: transport.local(),
            transport,
            pending: Mutex::named("rpc.pending", HashMap::new()),
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            retry,
            dedup: DedupCache::new(),
            requests_served: reg.counter("kera.rpc.requests_served", &[]),
            calls_issued: reg.counter("kera.rpc.calls_issued", &[]),
            retries_sent: reg.counter("kera.rpc.retries_sent", &[]),
            requests_deduped: reg.counter("kera.rpc.requests_deduped", &[]),
            requests_expired: reg.counter("kera.rpc.requests_expired", &[]),
            obs,
        });

        let (work_tx, work_rx) = channel::unbounded::<WorkItem>();
        let mut threads = Vec::with_capacity(workers + 1);

        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("dispatch-{}", inner.id.raw()))
                    .spawn(move || dispatch_loop(inner, work_tx))
                    // lint: allow(no-panic) — spawn failure at node startup is
                    // fatal by design; the node never existed.
                    .expect("spawn dispatch"),
            );
        }
        for w in 0..workers {
            let inner = Arc::clone(&inner);
            let service = Arc::clone(&service);
            let work_rx: Receiver<WorkItem> = work_rx.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("worker-{}-{}", inner.id.raw(), w))
                    .spawn(move || worker_loop(inner, service, work_rx))
                    // lint: allow(no-panic) — spawn failure at node startup is
                    // fatal by design; the node never existed.
                    .expect("spawn worker"),
            );
        }
        NodeRuntime { inner, threads }
    }

    pub fn node_id(&self) -> NodeId {
        self.inner.id
    }

    /// A cheap cloneable handle for issuing RPCs from any thread.
    pub fn client(&self) -> RpcClient {
        RpcClient { inner: Arc::clone(&self.inner) }
    }

    /// Requests handled so far.
    pub fn requests_served(&self) -> u64 {
        self.inner.requests_served.get()
    }

    /// Duplicate requests answered from the at-most-once cache or
    /// suppressed while their original was still executing.
    pub fn requests_deduped(&self) -> u64 {
        self.inner.requests_deduped.get()
    }

    /// Requests dropped unexecuted because their propagated deadline
    /// expired while queued.
    pub fn requests_expired(&self) -> u64 {
        self.inner.requests_expired.get()
    }

    /// Initiates shutdown and joins all threads.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    fn begin_shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.transport.close();
        // Fail anything still waiting.
        self.inner.fail_all_pending();
    }
}

impl Drop for NodeRuntime {
    fn drop(&mut self) {
        self.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl NodeInner {
    fn fail_all_pending(&self) {
        // Dropping the senders closes the per-call channels; waiters see
        // Disconnected.
        self.pending.lock().clear();
    }
}

fn dispatch_loop(inner: Arc<NodeInner>, work_tx: Sender<WorkItem>) {
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match inner.transport.recv(POLL_INTERVAL) {
            Ok(Some(env)) => match env.kind {
                FrameKind::Request => {
                    match inner.dedup.admit((env.from, env.request_id)) {
                        Admit::Completed(reply) => {
                            // Retry of an already-executed request whose
                            // response was lost: replay the cached reply.
                            inner.requests_deduped.inc();
                            inner.obs.event(
                                Stage::RpcDedupHit,
                                TraceContext { trace_id: env.trace_id, span_id: env.span_id },
                                env.opcode as u8,
                                env.request_id,
                            );
                            let _ = inner.transport.send(env.from, reply);
                        }
                        Admit::Inflight => {
                            // The original execution will answer; its
                            // response resolves this id's pending slot.
                            inner.requests_deduped.inc();
                            inner.obs.event(
                                Stage::RpcDedupHit,
                                TraceContext { trace_id: env.trace_id, span_id: env.span_id },
                                env.opcode as u8,
                                env.request_id,
                            );
                        }
                        Admit::New => {
                            let expires = (env.deadline_micros > 0).then(|| {
                                Instant::now() + Duration::from_micros(env.deadline_micros)
                            });
                            if work_tx.send(WorkItem { env, expires }).is_err() {
                                break; // workers gone
                            }
                        }
                    }
                }
                FrameKind::Response => {
                    let waiter = inner.pending.lock().remove(&env.request_id);
                    if let Some(tx) = waiter {
                        let _ = tx.send(env);
                    }
                    // else: the call timed out and gave up — drop the
                    // stale response.
                }
            },
            Ok(None) => continue,
            Err(_) => break, // transport closed (shutdown or crash)
        }
    }
    // Closing the work channel stops the workers; pending calls fail.
    drop(work_tx);
    inner.fail_all_pending();
}

fn worker_loop(inner: Arc<NodeInner>, service: Arc<dyn Service>, work_rx: Receiver<WorkItem>) {
    while let Ok(item) = work_rx.recv() {
        let env = item.env;
        let key = (env.from, env.request_id);
        let sender_ctx = TraceContext { trace_id: env.trace_id, span_id: env.span_id };
        if let Some(expires) = item.expires {
            if Instant::now() >= expires {
                // The caller's budget ran out while this sat in queue —
                // skip the work; clearing the in-flight mark (without a
                // cached response) lets a later retry execute fresh.
                inner.dedup.abandon(key);
                inner.requests_expired.inc();
                inner.obs.event(Stage::RpcExpired, sender_ctx, env.opcode as u8, env.request_id);
                continue;
            }
        }
        // The serve span is parented to the sender's span; making it the
        // thread's current context means any nested RPC the handler
        // issues (broker → backup) parents to this execution.
        let mut span = inner.obs.span(Stage::RpcServe, sender_ctx);
        span.set_opcode(env.opcode as u8);
        let ctx = RequestContext {
            from: env.from,
            opcode: env.opcode,
            request_id: env.request_id,
            deadline: item.expires,
            trace: span.context(),
        };
        inner.obs.inflight_enter();
        let reply = {
            let _in_trace = kera_obs::enter(ctx.trace);
            match service.handle(&ctx, env.payload) {
                Ok(payload) => Envelope::response(
                    ctx.opcode,
                    ctx.request_id,
                    inner.id,
                    kera_wire::frames::StatusCode::Ok,
                    payload,
                ),
                Err(e) => {
                    // Errored serves are force-sampled into the
                    // slow-trace store regardless of duration.
                    span.set_error();
                    Envelope::error_response(ctx.opcode, ctx.request_id, inner.id, &e)
                }
            }
        };
        inner.obs.inflight_exit();
        span.set_aux(reply.payload.len() as u64);
        span.finish();
        inner.dedup.complete(key, reply.clone());
        inner.requests_served.inc();
        // The requester may be gone; that's its problem.
        let _ = inner.transport.send(ctx.from, reply);
    }
}

/// Handle for issuing RPCs from a node.
#[derive(Clone)]
pub struct RpcClient {
    inner: Arc<NodeInner>,
}

impl RpcClient {
    pub fn node_id(&self) -> NodeId {
        self.inner.id
    }

    /// This node's observability handle.
    pub fn obs(&self) -> &Arc<NodeObs> {
        &self.inner.obs
    }

    /// Issues a request without waiting; the returned [`PendingCall`]
    /// resolves on response, timeout or disconnection. While the caller
    /// waits, the call retransmits the *same* request id every
    /// `attempt_timeout` (up to `max_attempts` sends), so a dropped
    /// request or reply heals without re-executing the handler — the
    /// server's at-most-once cache suppresses duplicate executions and
    /// replays the cached response.
    pub fn call_async(&self, to: NodeId, opcode: OpCode, payload: Bytes) -> PendingCall {
        self.issue(to, opcode, payload, true)
    }

    fn issue(&self, to: NodeId, opcode: OpCode, payload: Bytes, retransmit: bool) -> PendingCall {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = channel::bounded(1);
        self.inner.pending.lock().insert(id, tx);
        self.inner.calls_issued.inc();
        // Child of the issuing thread's current context (e.g. the serve
        // span of the request this call is nested under), or a fresh
        // root trace for standalone callers.
        let mut span = self.inner.obs.span_or_root(Stage::RpcCall);
        span.set_opcode(opcode as u8);
        let trace = span.context();
        // Async calls have no overall budget yet (the caller picks one at
        // wait time), so the envelope carries no deadline: the server
        // must not drop work a pipelined caller is still waiting on.
        let env = Envelope::request(opcode, id, self.inner.id, payload)
            .with_trace(trace.trace_id, trace.span_id);
        if let Err(e) = self.inner.transport.send(to, env.clone()) {
            self.inner.pending.lock().remove(&id);
            return PendingCall {
                id,
                rx,
                failed: Some(e),
                inner: Arc::clone(&self.inner),
                to,
                env,
                attempts: 1,
                retransmit: false,
                next_retransmit: Instant::now(),
                span,
            };
        }
        let next_retransmit = Instant::now() + self.inner.retry.attempt_timeout;
        PendingCall {
            id,
            rx,
            failed: None,
            inner: Arc::clone(&self.inner),
            to,
            env,
            attempts: 1,
            retransmit,
            next_retransmit,
            span,
        }
    }

    /// Synchronous call with retries: *delivery* failures (send errors,
    /// response timeouts) are retried with exponential backoff and
    /// jitter until the overall `timeout` budget runs out. Every attempt
    /// reuses the same request id, so the server's at-most-once cache
    /// guarantees the handler runs at most once even across retries.
    ///
    /// An error **status** in a response is returned immediately, even
    /// for transient error kinds: it proves the handler executed, and a
    /// same-id retry would only replay the cached outcome. Whether to
    /// re-execute is the application's decision, not the RPC layer's.
    pub fn call(
        &self,
        to: NodeId,
        opcode: OpCode,
        payload: Bytes,
        timeout: Duration,
    ) -> Result<Bytes> {
        let policy = self.inner.retry;
        let deadline = Instant::now() + timeout;
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        // One span covers the whole logical call: every attempt reuses
        // the same request id and the same trace context, so a retried
        // produce stays one causal tree on the server side.
        let mut span = self.inner.obs.span_or_root(Stage::RpcCall);
        span.set_opcode(opcode as u8);
        let trace = span.context();
        // Deterministic jitter: seeded by (node, call), independent of
        // thread interleavings.
        let mut rng = SplitMix64::new(u64::from(self.inner.id.raw()) << 32 ^ id);
        let mut last_err: Option<KeraError> = None;

        for attempt in 0..policy.max_attempts {
            if attempt > 0 {
                // Back off between attempts, jittered to [50%, 100%] of
                // the exponential step; never sleep past the deadline.
                let base = policy.backoff_for(attempt);
                let jittered = base.mul_f64(0.5 + 0.5 * (rng.next_u32() as f64 / u32::MAX as f64));
                let remaining = deadline.saturating_duration_since(Instant::now());
                if jittered >= remaining {
                    break;
                }
                std::thread::sleep(jittered);
                self.inner.retries_sent.inc();
                self.inner.obs.event(Stage::RpcRetry, trace, opcode as u8, u64::from(attempt));
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            span.set_aux(u64::from(attempt + 1));
            let remaining = deadline - now;
            let attempt_timeout = remaining.min(policy.attempt_timeout);

            let (tx, rx) = channel::bounded(1);
            self.inner.pending.lock().insert(id, tx);
            self.inner.calls_issued.inc();
            // Propagate the *overall* remaining budget, not the attempt
            // timeout: a per-attempt timeout only triggers a retransmit
            // of the same id — the caller hasn't abandoned the call, and
            // the server must not drop the original execution early.
            // lint: allow(no-hot-copy) — refcount clone kept for retransmits
            let env = Envelope::request(opcode, id, self.inner.id, payload.clone())
                .with_deadline(remaining)
                .with_trace(trace.trace_id, trace.span_id);
            if let Err(e) = self.inner.transport.send(to, env) {
                self.inner.pending.lock().remove(&id);
                if e.is_retriable() {
                    last_err = Some(e);
                    continue;
                }
                return Err(e);
            }
            match rx.recv_timeout(attempt_timeout) {
                Ok(env) => match env.check_status() {
                    Ok(()) => return Ok(env.payload),
                    // A response proves execution: return its outcome.
                    Err(e) => return Err(e),
                },
                Err(channel::RecvTimeoutError::Timeout) => {
                    self.inner.pending.lock().remove(&id);
                    last_err = Some(KeraError::Timeout { op: "rpc" });
                    continue;
                }
                Err(channel::RecvTimeoutError::Disconnected) => {
                    // Our own node is shutting down; no point retrying.
                    return Err(KeraError::Disconnected(self.inner.id));
                }
            }
        }
        Err(last_err.unwrap_or(KeraError::Timeout { op: "rpc" }))
    }

    /// Single-shot synchronous call (the pre-retry behaviour): one
    /// send, no retransmission, no backoff. For callers that orchestrate
    /// their own failure handling.
    pub fn call_once(
        &self,
        to: NodeId,
        opcode: OpCode,
        payload: Bytes,
        timeout: Duration,
    ) -> Result<Bytes> {
        self.issue(to, opcode, payload, false).wait(timeout)
    }

    /// Calls whichever of `replicas` currently leads the replicated
    /// coordinator, following `NotLeader` redirects and riding out
    /// election windows until `timeout` expires.
    ///
    /// Probing starts at `preferred` (the caller's cached leader) and
    /// rotates through the replica set: a `NotLeader` response jumps to
    /// the replica's hint when it has one, a delivery failure (timeout,
    /// disconnect, shutdown) moves to the next replica, and any other
    /// error status proves the handler executed and is returned as-is.
    /// After a full fruitless rotation the probe sleeps briefly so an
    /// in-flight election can finish instead of being hammered.
    ///
    /// Returns the response payload and the node that served it, so the
    /// caller can cache the leader for its next call.
    pub fn call_leader(
        &self,
        replicas: &[NodeId],
        preferred: Option<NodeId>,
        opcode: OpCode,
        payload: Bytes,
        timeout: Duration,
    ) -> Result<(Bytes, NodeId)> {
        if replicas.is_empty() {
            return Err(KeraError::InvalidConfig("no coordinator replicas to call".into()));
        }
        let deadline = Instant::now() + timeout;
        // Cap each probe so a dead or partitioned replica cannot eat the
        // whole budget; `call` still retransmits within the probe.
        let probe_budget = self.inner.retry.attempt_timeout.max(Duration::from_millis(100));
        let mut target = preferred
            .and_then(|p| replicas.iter().position(|&r| r == p))
            .unwrap_or(0);
        let mut probes_since_progress = 0usize;
        let mut last_err = KeraError::Timeout { op: "call_leader" };
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(last_err);
            }
            let to = replicas[target];
            // lint: allow(no-hot-copy) — refcount clone per leader probe
            match self.call(to, opcode, payload.clone(), remaining.min(probe_budget)) {
                Ok(bytes) => return Ok((bytes, to)),
                Err(KeraError::NotLeader { hint, term: _ }) => {
                    last_err = KeraError::NotLeader { hint, term: 0 };
                    probes_since_progress += 1;
                    // Follow the hint when it points somewhere new;
                    // otherwise round-robin past the stale replica.
                    target = match hint.and_then(|h| replicas.iter().position(|&r| r == h)) {
                        Some(h) if h != target => h,
                        _ => (target + 1) % replicas.len(),
                    };
                }
                Err(e) if e.is_retriable() => {
                    last_err = e;
                    probes_since_progress += 1;
                    target = (target + 1) % replicas.len();
                }
                Err(e) => return Err(e),
            }
            if probes_since_progress >= replicas.len() {
                // A whole rotation without a leader: an election is in
                // flight. Yield a heartbeat-scale beat before re-probing.
                probes_since_progress = 0;
                let nap = Duration::from_millis(10)
                    .min(deadline.saturating_duration_since(Instant::now()));
                if !nap.is_zero() {
                    std::thread::sleep(nap);
                }
            }
        }
    }

    /// The retry policy this client applies in [`RpcClient::call`].
    pub fn retry_policy(&self) -> RetryPolicy {
        self.inner.retry
    }

    /// Retries and retransmissions sent so far (synchronous retries and
    /// async same-id retransmits combined).
    pub fn retries_sent(&self) -> u64 {
        self.inner.retries_sent.get()
    }
}

/// An in-flight RPC. While waited on, it retransmits the same request
/// id on a fixed `attempt_timeout` timer (bounded by the retry policy's
/// `max_attempts`), so transient loss heals transparently; the server's
/// at-most-once cache keeps retransmits from re-executing the handler.
pub struct PendingCall {
    id: u64,
    rx: Receiver<Envelope>,
    failed: Option<KeraError>,
    inner: Arc<NodeInner>,
    to: NodeId,
    /// The original request envelope, resent verbatim on retransmit.
    env: Envelope,
    /// Sends so far (first transmission included).
    attempts: u32,
    /// Whether this call retransmits at all (`call_once` does not).
    retransmit: bool,
    next_retransmit: Instant,
    /// The client-side span of this call; finished when the call
    /// resolves (or when an abandoned call is dropped).
    span: Span,
}

impl PendingCall {
    /// True when the call has resolved (response arrived, send failed,
    /// or the channel closed). Lets pipelined callers reap completions
    /// opportunistically.
    pub fn is_ready(&self) -> bool {
        self.failed.is_some() || !self.rx.is_empty()
    }

    /// Waits up to `timeout` without consuming the call: returns
    /// `Some(result)` once resolved, `None` on timeout (the call stays
    /// pending and may be polled again). Used by pipelined callers that
    /// block on the oldest in-flight request. Retransmits the request
    /// whenever its retransmission timer fires during the wait.
    pub fn poll_wait(&mut self, timeout: Duration) -> Option<Result<Bytes>> {
        if let Some(e) = self.failed.take() {
            self.finish_span();
            return Some(Err(e));
        }
        let poll_deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            let until_deadline = poll_deadline.saturating_duration_since(now);
            let can_retransmit =
                self.retransmit && self.attempts < self.inner.retry.max_attempts;
            let wait = if can_retransmit {
                self.next_retransmit
                    .saturating_duration_since(now)
                    .min(until_deadline)
            } else {
                until_deadline
            };
            match self.rx.recv_timeout(wait) {
                Ok(env) => {
                    self.finish_span();
                    return Some(match env.check_status() {
                        Ok(()) => Ok(env.payload),
                        Err(e) => Err(e),
                    });
                }
                Err(channel::RecvTimeoutError::Timeout) => {
                    let now = Instant::now();
                    if can_retransmit && now >= self.next_retransmit {
                        self.attempts += 1;
                        self.inner.retries_sent.inc();
                        self.inner.obs.event(
                            Stage::RpcRetry,
                            self.span.context(),
                            self.env.opcode as u8,
                            u64::from(self.attempts),
                        );
                        // A failed retransmit is just more loss; the next
                        // timer tick (or the caller's timeout) handles it.
                        let _ = self.inner.transport.send(self.to, self.env.clone());
                        self.next_retransmit = now + self.inner.retry.attempt_timeout;
                    }
                    if now >= poll_deadline {
                        return None;
                    }
                }
                Err(channel::RecvTimeoutError::Disconnected) => {
                    self.finish_span();
                    return Some(Err(KeraError::Disconnected(self.inner.id)));
                }
            }
        }
    }

    /// Records the call span now (resolution time), replacing it with an
    /// inert one so later polls/drops record nothing more.
    fn finish_span(&mut self) {
        let mut span = std::mem::replace(&mut self.span, Span::inert());
        span.set_aux(u64::from(self.attempts));
        span.finish();
    }

    /// Waits up to `timeout` for the response. On success returns the
    /// response payload; error statuses are converted back to
    /// [`KeraError`].
    pub fn wait(mut self, timeout: Duration) -> Result<Bytes> {
        match self.poll_wait(timeout) {
            Some(result) => result,
            None => {
                self.inner.pending.lock().remove(&self.id);
                Err(KeraError::Timeout { op: "rpc" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inmem::InMemNetwork;
    use kera_common::config::NetworkModel;

    /// Echoes the payload; `Shutdown` opcode returns an error; `Fetch`
    /// sleeps to simulate a slow handler.
    struct EchoService;

    impl Service for EchoService {
        fn handle(&self, ctx: &RequestContext, payload: Bytes) -> Result<Bytes> {
            match ctx.opcode {
                OpCode::Shutdown => Err(KeraError::ShuttingDown),
                OpCode::Fetch => {
                    std::thread::sleep(Duration::from_millis(200));
                    Ok(payload)
                }
                _ => Ok(payload),
            }
        }
    }

    fn pair() -> (InMemNetwork, NodeRuntime, NodeRuntime) {
        let net = InMemNetwork::new(NetworkModel::default());
        let server = NodeRuntime::start(
            Arc::new(net.register(NodeId(1))),
            Arc::new(EchoService),
            2,
        );
        let client = NodeRuntime::start(
            Arc::new(net.register(NodeId(2))),
            Arc::new(NullService),
            1,
        );
        (net, server, client)
    }

    #[test]
    fn roundtrip_call() {
        let (_net, _server, client) = pair();
        let got = client
            .client()
            .call(NodeId(1), OpCode::Ping, Bytes::from_static(b"hi"), Duration::from_secs(1))
            .unwrap();
        assert_eq!(&got[..], b"hi");
    }

    #[test]
    fn error_status_propagates() {
        let (_net, _server, client) = pair();
        let err = client
            .client()
            .call(NodeId(1), OpCode::Shutdown, Bytes::new(), Duration::from_secs(1))
            .unwrap_err();
        assert!(matches!(err, KeraError::ShuttingDown));
    }

    #[test]
    fn call_to_dead_node_fails_fast() {
        let (_net, _server, client) = pair();
        let err = client
            .client()
            .call(NodeId(42), OpCode::Ping, Bytes::new(), Duration::from_secs(1))
            .unwrap_err();
        assert!(matches!(err, KeraError::Disconnected(NodeId(42))));
    }

    #[test]
    fn timeout_when_server_is_slow() {
        let (_net, _server, client) = pair();
        let err = client
            .client()
            .call(NodeId(1), OpCode::Fetch, Bytes::new(), Duration::from_millis(20))
            .unwrap_err();
        assert!(matches!(err, KeraError::Timeout { .. }));
    }

    #[test]
    fn concurrent_calls_multiplex_on_one_link() {
        let (_net, server, client) = pair();
        let c = client.client();
        let calls: Vec<_> = (0..64u64)
            .map(|i| {
                let body = Bytes::from(i.to_le_bytes().to_vec());
                (i, c.call_async(NodeId(1), OpCode::Ping, body))
            })
            .collect();
        for (i, call) in calls {
            let got = call.wait(Duration::from_secs(2)).unwrap();
            assert_eq!(u64::from_le_bytes(got[..].try_into().unwrap()), i);
        }
        assert_eq!(server.requests_served(), 64);
    }

    #[test]
    fn calls_from_many_threads() {
        let (_net, _server, client) = pair();
        let c = client.client();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let body = Bytes::from(vec![t as u8, i as u8]);
                        let got = c
                            .call(NodeId(1), OpCode::Ping, body.clone(), Duration::from_secs(2))
                            .unwrap();
                        assert_eq!(got, body);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn nested_calls_do_not_deadlock() {
        // A service whose handler itself issues an RPC to another node —
        // the broker→backup pattern. With dispatch separated from workers
        // this must complete even with a single worker.
        struct Proxy {
            next: NodeId,
            client: Mutex<Option<RpcClient>>,
        }
        impl Service for Proxy {
            fn handle(&self, _ctx: &RequestContext, payload: Bytes) -> Result<Bytes> {
                let client = self.client.lock().clone().unwrap();
                client.call(self.next, OpCode::Ping, payload, Duration::from_secs(1))
            }
        }

        let net = InMemNetwork::new(NetworkModel::default());
        let proxy_svc = Arc::new(Proxy { next: NodeId(3), client: Mutex::new(None) });
        let proxy = NodeRuntime::start(
            Arc::new(net.register(NodeId(1))),
            Arc::clone(&proxy_svc) as Arc<dyn Service>,
            1,
        );
        *proxy_svc.client.lock() = Some(proxy.client());
        let _backend = NodeRuntime::start(
            Arc::new(net.register(NodeId(3))),
            Arc::new(EchoService),
            1,
        );
        let client =
            NodeRuntime::start(Arc::new(net.register(NodeId(2))), Arc::new(NullService), 1);

        let got = client
            .client()
            .call(NodeId(1), OpCode::Ping, Bytes::from_static(b"through"), Duration::from_secs(2))
            .unwrap();
        assert_eq!(&got[..], b"through");
    }

    #[test]
    fn null_service_rejects() {
        let (_net, _server, _client) = pair();
        // Call *into* the pure client node from the server side.
        let err = _server
            .client()
            .call(NodeId(2), OpCode::Ping, Bytes::new(), Duration::from_secs(1))
            .unwrap_err();
        assert!(matches!(err, KeraError::Protocol(_)));
    }

    #[test]
    fn shutdown_fails_outstanding_calls() {
        let (_net, server, client) = pair();
        let c = client.client();
        let call = c.call_async(NodeId(1), OpCode::Fetch, Bytes::new()); // slow op
        std::thread::sleep(Duration::from_millis(20));
        server.shutdown();
        // Either the response never comes (timeout) or the channel drops.
        let res = call.wait(Duration::from_millis(400));
        assert!(res.is_err());
    }

    #[test]
    fn stale_response_after_timeout_is_dropped() {
        let (_net, _server, client) = pair();
        let c = client.client();
        // Times out while the handler sleeps...
        let err = c
            .call(NodeId(1), OpCode::Fetch, Bytes::new(), Duration::from_millis(20))
            .unwrap_err();
        assert!(matches!(err, KeraError::Timeout { .. }));
        // ...and the late response must not corrupt a later call.
        std::thread::sleep(Duration::from_millis(250));
        let got = c
            .call(NodeId(1), OpCode::Ping, Bytes::from_static(b"ok"), Duration::from_secs(1))
            .unwrap();
        assert_eq!(&got[..], b"ok");
    }

    #[test]
    fn request_counters() {
        let (_net, server, client) = pair();
        let c = client.client();
        for _ in 0..5 {
            c.call(NodeId(1), OpCode::Ping, Bytes::new(), Duration::from_secs(1)).unwrap();
        }
        assert_eq!(server.requests_served(), 5);
    }

    #[test]
    fn retries_recover_from_lossy_transport() {
        use crate::faults::{FaultInjector, FaultPlan};
        use kera_common::config::FaultProfile;

        let net = InMemNetwork::new(NetworkModel::default());
        let _server =
            NodeRuntime::start(Arc::new(net.register(NodeId(1))), Arc::new(EchoService), 2);
        // 30% of everything the client sends vanishes; requests and the
        // server's responses share the link back, so response loss is
        // exercised via the injector on the server side too.
        let plan = FaultPlan::new(FaultProfile {
            seed: 11,
            drop_rate: 0.3,
            ..FaultProfile::default()
        });
        let lossy = Arc::new(FaultInjector::new(Arc::new(net.register(NodeId(2))), plan.clone()));
        let client = NodeRuntime::start_with_policy(
            lossy,
            Arc::new(NullService),
            1,
            RetryPolicy {
                max_attempts: 10,
                attempt_timeout: Duration::from_millis(100),
                initial_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(10),
            },
        );
        let c = client.client();
        for i in 0..40u64 {
            let body = Bytes::from(i.to_le_bytes().to_vec());
            let got = c
                .call(NodeId(1), OpCode::Ping, body.clone(), Duration::from_secs(5))
                .expect("retries should mask drops");
            assert_eq!(got, body);
        }
        assert!(plan.dropped() > 0, "faults never fired");
    }

    #[test]
    fn async_calls_retransmit_without_reexecuting() {
        use crate::faults::{FaultInjector, FaultPlan};
        use kera_common::config::FaultProfile;
        use std::sync::atomic::AtomicU64;

        struct CountingService {
            hits: Arc<AtomicU64>,
        }
        impl Service for CountingService {
            fn handle(&self, _ctx: &RequestContext, payload: Bytes) -> Result<Bytes> {
                self.hits.fetch_add(1, Ordering::SeqCst);
                Ok(payload)
            }
        }

        let net = InMemNetwork::new(NetworkModel::default());
        let hits = Arc::new(AtomicU64::new(0));
        let server = NodeRuntime::start(
            Arc::new(net.register(NodeId(1))),
            Arc::new(CountingService { hits: Arc::clone(&hits) }),
            2,
        );
        let plan = FaultPlan::new(FaultProfile {
            seed: 23,
            drop_rate: 0.4,
            ..FaultProfile::default()
        });
        let lossy = Arc::new(FaultInjector::new(Arc::new(net.register(NodeId(2))), plan.clone()));
        let client = NodeRuntime::start_with_policy(
            lossy,
            Arc::new(NullService),
            1,
            RetryPolicy {
                max_attempts: 20,
                attempt_timeout: Duration::from_millis(50),
                initial_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(10),
            },
        );
        let c = client.client();
        const CALLS: u64 = 30;
        for i in 0..CALLS {
            let body = Bytes::from(i.to_le_bytes().to_vec());
            let got = c
                .call_async(NodeId(1), OpCode::Ping, body.clone())
                .wait(Duration::from_secs(5))
                .expect("retransmits should mask drops");
            assert_eq!(got, body);
        }
        assert!(plan.dropped() > 0, "faults never fired");
        assert!(c.retries_sent() > 0, "drops should have forced retransmits");
        // Retransmitted ids never re-execute: at most one hit per call.
        assert_eq!(hits.load(Ordering::SeqCst), CALLS, "handler re-executed a retransmit");
        assert!(server.requests_deduped() > 0 || server.requests_served() == CALLS);
    }

    #[test]
    fn duplicate_request_executes_at_most_once() {
        use std::sync::atomic::AtomicU64;

        struct CountingService {
            hits: Arc<AtomicU64>,
        }
        impl Service for CountingService {
            fn handle(&self, _ctx: &RequestContext, payload: Bytes) -> Result<Bytes> {
                self.hits.fetch_add(1, Ordering::SeqCst);
                Ok(payload)
            }
        }

        let net = InMemNetwork::new(NetworkModel::default());
        let hits = Arc::new(AtomicU64::new(0));
        let server = NodeRuntime::start(
            Arc::new(net.register(NodeId(1))),
            Arc::new(CountingService { hits: Arc::clone(&hits) }),
            2,
        );
        // Raw transport standing in for a client whose retry re-sends the
        // same request id after the response was lost.
        let raw = net.register(NodeId(9));
        let req = Envelope::request(OpCode::Ping, 77, NodeId(9), Bytes::from_static(b"once"));
        raw.send(NodeId(1), req.clone()).unwrap();
        let first = raw.recv(Duration::from_secs(1)).unwrap().expect("first response");
        assert_eq!(&first.payload[..], b"once");

        raw.send(NodeId(1), req).unwrap();
        let second = raw.recv(Duration::from_secs(1)).unwrap().expect("cached response");
        assert_eq!(&second.payload[..], b"once");
        assert_eq!(second.request_id, 77);

        assert_eq!(hits.load(Ordering::SeqCst), 1, "handler must run exactly once");
        assert_eq!(server.requests_deduped(), 1);
    }

    #[test]
    fn expired_queued_request_is_dropped_then_retriable() {
        let net = InMemNetwork::new(NetworkModel::default());
        // Single worker so a slow request blocks the queue.
        let server =
            NodeRuntime::start(Arc::new(net.register(NodeId(1))), Arc::new(EchoService), 1);
        let raw = net.register(NodeId(9));

        // Occupy the worker for ~200ms.
        raw.send(NodeId(1), Envelope::request(OpCode::Fetch, 1, NodeId(9), Bytes::new()))
            .unwrap();
        // Queue a request whose budget expires long before the worker
        // frees up.
        let doomed = Envelope::request(OpCode::Ping, 2, NodeId(9), Bytes::from_static(b"late"))
            .with_deadline(Duration::from_millis(5));
        raw.send(NodeId(1), doomed).unwrap();

        let fetch_resp = raw.recv(Duration::from_secs(1)).unwrap().expect("fetch response");
        assert_eq!(fetch_resp.request_id, 1);
        // The expired request must produce no response...
        assert!(raw.recv(Duration::from_millis(100)).unwrap().is_none());
        assert_eq!(server.requests_expired(), 1);

        // ...but a retry of the same id (fresh budget) executes normally:
        // expiry abandoned the in-flight mark instead of caching anything.
        let retry = Envelope::request(OpCode::Ping, 2, NodeId(9), Bytes::from_static(b"late"))
            .with_deadline(Duration::from_secs(1));
        raw.send(NodeId(1), retry).unwrap();
        let resp = raw.recv(Duration::from_secs(1)).unwrap().expect("retry response");
        assert_eq!(resp.request_id, 2);
        assert_eq!(&resp.payload[..], b"late");
    }

    #[test]
    fn handlers_see_propagated_deadline() {
        struct DeadlineCheck;
        impl Service for DeadlineCheck {
            fn handle(&self, ctx: &RequestContext, _payload: Bytes) -> Result<Bytes> {
                let remaining = ctx.remaining().expect("call() must stamp a deadline");
                assert!(remaining <= Duration::from_secs(3));
                Ok(Bytes::new())
            }
        }
        let net = InMemNetwork::new(NetworkModel::default());
        let _server =
            NodeRuntime::start(Arc::new(net.register(NodeId(1))), Arc::new(DeadlineCheck), 1);
        let client =
            NodeRuntime::start(Arc::new(net.register(NodeId(2))), Arc::new(NullService), 1);
        client
            .client()
            .call(NodeId(1), OpCode::Ping, Bytes::new(), Duration::from_secs(3))
            .unwrap();
    }

    #[test]
    fn call_once_does_not_retry() {
        let (_net, _server, client) = pair();
        let c = client.client();
        let before = c.inner.calls_issued.get();
        let err = c
            .call_once(NodeId(42), OpCode::Ping, Bytes::new(), Duration::from_secs(1))
            .unwrap_err();
        assert!(matches!(err, KeraError::Disconnected(NodeId(42))));
        assert_eq!(c.inner.calls_issued.get(), before + 1);
    }
}
