//! The in-memory transport: the fabric of the in-process cluster.
//!
//! Each registered node gets an unbounded MPSC inbox; `send` pushes the
//! envelope into the destination's inbox. Two optional cost knobs
//! approximate a physical network (see `DESIGN.md` §1):
//!
//! - **bandwidth**: the sender busy-waits for the wire-serialization time
//!   of the message on its own link before the message is handed over,
//!   modelling NIC occupancy;
//! - **latency**: messages detour through a delivery thread that holds
//!   them in a timing heap until their arrival deadline.
//!
//! With both at zero (the default) the fabric adds only the real cost of a
//! channel hop, and all measured RPC overhead is genuine CPU work.
//!
//! The network also supports *fault injection*: [`InMemNetwork::crash`]
//! atomically unregisters a node; subsequent sends to it fail with
//! [`KeraError::Disconnected`] and its runtime observes a closed inbox.

use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, Sender};
use kera_common::config::NetworkModel;
use kera_common::ids::NodeId;
use kera_common::timing::spin_for_ns;
use kera_common::{KeraError, Result};
use kera_wire::frames::Envelope;
use parking_lot::{Mutex, RwLock};

use crate::transport::Transport;

struct NodeEntry {
    tx: Sender<Envelope>,
    /// Shared with the node's transport; set on crash/close so a dead
    /// node also stops *transmitting* (its in-flight calls fail fast
    /// instead of timing out).
    closed: Arc<std::sync::atomic::AtomicBool>,
}

struct Delayed {
    due: Instant,
    seq: u64,
    to: NodeId,
    env: Envelope,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by (due, seq): earliest deadline first, FIFO on ties so
        // per-link ordering is preserved.
        other.due.cmp(&self.due).then(other.seq.cmp(&self.seq))
    }
}

struct NetInner {
    nodes: RwLock<HashMap<NodeId, NodeEntry>>,
    model: NetworkModel,
    /// Lane to the delivery thread (present iff latency_ns > 0).
    delay_tx: Mutex<Option<Sender<Delayed>>>,
    seq: std::sync::atomic::AtomicU64,
}

/// A fabric connecting in-process nodes.
#[derive(Clone)]
pub struct InMemNetwork {
    inner: Arc<NetInner>,
}

impl InMemNetwork {
    pub fn new(model: NetworkModel) -> Self {
        let inner = Arc::new(NetInner {
            nodes: RwLock::named("net.nodes", HashMap::new()),
            model,
            delay_tx: Mutex::named("faults.delay_tx", None),
            seq: std::sync::atomic::AtomicU64::new(0),
        });
        if model.latency_ns > 0 {
            let (tx, rx) = channel::unbounded::<Delayed>();
            *inner.delay_tx.lock() = Some(tx);
            let net = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("inmem-delay".into())
                .spawn(move || delivery_loop(net, rx))
                // lint: allow(no-panic) — spawn failure while assembling the
                // in-memory fabric is fatal by design (test harness startup).
                .expect("spawn delivery thread");
        }
        Self { inner }
    }

    /// Registers `id` and returns its transport endpoint. Panics if the id
    /// is already registered (cluster assembly bug).
    pub fn register(&self, id: NodeId) -> InMemTransport {
        let (tx, rx) = channel::unbounded();
        let closed = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let prev = self
            .inner
            .nodes
            .write()
            .insert(id, NodeEntry { tx, closed: Arc::clone(&closed) });
        assert!(prev.is_none(), "node {id} registered twice");
        InMemTransport { id, net: Arc::clone(&self.inner), inbox: rx, closed }
    }

    /// Crashes `id`: unregisters it so in-flight and future sends fail and
    /// its inbox closes (waking its dispatch thread with an error).
    pub fn crash(&self, id: NodeId) {
        if let Some(entry) = self.inner.nodes.write().remove(&id) {
            entry.closed.store(true, std::sync::atomic::Ordering::SeqCst);
        }
    }

    /// True if `id` is currently registered (alive).
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.inner.nodes.read().contains_key(&id)
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.inner.nodes.read().len()
    }
}

fn delivery_loop(net: Arc<NetInner>, rx: Receiver<Delayed>) {
    let mut heap: BinaryHeap<Delayed> = BinaryHeap::new();
    loop {
        // Wait for the next due message or the next arrival, whichever
        // comes first.
        let next = match heap.peek() {
            Some(d) => {
                let now = Instant::now();
                if d.due <= now {
                    if let Some(d) = heap.pop() {
                        deliver(&net, d.to, d.env);
                    }
                    continue;
                }
                rx.recv_timeout(d.due - now)
            }
            None => rx.recv().map_err(|_| channel::RecvTimeoutError::Disconnected),
        };
        match next {
            Ok(d) => heap.push(d),
            Err(channel::RecvTimeoutError::Timeout) => continue,
            Err(channel::RecvTimeoutError::Disconnected) => {
                // Network dropped: flush what remains, then exit.
                while let Some(d) = heap.pop() {
                    deliver(&net, d.to, d.env);
                }
                return;
            }
        }
    }
}

fn deliver(net: &NetInner, to: NodeId, env: Envelope) {
    // A crashed destination silently swallows the message — exactly what a
    // dead NIC does; the sender's RPC times out instead.
    if let Some(entry) = net.nodes.read().get(&to) {
        let _ = entry.tx.send(env);
    }
}

/// One node's endpoint on an [`InMemNetwork`].
pub struct InMemTransport {
    id: NodeId,
    net: Arc<NetInner>,
    inbox: Receiver<Envelope>,
    closed: Arc<std::sync::atomic::AtomicBool>,
}

impl Transport for InMemTransport {
    fn local(&self) -> NodeId {
        self.id
    }

    fn send(&self, to: NodeId, env: Envelope) -> Result<()> {
        // A closed (shut down / crashed) node no longer transmits.
        if self.closed.load(std::sync::atomic::Ordering::SeqCst) {
            return Err(KeraError::ShuttingDown);
        }
        let model = &self.net.model;
        if model.bandwidth_bytes_per_sec > 0 {
            // Sender-side NIC occupancy: the calling thread owns this link.
            spin_for_ns(model.serialize_ns(env.wire_len()));
        }
        if !self.net.nodes.read().contains_key(&to) {
            return Err(KeraError::Disconnected(to));
        }
        if model.latency_ns > 0 {
            let due = Instant::now() + Duration::from_nanos(model.latency_ns);
            let seq = self.net.seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let guard = self.net.delay_tx.lock();
            if let Some(tx) = guard.as_ref() {
                tx.send(Delayed { due, seq, to, env }).map_err(|_| KeraError::ShuttingDown)?;
                return Ok(());
            }
        }
        deliver(&self.net, to, env);
        Ok(())
    }

    fn recv(&self, timeout: Duration) -> Result<Option<Envelope>> {
        match self.inbox.recv_timeout(timeout) {
            Ok(env) => Ok(Some(env)),
            Err(channel::RecvTimeoutError::Timeout) => Ok(None),
            Err(channel::RecvTimeoutError::Disconnected) => Err(KeraError::Disconnected(self.id)),
        }
    }

    fn close(&self) {
        self.closed.store(true, std::sync::atomic::Ordering::SeqCst);
        self.net.nodes.write().remove(&self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use kera_wire::frames::OpCode;

    fn env(from: u32, id: u64) -> Envelope {
        Envelope::request(OpCode::Ping, id, NodeId(from), Bytes::from_static(b"x"))
    }

    #[test]
    fn send_and_receive() {
        let net = InMemNetwork::new(NetworkModel::default());
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        a.send(NodeId(2), env(1, 7)).unwrap();
        let got = b.recv(Duration::from_secs(1)).unwrap().unwrap();
        assert_eq!(got.request_id, 7);
        assert_eq!(got.from, NodeId(1));
    }

    #[test]
    fn recv_timeout_returns_none() {
        let net = InMemNetwork::new(NetworkModel::default());
        let a = net.register(NodeId(1));
        assert!(a.recv(Duration::from_millis(10)).unwrap().is_none());
    }

    #[test]
    fn per_link_fifo_order() {
        let net = InMemNetwork::new(NetworkModel::default());
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        for i in 0..100 {
            a.send(NodeId(2), env(1, i)).unwrap();
        }
        for i in 0..100 {
            let got = b.recv(Duration::from_secs(1)).unwrap().unwrap();
            assert_eq!(got.request_id, i);
        }
    }

    #[test]
    fn send_to_unknown_node_fails() {
        let net = InMemNetwork::new(NetworkModel::default());
        let a = net.register(NodeId(1));
        let err = a.send(NodeId(99), env(1, 0)).unwrap_err();
        assert!(matches!(err, KeraError::Disconnected(NodeId(99))));
    }

    #[test]
    fn crash_makes_sends_fail_and_inbox_close() {
        let net = InMemNetwork::new(NetworkModel::default());
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        assert!(net.is_alive(NodeId(2)));
        net.crash(NodeId(2));
        assert!(!net.is_alive(NodeId(2)));
        assert!(a.send(NodeId(2), env(1, 0)).is_err());
        // The crashed node's own recv observes disconnection.
        assert!(b.recv(Duration::from_millis(10)).is_err());
    }

    #[test]
    fn double_register_panics() {
        let net = InMemNetwork::new(NetworkModel::default());
        let _a = net.register(NodeId(1));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = net.register(NodeId(1));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn latency_model_delays_delivery_but_keeps_order() {
        let net = InMemNetwork::new(NetworkModel {
            latency_ns: 5_000_000, // 5 ms
            bandwidth_bytes_per_sec: 0,
        });
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        let t0 = Instant::now();
        for i in 0..10 {
            a.send(NodeId(2), env(1, i)).unwrap();
        }
        for i in 0..10 {
            let got = b.recv(Duration::from_secs(1)).unwrap().unwrap();
            assert_eq!(got.request_id, i);
        }
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn bandwidth_model_paces_the_sender() {
        let net = InMemNetwork::new(NetworkModel {
            latency_ns: 0,
            bandwidth_bytes_per_sec: 1_000_000, // 1 MB/s
        });
        let a = net.register(NodeId(1));
        let _b = net.register(NodeId(2));
        let payload = Bytes::from(vec![0u8; 10_000]); // ~10 ms at 1 MB/s
        let t0 = Instant::now();
        a.send(NodeId(2), Envelope::request(OpCode::Ping, 0, NodeId(1), payload)).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(9));
    }

    #[test]
    fn close_unregisters() {
        let net = InMemNetwork::new(NetworkModel::default());
        let a = net.register(NodeId(1));
        assert_eq!(net.node_count(), 1);
        a.close();
        assert_eq!(net.node_count(), 0);
    }
}
