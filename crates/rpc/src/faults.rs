//! Fault injection at the transport seam.
//!
//! [`FaultInjector`] wraps any [`Transport`] and perturbs its sends:
//! messages can be silently dropped, delivered twice, delayed (which
//! also reorders them relative to later sends), or black-holed by a
//! per-direction partition. Faults happen *below* the RPC layer, so the
//! retry/backoff and at-most-once machinery in [`crate::node`] sees
//! exactly what a lossy network would produce.
//!
//! All probabilistic decisions come from a [`SplitMix64`] seeded per
//! node from the shared [`FaultProfile::seed`], so a given seed yields
//! the same fault pattern for the same per-node send sequence — failing
//! chaos tests reproduce.

use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use kera_common::config::FaultProfile;
use kera_common::ids::NodeId;
use kera_common::metrics::Counter;
use kera_common::rng::SplitMix64;
use kera_common::Result;
use kera_wire::frames::Envelope;
use parking_lot::Mutex;

use crate::transport::Transport;

/// Shared fault state for a cluster: the rate profile, the set of
/// active partitions, and counters for what was actually injected.
/// Cloning shares the underlying plan, so tests can hold one handle
/// while every node's injector consults the same partitions.
#[derive(Clone)]
pub struct FaultPlan {
    inner: Arc<PlanInner>,
}

struct PlanInner {
    profile: FaultProfile,
    /// Directed blocked links: a `(src, dst)` entry black-holes
    /// everything src sends toward dst.
    partitions: Mutex<HashSet<(NodeId, NodeId)>>,
    /// Slow clients: every send *originating* at a listed node stalls
    /// for the given duration first. Models a consumer whose uplink
    /// (fetch requests, acks) has gone glacial without dropping it.
    slow: Mutex<HashMap<NodeId, Duration>>,
    dropped: Counter,
    duplicated: Counter,
    delayed: Counter,
    blocked: Counter,
    stalled: Counter,
}

impl FaultPlan {
    pub fn new(profile: FaultProfile) -> FaultPlan {
        // lint: allow(no-panic) — construction-time config validation; a
        // malformed fault profile must fail fast when the plan is built.
        profile.validate().expect("invalid fault profile");
        FaultPlan {
            inner: Arc::new(PlanInner {
                profile,
                partitions: Mutex::named("faults.partitions", HashSet::new()),
                slow: Mutex::named("faults.slow", HashMap::new()),
                dropped: Counter::new(),
                duplicated: Counter::new(),
                delayed: Counter::new(),
                blocked: Counter::new(),
                stalled: Counter::new(),
            }),
        }
    }

    pub fn profile(&self) -> FaultProfile {
        self.inner.profile
    }

    /// Cuts the link between `a` and `b` in both directions.
    pub fn partition(&self, a: NodeId, b: NodeId) {
        let mut p = self.inner.partitions.lock();
        p.insert((a, b));
        p.insert((b, a));
    }

    /// Cuts only the `src → dst` direction (asymmetric partition).
    pub fn partition_one_way(&self, src: NodeId, dst: NodeId) {
        self.inner.partitions.lock().insert((src, dst));
    }

    /// Restores the link between `a` and `b` (both directions).
    pub fn heal(&self, a: NodeId, b: NodeId) {
        let mut p = self.inner.partitions.lock();
        p.remove(&(a, b));
        p.remove(&(b, a));
    }

    /// Removes every partition.
    pub fn heal_all(&self) {
        self.inner.partitions.lock().clear();
    }

    pub fn is_partitioned(&self, src: NodeId, dst: NodeId) -> bool {
        self.inner.partitions.lock().contains(&(src, dst))
    }

    /// Makes every send originating at `node` stall for `delay` before
    /// hitting the wire (slow-client mode). Unlike a delay fault this is
    /// synchronous — it back-pressures the sender's own threads, the
    /// way a saturated uplink would.
    pub fn set_slow(&self, node: NodeId, delay: Duration) {
        self.inner.slow.lock().insert(node, delay);
    }

    /// Restores `node` to full speed.
    pub fn clear_slow(&self, node: NodeId) {
        self.inner.slow.lock().remove(&node);
    }

    fn slow_delay(&self, node: NodeId) -> Option<Duration> {
        self.inner.slow.lock().get(&node).copied()
    }

    /// Messages silently dropped by the rate faults.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.get()
    }

    /// Messages delivered twice.
    pub fn duplicated(&self) -> u64 {
        self.inner.duplicated.get()
    }

    /// Messages held back by an injected delay.
    pub fn delayed(&self) -> u64 {
        self.inner.delayed.get()
    }

    /// Messages black-holed by a partition.
    pub fn blocked(&self) -> u64 {
        self.inner.blocked.get()
    }

    /// Sends stalled by slow-client mode.
    pub fn stalled(&self) -> u64 {
        self.inner.stalled.get()
    }
}

/// A delayed message waiting in the injector's timing heap.
struct Held {
    due: Instant,
    seq: u64,
    to: NodeId,
    env: Envelope,
}

impl PartialEq for Held {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Held {}
impl PartialOrd for Held {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Held {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by (due, seq): earliest release first, FIFO on ties.
        other.due.cmp(&self.due).then(other.seq.cmp(&self.seq))
    }
}

/// A [`Transport`] wrapper that injects the faults described by a
/// [`FaultPlan`] into every send. Receives pass through untouched —
/// faults are modeled at the sender, which suffices because each
/// message crosses exactly one injector.
pub struct FaultInjector {
    inner: Arc<dyn Transport>,
    plan: FaultPlan,
    rng: Mutex<SplitMix64>,
    /// Lane to the delay thread (spawned only when `delay_rate > 0`).
    delay_tx: Mutex<Option<Sender<Held>>>,
    seq: AtomicU64,
}

impl FaultInjector {
    pub fn new(inner: Arc<dyn Transport>, plan: FaultPlan) -> FaultInjector {
        let profile = plan.profile();
        let delay_tx = if profile.delay_rate > 0.0 && !profile.max_delay.is_zero() {
            let (tx, rx) = channel::unbounded::<Held>();
            let out = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("faults-delay-{}", inner.local().raw()))
                .spawn(move || delay_loop(out, rx))
                // lint: allow(no-panic) — spawn failure while wiring the fault
                // injector is fatal by design (test harness startup).
                .expect("spawn fault delay thread");
            Some(tx)
        } else {
            None
        };
        // Distinct stream per node so decisions don't depend on how the
        // scheduler interleaves different nodes' sends.
        let rng = SplitMix64::new(profile.seed ^ (u64::from(inner.local().raw()) << 20));
        FaultInjector {
            inner,
            plan,
            rng: Mutex::named("faults.rng", rng),
            delay_tx: Mutex::named("faults.delay_tx", delay_tx),
            seq: AtomicU64::new(0),
        }
    }

    /// Rolls one fault decision: true with probability `rate`.
    fn roll(&self, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.rng.lock().next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < rate
    }
}

impl Transport for FaultInjector {
    fn local(&self) -> NodeId {
        self.inner.local()
    }

    fn send(&self, to: NodeId, env: Envelope) -> Result<()> {
        let profile = self.plan.profile();
        if let Some(stall) = self.plan.slow_delay(self.local()) {
            // Synchronous stall *before* the other faults: a slow client
            // is slow on every byte it pushes, partitioned or not.
            self.plan.inner.stalled.inc();
            std::thread::sleep(stall);
        }
        if self.plan.is_partitioned(self.local(), to) {
            // Black hole: the network ate it. The caller only learns via
            // its own timeout, exactly like a real partition.
            self.plan.inner.blocked.inc();
            return Ok(());
        }
        if self.roll(profile.drop_rate) {
            self.plan.inner.dropped.inc();
            return Ok(());
        }
        if self.roll(profile.delay_rate) {
            let delay_micros = profile.max_delay.as_micros().min(u128::from(u64::MAX)) as u64;
            let held = Duration::from_micros(self.rng.lock().next_below(delay_micros.max(1)));
            let due = Instant::now() + held;
            if let Some(tx) = self.delay_tx.lock().as_ref() {
                let item = Held {
                    due,
                    seq: self.seq.fetch_add(1, Ordering::Relaxed),
                    to,
                    env,
                };
                if tx.send(item).is_ok() {
                    self.plan.inner.delayed.inc();
                    return Ok(());
                }
                // Delay thread gone (close raced); fall through by
                // reconstructing is impossible — treat as dropped.
                self.plan.inner.dropped.inc();
                return Ok(());
            }
        }
        if self.roll(profile.duplicate_rate) {
            self.plan.inner.duplicated.inc();
            self.inner.send(to, env.clone())?;
        }
        self.inner.send(to, env)
    }

    fn recv(&self, timeout: Duration) -> Result<Option<Envelope>> {
        self.inner.recv(timeout)
    }

    fn close(&self) {
        // Dropping the sender lets the delay thread drain and exit.
        self.delay_tx.lock().take();
        self.inner.close();
    }
}

fn delay_loop(out: Arc<dyn Transport>, rx: Receiver<Held>) {
    let mut heap: BinaryHeap<Held> = BinaryHeap::new();
    loop {
        let next = match heap.peek() {
            Some(h) => {
                let now = Instant::now();
                if h.due <= now {
                    if let Some(h) = heap.pop() {
                        // Peer may have died while the message was held.
                        let _ = out.send(h.to, h.env);
                    }
                    continue;
                }
                rx.recv_timeout(h.due - now)
            }
            None => rx.recv_timeout(Duration::from_millis(50)),
        };
        match next {
            Ok(h) => heap.push(h),
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => {
                // Transport closing: release anything still held, then
                // exit. Sends to closed peers fail harmlessly.
                while let Some(h) = heap.pop() {
                    let now = Instant::now();
                    if h.due > now {
                        std::thread::sleep(h.due - now);
                    }
                    let _ = out.send(h.to, h.env);
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inmem::InMemNetwork;
    use kera_common::config::NetworkModel;
    use kera_wire::frames::OpCode;

    fn env(id: u64) -> Envelope {
        Envelope::request(OpCode::Ping, id, NodeId(1), bytes::Bytes::from_static(b"x"))
    }

    fn wired(profile: FaultProfile) -> (FaultPlan, FaultInjector, impl Fn() -> usize) {
        let net = InMemNetwork::new(NetworkModel::default());
        let sender = net.register(NodeId(1));
        let receiver = net.register(NodeId(2));
        let plan = FaultPlan::new(profile);
        let injector = FaultInjector::new(Arc::new(sender), plan.clone());
        let drain = move || {
            let mut n = 0;
            while let Ok(Some(_)) = receiver.recv(Duration::from_millis(20)) {
                n += 1;
            }
            n
        };
        (plan, injector, drain)
    }

    #[test]
    fn no_faults_passes_through() {
        let (plan, injector, drain) = wired(FaultProfile::default());
        for i in 0..50 {
            injector.send(NodeId(2), env(i)).unwrap();
        }
        assert_eq!(drain(), 50);
        assert_eq!(plan.dropped() + plan.duplicated() + plan.delayed() + plan.blocked(), 0);
    }

    #[test]
    fn drop_rate_loses_messages() {
        let profile = FaultProfile { seed: 7, drop_rate: 0.5, ..FaultProfile::default() };
        let (plan, injector, drain) = wired(profile);
        for i in 0..200 {
            injector.send(NodeId(2), env(i)).unwrap();
        }
        let delivered = drain();
        assert_eq!(delivered as u64 + plan.dropped(), 200);
        // With rate 0.5 over 200 sends, both sides must be populated.
        assert!(plan.dropped() > 50, "dropped {}", plan.dropped());
        assert!(delivered > 50, "delivered {delivered}");
    }

    #[test]
    fn duplicate_rate_doubles_messages() {
        let profile = FaultProfile { seed: 7, duplicate_rate: 0.5, ..FaultProfile::default() };
        let (plan, injector, drain) = wired(profile);
        for i in 0..100 {
            injector.send(NodeId(2), env(i)).unwrap();
        }
        let delivered = drain();
        assert_eq!(delivered as u64, 100 + plan.duplicated());
        assert!(plan.duplicated() > 20, "duplicated {}", plan.duplicated());
    }

    #[test]
    fn delayed_messages_still_arrive() {
        let profile = FaultProfile {
            seed: 7,
            delay_rate: 1.0,
            max_delay: Duration::from_millis(5),
            ..FaultProfile::default()
        };
        let (plan, injector, drain) = wired(profile);
        for i in 0..20 {
            injector.send(NodeId(2), env(i)).unwrap();
        }
        assert_eq!(drain(), 20);
        assert_eq!(plan.delayed(), 20);
    }

    #[test]
    fn partition_blackholes_then_heals() {
        let (plan, injector, drain) = wired(FaultProfile::default());
        plan.partition(NodeId(1), NodeId(2));
        assert!(plan.is_partitioned(NodeId(1), NodeId(2)));
        assert!(plan.is_partitioned(NodeId(2), NodeId(1)));
        for i in 0..10 {
            // A partition looks like loss, not an error.
            injector.send(NodeId(2), env(i)).unwrap();
        }
        assert_eq!(drain(), 0);
        assert_eq!(plan.blocked(), 10);

        plan.heal(NodeId(1), NodeId(2));
        for i in 0..10 {
            injector.send(NodeId(2), env(i)).unwrap();
        }
        assert_eq!(drain(), 10);
    }

    #[test]
    fn one_way_partition_is_directional() {
        let (plan, _injector, _drain) = wired(FaultProfile::default());
        plan.partition_one_way(NodeId(1), NodeId(2));
        assert!(plan.is_partitioned(NodeId(1), NodeId(2)));
        assert!(!plan.is_partitioned(NodeId(2), NodeId(1)));
        plan.heal_all();
        assert!(!plan.is_partitioned(NodeId(1), NodeId(2)));
    }

    #[test]
    fn slow_client_stalls_sends_then_recovers() {
        let (plan, injector, drain) = wired(FaultProfile::default());
        plan.set_slow(NodeId(1), Duration::from_millis(5));
        let start = Instant::now();
        for i in 0..4 {
            injector.send(NodeId(2), env(i)).unwrap();
        }
        let stalled_for = start.elapsed();
        assert_eq!(drain(), 4, "slow mode must deliver, just late");
        assert_eq!(plan.stalled(), 4);
        assert!(stalled_for >= Duration::from_millis(20), "stalled {stalled_for:?}");

        plan.clear_slow(NodeId(1));
        injector.send(NodeId(2), env(99)).unwrap();
        assert_eq!(drain(), 1);
        assert_eq!(plan.stalled(), 4, "cleared node no longer stalls");
    }

    #[test]
    fn same_seed_same_decisions() {
        let profile = FaultProfile { seed: 99, drop_rate: 0.3, ..FaultProfile::default() };
        let run = || {
            let (plan, injector, drain) = wired(profile);
            for i in 0..100 {
                injector.send(NodeId(2), env(i)).unwrap();
            }
            (drain(), plan.dropped())
        };
        assert_eq!(run(), run());
    }
}
