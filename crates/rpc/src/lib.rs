//! RAMCloud-style RPC for the simulated cluster.
//!
//! KerA builds on RAMCloud's RPC framework to get a network abstraction
//! with pluggable transports and a *polling dispatch / worker* threading
//! model (paper §IV). This crate reproduces that architecture:
//!
//! - [`transport`] — the [`transport::Transport`] trait: a node-addressed,
//!   message-oriented duplex channel carrying [`kera_wire::frames::Envelope`]s;
//! - [`inmem`] — the in-memory transport used by the in-process cluster:
//!   lock-free channels between registered nodes, an optional network cost
//!   model (per-message latency, per-link bandwidth), and fault injection
//!   (crash a node, drop its traffic);
//! - [`tcp`] — a real TCP transport (length-prefixed frames over loopback
//!   or a LAN) with the same interface;
//! - [`faults`] — a transport wrapper injecting drops, duplicates, delays
//!   and partitions below the RPC layer, for chaos testing;
//! - [`node`] — the node runtime: one dispatch thread polls the transport
//!   and routes responses to pending calls and requests to a worker pool;
//!   [`node::RpcClient`] issues synchronous calls with bounded retries
//!   (at-most-once via a server-side response cache) and asynchronous
//!   single-shot calls.
//!
//! Every node of the simulated cluster — coordinator, brokers, backups and
//! clients — is one [`node::NodeRuntime`].

pub mod faults;
pub mod inmem;
pub mod network;
pub mod node;
pub mod tcp;
pub mod transport;

pub use faults::{FaultInjector, FaultPlan};
pub use inmem::InMemNetwork;
pub use network::{AnyNetwork, TransportKind};
pub use node::{NodeRuntime, NullService, PendingCall, RequestContext, RpcClient, Service};
pub use transport::Transport;
