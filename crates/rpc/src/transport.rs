//! The transport abstraction.
//!
//! A transport delivers whole [`Envelope`]s between nodes identified by
//! [`NodeId`]. Delivery is reliable and ordered per link while both ends
//! are alive (the in-memory transport uses FIFO channels; TCP is TCP);
//! when the peer is gone, sends fail with [`KeraError::Disconnected`].

use std::time::Duration;

use kera_common::ids::NodeId;
use kera_common::Result;
use kera_wire::frames::Envelope;

/// A node's connection to the cluster fabric.
pub trait Transport: Send + Sync + 'static {
    /// This node's address.
    fn local(&self) -> NodeId;

    /// Sends `env` to `to`. Blocks only for the (optional) simulated
    /// serialization delay; delivery is asynchronous.
    fn send(&self, to: NodeId, env: Envelope) -> Result<()>;

    /// Receives the next envelope addressed to this node, waiting up to
    /// `timeout`. Returns `Ok(None)` on timeout and `Err` once the
    /// transport is closed.
    fn recv(&self, timeout: Duration) -> Result<Option<Envelope>>;

    /// Closes the receiving side, waking any blocked `recv`.
    fn close(&self);
}
