//! TCP transport: the same [`Transport`] interface over real sockets.
//!
//! The paper's producers issue "one synchronous TCP request per broker,
//! multiple parallel requests" — this transport lets the same cluster code
//! run over loopback (or a LAN) instead of in-memory channels, at the cost
//! of kernel socket overhead. Frames are a `u32` little-endian length
//! prefix followed by the serialized [`Envelope`].
//!
//! A [`TcpNetwork`] is a directory mapping [`NodeId`]s to socket
//! addresses. Each registered node binds an ephemeral listener; outbound
//! connections are created lazily, one per (source, destination) pair, and
//! writes are serialized per destination.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{self, Receiver, Sender};
use kera_common::ids::NodeId;
use kera_common::{KeraError, Result};
use kera_wire::frames::Envelope;
use parking_lot::{Mutex, RwLock};

use crate::transport::Transport;

#[derive(Default)]
struct Directory {
    addrs: RwLock<HashMap<NodeId, SocketAddr>>,
}

/// A directory of TCP nodes.
#[derive(Clone, Default)]
pub struct TcpNetwork {
    dir: Arc<Directory>,
}

impl TcpNetwork {
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds a listener for `id` and returns its transport.
    pub fn register(&self, id: NodeId) -> Result<TcpTransport> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        {
            let mut addrs = self.dir.addrs.write();
            if addrs.contains_key(&id) {
                return Err(KeraError::InvalidConfig(format!("node {id} registered twice")));
            }
            addrs.insert(id, addr);
        }
        let (inbox_tx, inbox_rx) = channel::unbounded();
        let closed = Arc::new(AtomicBool::new(false));

        {
            let inbox_tx = inbox_tx.clone();
            let closed = Arc::clone(&closed);
            std::thread::Builder::new()
                .name(format!("tcp-accept-{}", id.raw()))
                .spawn(move || accept_loop(listener, inbox_tx, closed))
                .expect("spawn tcp accept");
        }

        Ok(TcpTransport {
            id,
            dir: Arc::clone(&self.dir),
            inbox_rx,
            conns: Mutex::new(HashMap::new()),
            addr,
            closed,
        })
    }

    /// Address a node listens on (useful for cross-process setups).
    pub fn addr_of(&self, id: NodeId) -> Option<SocketAddr> {
        self.dir.addrs.read().get(&id).copied()
    }
}

fn accept_loop(listener: TcpListener, inbox: Sender<Envelope>, closed: Arc<AtomicBool>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if closed.load(Ordering::SeqCst) {
                    return;
                }
                let inbox = inbox.clone();
                let closed = Arc::clone(&closed);
                std::thread::Builder::new()
                    .name("tcp-reader".into())
                    .spawn(move || reader_loop(stream, inbox, closed))
                    .expect("spawn tcp reader");
            }
            Err(_) => return,
        }
    }
}

fn reader_loop(mut stream: TcpStream, inbox: Sender<Envelope>, closed: Arc<AtomicBool>) {
    let mut len_buf = [0u8; 4];
    let mut body = Vec::new();
    loop {
        if closed.load(Ordering::SeqCst) {
            return;
        }
        if stream.read_exact(&mut len_buf).is_err() {
            return; // peer closed
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        body.resize(len, 0);
        if stream.read_exact(&mut body).is_err() {
            return;
        }
        match Envelope::decode(&body) {
            Ok(env) => {
                if inbox.send(env).is_err() {
                    return;
                }
            }
            Err(_) => return, // corrupt stream: drop the connection
        }
    }
}

/// One node's endpoint on a [`TcpNetwork`].
pub struct TcpTransport {
    id: NodeId,
    dir: Arc<Directory>,
    inbox_rx: Receiver<Envelope>,
    /// One outbound connection per destination; writes serialized per
    /// destination so frames never interleave.
    conns: Mutex<HashMap<NodeId, Arc<Mutex<TcpStream>>>>,
    addr: SocketAddr,
    closed: Arc<AtomicBool>,
}

impl TcpTransport {
    fn connection(&self, to: NodeId) -> Result<Arc<Mutex<TcpStream>>> {
        if let Some(c) = self.conns.lock().get(&to) {
            return Ok(Arc::clone(c));
        }
        let addr = self
            .dir
            .addrs
            .read()
            .get(&to)
            .copied()
            .ok_or(KeraError::Disconnected(to))?;
        let stream = TcpStream::connect(addr).map_err(|_| KeraError::Disconnected(to))?;
        stream.set_nodelay(true).ok();
        let conn = Arc::new(Mutex::new(stream));
        self.conns.lock().insert(to, Arc::clone(&conn));
        Ok(conn)
    }
}

impl Transport for TcpTransport {
    fn local(&self) -> NodeId {
        self.id
    }

    fn send(&self, to: NodeId, env: Envelope) -> Result<()> {
        let conn = self.connection(to)?;
        let frame = env.encode();
        let mut guard = conn.lock();
        let res = guard
            .write_all(&(frame.len() as u32).to_le_bytes())
            .and_then(|_| guard.write_all(&frame));
        if res.is_err() {
            // Connection broke: forget it so the next send redials.
            drop(guard);
            self.conns.lock().remove(&to);
            return Err(KeraError::Disconnected(to));
        }
        Ok(())
    }

    fn recv(&self, timeout: Duration) -> Result<Option<Envelope>> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(KeraError::Disconnected(self.id));
        }
        match self.inbox_rx.recv_timeout(timeout) {
            Ok(env) => Ok(Some(env)),
            Err(channel::RecvTimeoutError::Timeout) => Ok(None),
            Err(channel::RecvTimeoutError::Disconnected) => Err(KeraError::Disconnected(self.id)),
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.dir.addrs.write().remove(&self.id);
        // Wake the accept loop so it observes the flag and exits.
        let _ = TcpStream::connect(self.addr);
        self.conns.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeRuntime, NullService, RequestContext, Service};
    use bytes::Bytes;
    use kera_wire::frames::OpCode;

    #[test]
    fn tcp_roundtrip() {
        let net = TcpNetwork::new();
        let a = net.register(NodeId(1)).unwrap();
        let b = net.register(NodeId(2)).unwrap();
        a.send(NodeId(2), Envelope::request(OpCode::Ping, 5, NodeId(1), Bytes::from_static(b"yo")))
            .unwrap();
        let got = b.recv(Duration::from_secs(2)).unwrap().unwrap();
        assert_eq!(got.request_id, 5);
        assert_eq!(&got.payload[..], b"yo");
    }

    #[test]
    fn tcp_large_payload() {
        let net = TcpNetwork::new();
        let a = net.register(NodeId(1)).unwrap();
        let b = net.register(NodeId(2)).unwrap();
        let big = Bytes::from(vec![0xabu8; 4 * 1024 * 1024]);
        a.send(NodeId(2), Envelope::request(OpCode::Produce, 1, NodeId(1), big.clone())).unwrap();
        let got = b.recv(Duration::from_secs(5)).unwrap().unwrap();
        assert_eq!(got.payload.len(), big.len());
        assert_eq!(got.payload, big);
    }

    #[test]
    fn tcp_send_to_unknown_fails() {
        let net = TcpNetwork::new();
        let a = net.register(NodeId(1)).unwrap();
        let err = a
            .send(NodeId(9), Envelope::request(OpCode::Ping, 1, NodeId(1), Bytes::new()))
            .unwrap_err();
        assert!(matches!(err, KeraError::Disconnected(NodeId(9))));
    }

    struct Echo;
    impl Service for Echo {
        fn handle(&self, _ctx: &RequestContext, payload: Bytes) -> kera_common::Result<Bytes> {
            Ok(payload)
        }
    }

    #[test]
    fn node_runtime_over_tcp() {
        let net = TcpNetwork::new();
        let server = NodeRuntime::start(
            Arc::new(net.register(NodeId(1)).unwrap()),
            Arc::new(Echo),
            2,
        );
        let client = NodeRuntime::start(
            Arc::new(net.register(NodeId(2)).unwrap()),
            Arc::new(NullService),
            1,
        );
        let got = client
            .client()
            .call(NodeId(1), OpCode::Ping, Bytes::from_static(b"tcp!"), Duration::from_secs(2))
            .unwrap();
        assert_eq!(&got[..], b"tcp!");
        drop(server);
        drop(client);
    }

    #[test]
    fn many_frames_stay_ordered() {
        let net = TcpNetwork::new();
        let a = net.register(NodeId(1)).unwrap();
        let b = net.register(NodeId(2)).unwrap();
        for i in 0..500u64 {
            a.send(NodeId(2), Envelope::request(OpCode::Ping, i, NodeId(1), Bytes::new()))
                .unwrap();
        }
        for i in 0..500u64 {
            let got = b.recv(Duration::from_secs(2)).unwrap().unwrap();
            assert_eq!(got.request_id, i);
        }
    }
}
