//! TCP transport: the same [`Transport`] interface over real sockets.
//!
//! The paper's producers issue "one synchronous TCP request per broker,
//! multiple parallel requests" — this transport lets the same cluster code
//! run over loopback (or a LAN) instead of in-memory channels, at the cost
//! of kernel socket overhead. Frames are a `u32` little-endian length
//! prefix followed by the serialized [`Envelope`].
//!
//! A [`TcpNetwork`] is a directory mapping [`NodeId`]s to socket
//! addresses. Each registered node binds an ephemeral listener; outbound
//! connections are created lazily, one per (source, destination) pair, and
//! writes are serialized per destination.
//!
//! The length prefix is untrusted input: frames larger than the network's
//! `max_frame_bytes` cause the receiver to drop the connection *before*
//! allocating a buffer, so a corrupt or hostile prefix cannot trigger a
//! multi-gigabyte allocation.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::BytesMut;
use crossbeam::channel::{self, Receiver, Sender};
use kera_common::config::DEFAULT_MAX_FRAME_BYTES;
use kera_common::copymode::copy_data_plane;
use kera_common::ids::NodeId;
use kera_common::{KeraError, Result};
use kera_wire::frames::Envelope;
use parking_lot::{Mutex, RwLock};

use crate::transport::Transport;

struct Directory {
    addrs: RwLock<HashMap<NodeId, SocketAddr>>,
}

impl Default for Directory {
    fn default() -> Self {
        Directory { addrs: RwLock::named("net.addrs", HashMap::new()) }
    }
}

/// A directory of TCP nodes.
#[derive(Clone)]
pub struct TcpNetwork {
    dir: Arc<Directory>,
    max_frame_bytes: usize,
}

impl Default for TcpNetwork {
    fn default() -> Self {
        Self { dir: Arc::default(), max_frame_bytes: DEFAULT_MAX_FRAME_BYTES }
    }
}

impl TcpNetwork {
    pub fn new() -> Self {
        Self::default()
    }

    /// A network whose receivers reject frames larger than
    /// `max_frame_bytes` (length prefix included payload) by dropping
    /// the connection.
    pub fn with_max_frame(max_frame_bytes: usize) -> Self {
        Self { dir: Arc::default(), max_frame_bytes }
    }

    /// Binds a listener for `id` and returns its transport.
    pub fn register(&self, id: NodeId) -> Result<TcpTransport> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        {
            let mut addrs = self.dir.addrs.write();
            if addrs.contains_key(&id) {
                return Err(KeraError::InvalidConfig(format!("node {id} registered twice")));
            }
            addrs.insert(id, addr);
        }
        let (inbox_tx, inbox_rx) = channel::unbounded();
        let closed = Arc::new(AtomicBool::new(false));
        let accepted: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));

        {
            let inbox_tx = inbox_tx.clone();
            let closed = Arc::clone(&closed);
            let accepted = Arc::clone(&accepted);
            let max_frame = self.max_frame_bytes;
            let spawned = std::thread::Builder::new()
                .name(format!("tcp-accept-{}", id.raw()))
                .spawn(move || accept_loop(listener, inbox_tx, closed, accepted, max_frame));
            if let Err(e) = spawned {
                // No accept loop means no reachable node: undo the
                // directory entry so a retry can rebind, and report.
                self.dir.addrs.write().remove(&id);
                return Err(e.into());
            }
        }

        Ok(TcpTransport {
            id,
            dir: Arc::clone(&self.dir),
            inbox_rx,
            conns: Mutex::named("transport.conns", HashMap::new()),
            addr,
            closed,
            accepted,
            max_frame_bytes: self.max_frame_bytes,
        })
    }

    /// Address a node listens on (useful for cross-process setups).
    pub fn addr_of(&self, id: NodeId) -> Option<SocketAddr> {
        self.dir.addrs.read().get(&id).copied()
    }

    /// Seeds the directory with the address of a node listening in
    /// another process (the cross-process half of [`TcpNetwork::addr_of`]).
    /// Locally registered nodes keep their entries: seeding an id that is
    /// already present is rejected rather than silently redirected.
    pub fn add_peer(&self, id: NodeId, addr: SocketAddr) -> Result<()> {
        let mut addrs = self.dir.addrs.write();
        if addrs.contains_key(&id) {
            return Err(KeraError::InvalidConfig(format!("node {id} already registered")));
        }
        addrs.insert(id, addr);
        Ok(())
    }
}

fn accept_loop(
    listener: TcpListener,
    inbox: Sender<Envelope>,
    closed: Arc<AtomicBool>,
    accepted: Arc<Mutex<Vec<TcpStream>>>,
    max_frame: usize,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if closed.load(Ordering::SeqCst) {
                    return;
                }
                // Keep a handle so close() can shut the stream down and
                // unblock the reader's read_exact.
                if let Ok(handle) = stream.try_clone() {
                    accepted.lock().push(handle);
                }
                let inbox = inbox.clone();
                let closed = Arc::clone(&closed);
                // A failed spawn (thread exhaustion) drops `stream`,
                // closing the connection — the peer redials later. The
                // accept loop itself must survive.
                let _ = std::thread::Builder::new()
                    .name("tcp-reader".into())
                    .spawn(move || reader_loop(stream, inbox, closed, max_frame));
            }
            Err(_) => {
                // Transient accept failures (EMFILE, ECONNABORTED, ...)
                // must not kill the listener; only an explicit close ends
                // the loop.
                if closed.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

fn reader_loop(
    mut stream: TcpStream,
    inbox: Sender<Envelope>,
    closed: Arc<AtomicBool>,
    max_frame: usize,
) {
    let mut len_buf = [0u8; 4];
    // Copy mode reuses one scratch buffer and copies every payload out
    // (the seed's behavior, kept for the bench trajectory); zero-copy
    // mode reads each frame into its own allocation that the decoded
    // envelope then slices, so the payload is never copied again.
    let mut scratch = Vec::new();
    loop {
        if closed.load(Ordering::SeqCst) {
            return;
        }
        if stream.read_exact(&mut len_buf).is_err() {
            return; // peer closed (or close() shut us down)
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > max_frame {
            // Untrusted prefix: drop the connection without allocating.
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        let decoded = if copy_data_plane() {
            scratch.resize(len, 0);
            if stream.read_exact(&mut scratch).is_err() {
                return;
            }
            Envelope::decode(&scratch)
        } else {
            let mut body = BytesMut::with_capacity(len);
            body.resize(len, 0);
            if stream.read_exact(&mut body).is_err() {
                return;
            }
            Envelope::decode_bytes(&body.freeze())
        };
        match decoded {
            Ok(env) => {
                if inbox.send(env).is_err() {
                    return;
                }
            }
            Err(_) => return, // corrupt stream: drop the connection
        }
    }
}

/// One node's endpoint on a [`TcpNetwork`].
pub struct TcpTransport {
    id: NodeId,
    dir: Arc<Directory>,
    inbox_rx: Receiver<Envelope>,
    /// One outbound connection per destination; writes serialized per
    /// destination so frames never interleave.
    conns: Mutex<HashMap<NodeId, Arc<Mutex<TcpStream>>>>,
    addr: SocketAddr,
    closed: Arc<AtomicBool>,
    /// Clones of accepted (inbound) streams, kept so close() can shut
    /// them down and unblock their reader threads.
    accepted: Arc<Mutex<Vec<TcpStream>>>,
    max_frame_bytes: usize,
}

impl TcpTransport {
    fn connection(&self, to: NodeId) -> Result<Arc<Mutex<TcpStream>>> {
        if let Some(c) = self.conns.lock().get(&to) {
            return Ok(Arc::clone(c));
        }
        let addr = self
            .dir
            .addrs
            .read()
            .get(&to)
            .copied()
            .ok_or(KeraError::Disconnected(to))?;
        // Dial outside the lock (connect can block), then insert with a
        // second check: a concurrent dial to the same peer may have won,
        // and replacing its entry would leak a connection that concurrent
        // senders still hold — and writes to the two sockets would
        // interleave frames.
        let stream = TcpStream::connect(addr).map_err(|_| KeraError::Disconnected(to))?;
        stream.set_nodelay(true).ok();
        match self.conns.lock().entry(to) {
            Entry::Occupied(e) => Ok(Arc::clone(e.get())), // lost the race; ours drops
            Entry::Vacant(v) => {
                let conn = Arc::new(Mutex::named("transport.conn", stream));
                v.insert(Arc::clone(&conn));
                Ok(conn)
            }
        }
    }
}

impl Transport for TcpTransport {
    fn local(&self) -> NodeId {
        self.id
    }

    fn send(&self, to: NodeId, env: Envelope) -> Result<()> {
        let frame_len = Envelope::HEADER_LEN + env.payload.len();
        if frame_len > self.max_frame_bytes {
            // The receiver would drop the connection; fail loudly instead.
            return Err(KeraError::Protocol(format!(
                "frame of {frame_len} bytes exceeds max_frame_bytes {}",
                self.max_frame_bytes
            )));
        }
        let prefix = kera_wire::codec::checked_len("tcp frame", frame_len)?;
        let conn = self.connection(to)?;
        let mut guard = conn.lock();
        let res = if copy_data_plane() {
            // lint: allow(no-hot-copy) — the seed's contiguous-frame
            // copy, kept reachable behind KERA_COPY_DATA_PLANE=1 for
            // the before/after bench trajectory.
            let frame = env.encode();
            guard
                .write_all(&prefix.to_le_bytes())
                .and_then(|_| guard.write_all(&frame))
        } else {
            // Prefix and header share one small stack buffer; the
            // payload is written straight from its shared allocation.
            let mut head = [0u8; 4 + Envelope::HEADER_LEN];
            head[..4].copy_from_slice(&prefix.to_le_bytes());
            head[4..].copy_from_slice(&env.encode_header());
            guard.write_all(&head).and_then(|_| guard.write_all(&env.payload))
        };
        if res.is_err() {
            // Connection broke: forget it so the next send redials.
            drop(guard);
            self.conns.lock().remove(&to);
            return Err(KeraError::Disconnected(to));
        }
        Ok(())
    }

    fn recv(&self, timeout: Duration) -> Result<Option<Envelope>> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(KeraError::Disconnected(self.id));
        }
        match self.inbox_rx.recv_timeout(timeout) {
            Ok(env) => Ok(Some(env)),
            Err(channel::RecvTimeoutError::Timeout) => Ok(None),
            Err(channel::RecvTimeoutError::Disconnected) => Err(KeraError::Disconnected(self.id)),
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.dir.addrs.write().remove(&self.id);
        // Wake the accept loop so it observes the flag and exits.
        let _ = TcpStream::connect(self.addr);
        // Unblock reader threads stuck in read_exact on inbound streams.
        for stream in self.accepted.lock().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // Shut outbound connections so the peers' readers see EOF too.
        for (_, conn) in self.conns.lock().drain() {
            let _ = conn.lock().shutdown(Shutdown::Both);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeRuntime, NullService, RequestContext, Service};
    use bytes::Bytes;
    use kera_wire::frames::OpCode;

    #[test]
    fn tcp_roundtrip() {
        let net = TcpNetwork::new();
        let a = net.register(NodeId(1)).unwrap();
        let b = net.register(NodeId(2)).unwrap();
        a.send(NodeId(2), Envelope::request(OpCode::Ping, 5, NodeId(1), Bytes::from_static(b"yo")))
            .unwrap();
        let got = b.recv(Duration::from_secs(2)).unwrap().unwrap();
        assert_eq!(got.request_id, 5);
        assert_eq!(&got.payload[..], b"yo");
    }

    #[test]
    fn tcp_large_payload() {
        let net = TcpNetwork::new();
        let a = net.register(NodeId(1)).unwrap();
        let b = net.register(NodeId(2)).unwrap();
        let big = Bytes::from(vec![0xabu8; 4 * 1024 * 1024]);
        a.send(NodeId(2), Envelope::request(OpCode::Produce, 1, NodeId(1), big.clone())).unwrap();
        let got = b.recv(Duration::from_secs(5)).unwrap().unwrap();
        assert_eq!(got.payload.len(), big.len());
        assert_eq!(got.payload, big);
    }

    #[test]
    fn tcp_send_to_unknown_fails() {
        let net = TcpNetwork::new();
        let a = net.register(NodeId(1)).unwrap();
        let err = a
            .send(NodeId(9), Envelope::request(OpCode::Ping, 1, NodeId(1), Bytes::new()))
            .unwrap_err();
        assert!(matches!(err, KeraError::Disconnected(NodeId(9))));
    }

    struct Echo;
    impl Service for Echo {
        fn handle(&self, _ctx: &RequestContext, payload: Bytes) -> kera_common::Result<Bytes> {
            Ok(payload)
        }
    }

    #[test]
    fn node_runtime_over_tcp() {
        let net = TcpNetwork::new();
        let server = NodeRuntime::start(
            Arc::new(net.register(NodeId(1)).unwrap()),
            Arc::new(Echo),
            2,
        );
        let client = NodeRuntime::start(
            Arc::new(net.register(NodeId(2)).unwrap()),
            Arc::new(NullService),
            1,
        );
        let got = client
            .client()
            .call(NodeId(1), OpCode::Ping, Bytes::from_static(b"tcp!"), Duration::from_secs(2))
            .unwrap();
        assert_eq!(&got[..], b"tcp!");
        drop(server);
        drop(client);
    }

    #[test]
    fn many_frames_stay_ordered() {
        let net = TcpNetwork::new();
        let a = net.register(NodeId(1)).unwrap();
        let b = net.register(NodeId(2)).unwrap();
        for i in 0..500u64 {
            a.send(NodeId(2), Envelope::request(OpCode::Ping, i, NodeId(1), Bytes::new()))
                .unwrap();
        }
        for i in 0..500u64 {
            let got = b.recv(Duration::from_secs(2)).unwrap().unwrap();
            assert_eq!(got.request_id, i);
        }
    }

    #[test]
    fn oversized_length_prefix_drops_connection_without_allocating() {
        let net = TcpNetwork::with_max_frame(4096);
        let b = net.register(NodeId(2)).unwrap();
        let addr = net.addr_of(NodeId(2)).unwrap();

        // Hand-rolled hostile peer: a ~4 GiB length prefix. A receiver
        // that trusted it would try to allocate the full amount.
        let mut evil = TcpStream::connect(addr).unwrap();
        evil.write_all(&u32::MAX.to_le_bytes()).unwrap();
        evil.write_all(b"junk").unwrap();

        // The reader must drop the connection: our side sees EOF.
        evil.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut probe = [0u8; 1];
        match evil.read(&mut probe) {
            Ok(0) => {}                       // clean EOF: connection dropped
            Ok(n) => panic!("unexpected {n} bytes from receiver"),
            Err(e) => panic!("expected EOF, got {e}"),
        }
        // Nothing was delivered, and the transport still works for
        // well-formed peers afterwards.
        assert!(b.recv(Duration::from_millis(50)).unwrap().is_none());
        let a = net.register(NodeId(1)).unwrap();
        a.send(NodeId(2), Envelope::request(OpCode::Ping, 1, NodeId(1), Bytes::from_static(b"ok")))
            .unwrap();
        assert_eq!(&b.recv(Duration::from_secs(2)).unwrap().unwrap().payload[..], b"ok");
    }

    #[test]
    fn oversized_send_is_rejected_locally() {
        let net = TcpNetwork::with_max_frame(1024);
        let a = net.register(NodeId(1)).unwrap();
        let _b = net.register(NodeId(2)).unwrap();
        let big = Bytes::from(vec![0u8; 2048]);
        let err = a
            .send(NodeId(2), Envelope::request(OpCode::Produce, 1, NodeId(1), big))
            .unwrap_err();
        assert!(matches!(err, KeraError::Protocol(_)));
    }

    #[test]
    fn concurrent_first_sends_share_one_connection() {
        let net = TcpNetwork::new();
        let a = Arc::new(net.register(NodeId(1)).unwrap());
        let b = net.register(NodeId(2)).unwrap();
        // Race many threads through the first dial to the same peer; the
        // double-checked insert must leave exactly one connection and no
        // interleaved frames.
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        let body = Bytes::from(vec![0u8; 256]);
                        a.send(
                            NodeId(2),
                            Envelope::request(OpCode::Ping, t * 1000 + i, NodeId(1), body),
                        )
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..400 {
            let env = b.recv(Duration::from_secs(2)).unwrap().expect("frame lost");
            assert!(seen.insert(env.request_id), "duplicate {}", env.request_id);
            assert_eq!(env.payload.len(), 256);
        }
        assert_eq!(a.conns.lock().len(), 1, "exactly one connection per peer");
    }

    #[test]
    fn add_peer_seeds_cross_network_dialing() {
        // Two directories standing in for two processes: the server
        // registers on net_a; net_b only learns of it via add_peer.
        let net_a = TcpNetwork::new();
        let server = net_a.register(NodeId(7)).unwrap();
        let addr = net_a.addr_of(NodeId(7)).unwrap();

        let net_b = TcpNetwork::new();
        net_b.add_peer(NodeId(7), addr).unwrap();
        let client = net_b.register(NodeId(2001)).unwrap();
        client
            .send(NodeId(7), Envelope::request(OpCode::Ping, 9, NodeId(2001), Bytes::from_static(b"x")))
            .unwrap();
        let got = server.recv(Duration::from_secs(2)).unwrap().unwrap();
        assert_eq!(got.request_id, 9);

        // A locally registered id cannot be redirected by a seed.
        let err = net_a.add_peer(NodeId(7), addr).unwrap_err();
        assert!(matches!(err, KeraError::InvalidConfig(_)));
    }

    #[test]
    fn close_unblocks_inbound_readers() {
        let net = TcpNetwork::new();
        let a = net.register(NodeId(1)).unwrap();
        let b = net.register(NodeId(2)).unwrap();
        // Establish an inbound connection to b whose reader then blocks
        // in read_exact waiting for the next frame.
        a.send(NodeId(2), Envelope::request(OpCode::Ping, 1, NodeId(1), Bytes::new())).unwrap();
        assert!(b.recv(Duration::from_secs(2)).unwrap().is_some());

        let reader_count_before = thread_count_named("tcp-reader");
        assert!(reader_count_before >= 1);
        b.close();
        // The reader must observe the shutdown and exit promptly rather
        // than staying parked in read_exact forever.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while thread_count_named("tcp-reader") >= reader_count_before {
            if std::time::Instant::now() > deadline {
                panic!("reader threads still blocked after close()");
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Counts live threads whose name starts with `prefix` (Linux proc).
    fn thread_count_named(prefix: &str) -> usize {
        let mut n = 0;
        if let Ok(entries) = std::fs::read_dir("/proc/self/task") {
            for entry in entries.flatten() {
                let comm = entry.path().join("comm");
                if let Ok(name) = std::fs::read_to_string(comm) {
                    if name.trim_end().starts_with(prefix) {
                        n += 1;
                    }
                }
            }
        }
        n
    }
}
