//! A transport-polymorphic network handle, so cluster assembly can run
//! over in-memory channels (fast, fault-injectable) or real TCP sockets
//! (the paper's clients use "one synchronous TCP request per broker").

use std::sync::Arc;

use kera_common::config::NetworkModel;
use kera_common::ids::NodeId;
use kera_common::Result;

use crate::inmem::InMemNetwork;
use crate::tcp::TcpNetwork;
use crate::transport::Transport;

/// Which fabric a cluster runs on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process channels: fastest, supports fault injection and the
    /// network cost model.
    #[default]
    InMemory,
    /// Loopback TCP sockets: every RPC crosses the kernel.
    Tcp,
}

/// Either fabric, behind one registration API.
#[derive(Clone)]
pub enum AnyNetwork {
    InMem(InMemNetwork),
    Tcp(TcpNetwork),
}

impl AnyNetwork {
    pub fn new(kind: TransportKind, model: NetworkModel) -> AnyNetwork {
        Self::with_max_frame(kind, model, kera_common::config::DEFAULT_MAX_FRAME_BYTES)
    }

    /// Like [`AnyNetwork::new`] with an explicit frame-size cap for
    /// stream transports (ignored by the in-memory fabric, which never
    /// parses untrusted length prefixes).
    pub fn with_max_frame(
        kind: TransportKind,
        model: NetworkModel,
        max_frame_bytes: usize,
    ) -> AnyNetwork {
        match kind {
            TransportKind::InMemory => AnyNetwork::InMem(InMemNetwork::new(model)),
            TransportKind::Tcp => AnyNetwork::Tcp(TcpNetwork::with_max_frame(max_frame_bytes)),
        }
    }

    /// Registers a node and returns its transport endpoint.
    pub fn register(&self, id: NodeId) -> Result<Arc<dyn Transport>> {
        Ok(match self {
            AnyNetwork::InMem(net) => Arc::new(net.register(id)),
            AnyNetwork::Tcp(net) => Arc::new(net.register(id)?),
        })
    }

    /// Crashes a node (fault injection). Returns `false` on TCP, which
    /// does not support surgical crashes — use the in-memory fabric for
    /// failure experiments.
    pub fn crash(&self, id: NodeId) -> bool {
        match self {
            AnyNetwork::InMem(net) => {
                net.crash(id);
                true
            }
            AnyNetwork::Tcp(_) => false,
        }
    }

    /// The in-memory fabric, if that is what this is (tests use it for
    /// fault injection assertions).
    pub fn as_inmem(&self) -> Option<&InMemNetwork> {
        match self {
            AnyNetwork::InMem(net) => Some(net),
            AnyNetwork::Tcp(_) => None,
        }
    }

    /// The TCP fabric, if that is what this is (`kera-inspect` uses it
    /// to print socket addresses and seed cross-process peers).
    pub fn as_tcp(&self) -> Option<&TcpNetwork> {
        match self {
            AnyNetwork::InMem(_) => None,
            AnyNetwork::Tcp(net) => Some(net),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeRuntime, NullService, RequestContext, Service};
    use bytes::Bytes;
    use kera_wire::frames::OpCode;
    use std::time::Duration;

    struct Echo;
    impl Service for Echo {
        fn handle(&self, _ctx: &RequestContext, payload: Bytes) -> Result<Bytes> {
            Ok(payload)
        }
    }

    #[test]
    fn both_fabrics_roundtrip() {
        for kind in [TransportKind::InMemory, TransportKind::Tcp] {
            let net = AnyNetwork::new(kind, NetworkModel::default());
            let server =
                NodeRuntime::start(net.register(NodeId(1)).unwrap(), Arc::new(Echo), 1);
            let client =
                NodeRuntime::start(net.register(NodeId(2)).unwrap(), Arc::new(NullService), 1);
            let got = client
                .client()
                .call(NodeId(1), OpCode::Ping, Bytes::from_static(b"hi"), Duration::from_secs(2))
                .unwrap();
            assert_eq!(&got[..], b"hi");
            drop(server);
            drop(client);
        }
    }

    #[test]
    fn crash_support_by_kind() {
        let inmem = AnyNetwork::new(TransportKind::InMemory, NetworkModel::default());
        let _t = inmem.register(NodeId(1)).unwrap();
        assert!(inmem.crash(NodeId(1)));
        assert!(inmem.as_inmem().is_some());

        let tcp = AnyNetwork::new(TransportKind::Tcp, NetworkModel::default());
        let _t = tcp.register(NodeId(1)).unwrap();
        assert!(!tcp.crash(NodeId(1)));
        assert!(tcp.as_inmem().is_none());
    }
}
