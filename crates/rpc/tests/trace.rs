//! Trace propagation across the lossy-network machinery: a dropped and
//! retried call must stay one logical trace, and a duplicated request
//! must surface the server-side dedup hit as a span event linked to the
//! caller's span.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use kera_common::config::{FaultProfile, NetworkModel, RetryPolicy};
use kera_common::ids::NodeId;
use kera_common::Result;
use kera_obs::{NodeObs, Stage};
use kera_rpc::{
    FaultInjector, FaultPlan, InMemNetwork, NodeRuntime, NullService, RequestContext, Service,
};
use kera_wire::frames::OpCode;

const SERVER: NodeId = NodeId(1);
const CLIENT: NodeId = NodeId(2);

struct EchoService;

impl Service for EchoService {
    fn handle(&self, _ctx: &RequestContext, payload: Bytes) -> Result<Bytes> {
        Ok(payload)
    }
}

/// One traced server + one traced client whose sends pass through a
/// fault injector driven by `plan`.
fn traced_pair(
    plan: &FaultPlan,
    retry: RetryPolicy,
) -> (InMemNetwork, NodeRuntime, NodeRuntime, Arc<NodeObs>, Arc<NodeObs>) {
    let net = InMemNetwork::new(NetworkModel::default());
    let server_obs = NodeObs::new(SERVER.raw(), true);
    let client_obs = NodeObs::new(CLIENT.raw(), true);
    let server = NodeRuntime::start_with_obs(
        Arc::new(net.register(SERVER)),
        Arc::new(EchoService),
        2,
        retry,
        Arc::clone(&server_obs),
    );
    let client = NodeRuntime::start_with_obs(
        Arc::new(FaultInjector::new(Arc::new(net.register(CLIENT)), plan.clone())),
        Arc::new(NullService),
        1,
        retry,
        Arc::clone(&client_obs),
    );
    (net, server, client, server_obs, client_obs)
}

/// A call whose first attempts are black-holed must retry under the
/// *same* trace: one RpcCall span, RpcRetry events parented to it, and
/// the eventual server-side RpcServe span in the same trace.
#[test]
fn retried_call_stays_one_trace() {
    let plan = FaultPlan::new(FaultProfile::default());
    let retry = RetryPolicy {
        max_attempts: 8,
        attempt_timeout: Duration::from_millis(40),
        initial_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(10),
    };
    let (_net, server, client, server_obs, client_obs) = traced_pair(&plan, retry);

    // Black-hole client -> server; heal after the first attempt has
    // certainly been swallowed so a retry can get through.
    plan.partition_one_way(CLIENT, SERVER);
    let healer = {
        let plan = plan.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            plan.heal_all();
        })
    };
    let got = client
        .client()
        .call(SERVER, OpCode::Ping, Bytes::from_static(b"hi"), Duration::from_secs(10))
        .expect("call succeeds after healing");
    assert_eq!(&got[..], b"hi");
    healer.join().unwrap();
    assert!(plan.blocked() >= 1, "partition swallowed at least one attempt");

    let client_events = client_obs.recorder().read();
    let calls: Vec<_> =
        client_events.iter().filter(|e| e.stage() == Some(Stage::RpcCall)).collect();
    assert_eq!(calls.len(), 1, "one logical call = one RpcCall span: {client_events:?}");
    let call = calls[0];
    assert!(call.aux >= 2, "span aux records the attempt count, got {}", call.aux);

    let retries: Vec<_> =
        client_events.iter().filter(|e| e.stage() == Some(Stage::RpcRetry)).collect();
    assert!(!retries.is_empty(), "retries were recorded: {client_events:?}");
    for r in &retries {
        assert_eq!(r.trace_id, call.trace_id, "retry shares the call's trace");
        assert_eq!(r.parent_span_id, call.span_id, "retry is a child of the call span");
    }

    // The served request carries the same trace over the wire.
    let server_events = server_obs.recorder().read();
    let serves: Vec<_> =
        server_events.iter().filter(|e| e.stage() == Some(Stage::RpcServe)).collect();
    assert_eq!(serves.len(), 1, "{server_events:?}");
    assert_eq!(serves[0].trace_id, call.trace_id);
    assert_eq!(serves[0].parent_span_id, call.span_id);

    server.shutdown();
    client.shutdown();
}

/// Every message delivered twice: the server must execute the request
/// once, answer the duplicate from the dedup cache, and make the hit
/// visible as an RpcDedupHit event inside the caller's trace.
#[test]
fn duplicate_delivery_surfaces_dedup_hit_in_trace() {
    let plan = FaultPlan::new(FaultProfile { duplicate_rate: 1.0, ..FaultProfile::default() });
    let (_net, server, client, server_obs, client_obs) =
        traced_pair(&plan, RetryPolicy::default());

    let got = client
        .client()
        .call(SERVER, OpCode::Ping, Bytes::from_static(b"once"), Duration::from_secs(5))
        .unwrap();
    assert_eq!(&got[..], b"once");
    assert!(plan.duplicated() >= 1);
    // The duplicate races the original; give the server a moment to
    // finish serving both copies before reading the ring.
    std::thread::sleep(Duration::from_millis(100));

    let call = client_obs
        .recorder()
        .read()
        .into_iter()
        .find(|e| e.stage() == Some(Stage::RpcCall))
        .expect("client call span recorded");

    let server_events = server_obs.recorder().read();
    let serves =
        server_events.iter().filter(|e| e.stage() == Some(Stage::RpcServe)).count();
    assert_eq!(serves, 1, "duplicate must not be re-executed: {server_events:?}");
    let dedup: Vec<_> =
        server_events.iter().filter(|e| e.stage() == Some(Stage::RpcDedupHit)).collect();
    assert!(!dedup.is_empty(), "dedup hit recorded: {server_events:?}");
    for d in &dedup {
        assert_eq!(d.trace_id, call.trace_id, "dedup event lives in the caller's trace");
        assert_eq!(d.parent_span_id, call.span_id);
    }

    server.shutdown();
    client.shutdown();
}
