//! Harness smoke test: a miniature figure runs end-to-end through
//! `run_figure` and lands in a TSV.

use std::time::Duration;

use kera_harness::figures::{quick, Figure, Point};
use kera_harness::report::{run_figure, write_tsv};
use kera_harness::{ExperimentConfig, SystemKind};

#[test]
fn mini_figure_runs_and_writes_tsv() {
    let mk = |system: SystemKind| ExperimentConfig {
        system,
        brokers: 2,
        worker_threads: 2,
        producers: 2,
        streams: 4,
        chunk_size: 1024,
        replication_factor: 2,
        warmup: Duration::from_millis(100),
        measure: Duration::from_millis(300),
        io_cost_ns: 0, // keep the smoke test fast and host-independent
        ..ExperimentConfig::default()
    };
    let fig = Figure {
        id: "fig_smoke",
        title: "smoke",
        points: vec![
            Point { series: "KerA".into(), x: "4".into(), cfg: mk(SystemKind::Kera) },
            Point { series: "Kafka".into(), x: "4".into(), cfg: mk(SystemKind::Kafka) },
        ],
    };
    let rows = run_figure(&fig).unwrap();
    assert_eq!(rows.len(), 2);
    for r in &rows {
        assert!(r.m.produce_rate > 0.0, "{} measured nothing", r.series);
        assert_eq!(r.m.failed_requests, 0);
    }
    let dir = std::env::temp_dir().join(format!("kera-smoke-{}", std::process::id()));
    let path = dir.join("fig_smoke.tsv");
    write_tsv(&path, &rows).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(text.lines().count(), 3); // header + 2 rows
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quick_scaling_preserves_series_coverage() {
    let fig = quick(kera_harness::figures::fig08(), 6, Duration::from_millis(100));
    // Subsetting must keep points from both systems.
    let has_kafka = fig.points.iter().any(|p| p.series.starts_with("Kafka"));
    let has_kera = fig.points.iter().any(|p| p.series.starts_with("KerA"));
    assert!(has_kafka && has_kera, "subset lost a system: {:?}",
        fig.points.iter().map(|p| p.series.clone()).collect::<Vec<_>>());
}
