//! Result collection and table/TSV output.

use std::io::Write;
use std::path::Path;

use kera_common::Result;

use crate::experiment::{run_experiment, Measurement};
use crate::figures::Figure;

/// One measured figure point.
#[derive(Clone, Debug)]
pub struct Row {
    pub figure: String,
    pub series: String,
    pub x: String,
    pub m: Measurement,
}

/// Runs every point of `fig`, printing one line per point as it lands
/// (throughput in million records/s, like the paper's y-axes).
pub fn run_figure(fig: &Figure) -> Result<Vec<Row>> {
    println!("== {}: {} ({} points) ==", fig.id, fig.title, fig.points.len());
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>10} {:>12}",
        "series", "x", "Mrec/s", "MB/s", "lat(us)", "consolid."
    );
    let mut rows = Vec::with_capacity(fig.points.len());
    for p in &fig.points {
        let m = run_experiment(&p.cfg)?;
        println!(
            "{:<18} {:>12} {:>12.3} {:>12.1} {:>10.0} {:>12.1}",
            p.series,
            p.x,
            m.mrecords_per_sec(),
            m.produce_bytes_rate / 1e6,
            m.mean_request_latency_us,
            m.consolidation(),
        );
        if m.failed_requests > 0 {
            eprintln!("  warning: {} failed produce requests", m.failed_requests);
        }
        if !m.stages.is_empty() {
            println!("  {}", format_stage_breakdown(&m.stages));
        }
        if !m.tenant_rates.is_empty() {
            println!("  {}", format_tenant_rates(&m.tenant_rates));
        }
        rows.push(Row { figure: fig.id.to_string(), series: p.series.clone(), x: p.x.clone(), m });
    }
    Ok(rows)
}

/// One-line per-stage latency breakdown, pipeline order:
/// `stages: append n=42 mean=12us p99=80us | replicate ...`.
fn format_stage_breakdown(stages: &[crate::experiment::StageSummary]) -> String {
    let parts: Vec<String> = stages
        .iter()
        .map(|s| {
            format!(
                "{} n={} mean={:.0}us p99={:.0}us",
                s.stage, s.count, s.mean_us, s.p99_us
            )
        })
        .collect();
    format!("stages: {}", parts.join(" | "))
}

/// Per-tenant acknowledged throughput (quota runs only):
/// `tenants: t0=1.20Mrec/s | t1=0.35Mrec/s`.
fn format_tenant_rates(rates: &[(u32, f64)]) -> String {
    let parts: Vec<String> =
        rates.iter().map(|(t, r)| format!("t{t}={:.2}Mrec/s", r / 1e6)).collect();
    format!("tenants: {}", parts.join(" | "))
}

/// Writes rows as TSV (one header line, then one row per point).
pub fn write_tsv(path: &Path, rows: &[Row]) -> Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "figure\tseries\tx\tmrecords_per_sec\tproduce_rate\tconsume_rate\tbytes_per_sec\tmean_latency_us\treplication_batches\treplication_chunks\tfailed_requests"
    )?;
    for r in rows {
        writeln!(
            f,
            "{}\t{}\t{}\t{:.4}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{}\t{}\t{}",
            r.figure,
            r.series,
            r.x,
            r.m.mrecords_per_sec(),
            r.m.produce_rate,
            r.m.consume_rate,
            r.m.produce_bytes_rate,
            r.m.mean_request_latency_us,
            r.m.replication_batches,
            r.m.replication_chunks,
            r.m.failed_requests,
        )?;
    }
    Ok(())
}

/// Writes every point's cluster metrics snapshot and stage breakdown as
/// one JSON array — the per-figure metrics dump under `results/`.
pub fn write_metrics_json(path: &Path, rows: &[Row]) -> Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "[")?;
    for (i, r) in rows.iter().enumerate() {
        let stages: Vec<String> = r
            .m
            .stages
            .iter()
            .map(|s| {
                format!(
                    "{{\"stage\":\"{}\",\"count\":{},\"mean_us\":{:.1},\"p50_us\":{:.1},\"p99_us\":{:.1}}}",
                    s.stage, s.count, s.mean_us, s.p50_us, s.p99_us
                )
            })
            .collect();
        let metrics = if r.m.metrics_json.is_empty() { "{}" } else { &r.m.metrics_json };
        writeln!(
            f,
            "  {{\"figure\":\"{}\",\"series\":\"{}\",\"x\":\"{}\",\"stages\":[{}],\"metrics\":{}}}{}",
            r.figure,
            r.series,
            r.x,
            stages.join(","),
            metrics,
            if i + 1 == rows.len() { "" } else { "," }
        )?;
    }
    writeln!(f, "]")?;
    Ok(())
}

/// Output directory for a figure run measured with the given window.
///
/// Only the canonical full window may write the committed reference
/// files under `results/` — every other window (bench smoke, quick
/// local iteration with `KERA_MEASURE_MS=200`, CI spot checks) lands in
/// `results/tmp/`, which is gitignored. Guards against the class of
/// incident where a short smoke run silently overwrote `fig08.tsv` and
/// the truncated numbers got committed as if they were a reference
/// measurement.
pub fn results_dir(warmup: std::time::Duration, measure: std::time::Duration) -> &'static Path {
    use crate::experiment::{FULL_MEASURE, FULL_WARMUP};
    if warmup == FULL_WARMUP && measure == FULL_MEASURE {
        Path::new("results")
    } else {
        Path::new("results/tmp")
    }
}

/// Standard entry point for the per-figure binaries: runs the figure and
/// stores `<dir>/<id>.tsv` plus `<dir>/<id>-metrics.json`, where `<dir>`
/// is chosen by [`results_dir`] from the run's measurement window.
pub fn figure_main(id: &str) {
    let fig = crate::figures::figure(id).unwrap_or_else(|| {
        eprintln!("unknown figure {id}");
        std::process::exit(2);
    });
    let window = crate::experiment::ExperimentConfig::default();
    let dir = results_dir(window.warmup, window.measure);
    if dir != Path::new("results") {
        println!(
            "measurement window {:?}/{:?} differs from the canonical full window — \
             writing to {} (reference results/ left untouched)",
            window.warmup,
            window.measure,
            dir.display()
        );
    }
    match run_figure(&fig) {
        Ok(rows) => {
            let path = dir.join(format!("{id}.tsv"));
            if let Err(e) = write_tsv(&path, &rows) {
                eprintln!("could not write {}: {e}", path.display());
            } else {
                println!("wrote {}", path.display());
            }
            let mpath = dir.join(format!("{id}-metrics.json"));
            if let Err(e) = write_metrics_json(&mpath, &rows) {
                eprintln!("could not write {}: {e}", mpath.display());
            } else {
                println!("wrote {}", mpath.display());
            }
        }
        Err(e) => {
            eprintln!("{id} failed: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Measurement;

    fn row() -> Row {
        Row {
            figure: "fig00".into(),
            series: "KerA R3".into(),
            x: "128".into(),
            m: Measurement {
                produce_rate: 1_500_000.0,
                consume_rate: 1_400_000.0,
                produce_bytes_rate: 150e6,
                mean_request_latency_us: 250.0,
                replication_batches: 10,
                replication_chunks: 100,
                failed_requests: 0,
                tenant_rates: Vec::new(),
                stages: vec![crate::experiment::StageSummary {
                    stage: "append",
                    count: 42,
                    mean_us: 12.5,
                    p50_us: 10.0,
                    p99_us: 80.0,
                }],
                metrics_json: "{\"node\":0}".into(),
            },
        }
    }

    #[test]
    fn tsv_roundtrip() {
        let dir = std::env::temp_dir().join(format!("kera-report-{}", std::process::id()));
        let path = dir.join("out.tsv");
        write_tsv(&path, &[row()]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        assert!(lines.next().unwrap().starts_with("figure\tseries"));
        let data = lines.next().unwrap();
        assert!(data.contains("KerA R3"));
        assert!(data.contains("1.5000"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_json_roundtrip() {
        let dir = std::env::temp_dir().join(format!("kera-metrics-{}", std::process::id()));
        let path = dir.join("fig00-metrics.json");
        write_metrics_json(&path, &[row()]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"stage\":\"append\""), "{text}");
        assert!(text.contains("\"metrics\":{\"node\":0}"), "{text}");
        assert!(text.trim_start().starts_with('['), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn smoke_windows_route_to_tmp() {
        use crate::experiment::{FULL_MEASURE, FULL_WARMUP};
        use std::time::Duration;
        // Only the exact canonical window writes the reference files.
        assert_eq!(results_dir(FULL_WARMUP, FULL_MEASURE), Path::new("results"));
        // Shorter, longer, or partially-overridden windows are smoke runs.
        assert_eq!(
            results_dir(Duration::from_millis(300), Duration::from_millis(1200)),
            Path::new("results/tmp")
        );
        assert_eq!(
            results_dir(FULL_WARMUP, Duration::from_millis(200)),
            Path::new("results/tmp")
        );
        assert_eq!(
            results_dir(Duration::from_secs(5), FULL_MEASURE),
            Path::new("results/tmp")
        );
    }

    #[test]
    fn consolidation_math() {
        let r = row();
        assert!((r.m.consolidation() - 10.0).abs() < 1e-9);
        assert!((r.m.mrecords_per_sec() - 1.5).abs() < 1e-9);
    }
}
