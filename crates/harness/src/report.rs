//! Result collection and table/TSV output.

use std::io::Write;
use std::path::Path;

use kera_common::Result;

use crate::experiment::{run_experiment, Measurement};
use crate::figures::Figure;

/// One measured figure point.
#[derive(Clone, Debug)]
pub struct Row {
    pub figure: String,
    pub series: String,
    pub x: String,
    pub m: Measurement,
}

/// Runs every point of `fig`, printing one line per point as it lands
/// (throughput in million records/s, like the paper's y-axes).
pub fn run_figure(fig: &Figure) -> Result<Vec<Row>> {
    println!("== {}: {} ({} points) ==", fig.id, fig.title, fig.points.len());
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>10} {:>12}",
        "series", "x", "Mrec/s", "MB/s", "lat(us)", "consolid."
    );
    let mut rows = Vec::with_capacity(fig.points.len());
    for p in &fig.points {
        let m = run_experiment(&p.cfg)?;
        println!(
            "{:<18} {:>12} {:>12.3} {:>12.1} {:>10.0} {:>12.1}",
            p.series,
            p.x,
            m.mrecords_per_sec(),
            m.produce_bytes_rate / 1e6,
            m.mean_request_latency_us,
            m.consolidation(),
        );
        if m.failed_requests > 0 {
            eprintln!("  warning: {} failed produce requests", m.failed_requests);
        }
        rows.push(Row { figure: fig.id.to_string(), series: p.series.clone(), x: p.x.clone(), m });
    }
    Ok(rows)
}

/// Writes rows as TSV (one header line, then one row per point).
pub fn write_tsv(path: &Path, rows: &[Row]) -> Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "figure\tseries\tx\tmrecords_per_sec\tproduce_rate\tconsume_rate\tbytes_per_sec\tmean_latency_us\treplication_batches\treplication_chunks\tfailed_requests"
    )?;
    for r in rows {
        writeln!(
            f,
            "{}\t{}\t{}\t{:.4}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{}\t{}\t{}",
            r.figure,
            r.series,
            r.x,
            r.m.mrecords_per_sec(),
            r.m.produce_rate,
            r.m.consume_rate,
            r.m.produce_bytes_rate,
            r.m.mean_request_latency_us,
            r.m.replication_batches,
            r.m.replication_chunks,
            r.m.failed_requests,
        )?;
    }
    Ok(())
}

/// Standard entry point for the per-figure binaries: runs the figure and
/// stores `results/<id>.tsv`.
pub fn figure_main(id: &str) {
    let fig = crate::figures::figure(id).unwrap_or_else(|| {
        eprintln!("unknown figure {id}");
        std::process::exit(2);
    });
    match run_figure(&fig) {
        Ok(rows) => {
            let path = std::path::PathBuf::from("results").join(format!("{id}.tsv"));
            if let Err(e) = write_tsv(&path, &rows) {
                eprintln!("could not write {}: {e}", path.display());
            } else {
                println!("wrote {}", path.display());
            }
        }
        Err(e) => {
            eprintln!("{id} failed: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Measurement;

    fn row() -> Row {
        Row {
            figure: "fig00".into(),
            series: "KerA R3".into(),
            x: "128".into(),
            m: Measurement {
                produce_rate: 1_500_000.0,
                consume_rate: 1_400_000.0,
                produce_bytes_rate: 150e6,
                mean_request_latency_us: 250.0,
                replication_batches: 10,
                replication_chunks: 100,
                failed_requests: 0,
            },
        }
    }

    #[test]
    fn tsv_roundtrip() {
        let dir = std::env::temp_dir().join(format!("kera-report-{}", std::process::id()));
        let path = dir.join("out.tsv");
        write_tsv(&path, &[row()]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        assert!(lines.next().unwrap().starts_with("figure\tseries"));
        let data = lines.next().unwrap();
        assert!(data.contains("KerA R3"));
        assert!(data.contains("1.5000"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn consolidation_math() {
        let r = row();
        assert!((r.m.consolidation() - 10.0).abs() < 1e-9);
        assert!((r.m.mrecords_per_sec() - 1.5).abs() < 1e-9);
    }
}
