//! Synthetic workload generation (paper §V-A).
//!
//! "The source thread of each producer creates up to 100 million
//! non-keyed records of 100 bytes ... We use synthetic data similar to
//! the open messaging stream benchmark." Records are pre-generated
//! pseudo-random payloads reused round-robin, so generation cost stays
//! negligible next to the ingestion path being measured.

use kera_common::rng::SplitMix64;

/// A pool of pre-generated record payloads.
pub struct RecordPool {
    payloads: Vec<Vec<u8>>,
    next: usize,
}

impl RecordPool {
    /// `count` distinct payloads of `size` bytes, seeded deterministically.
    pub fn new(count: usize, size: usize, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let payloads = (0..count.max(1))
            .map(|_| {
                let mut p = vec![0u8; size];
                rng.fill_bytes(&mut p);
                p
            })
            .collect();
        Self { payloads, next: 0 }
    }

    /// Next payload (round-robin over the pool). Not an `Iterator`:
    /// returns a borrow of the pool, never exhausts.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> &[u8] {
        let p = &self.payloads[self.next];
        self.next = (self.next + 1) % self.payloads.len();
        p
    }

    pub fn record_size(&self) -> usize {
        self.payloads[0].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_cycles_and_sizes() {
        let mut p = RecordPool::new(3, 100, 42);
        assert_eq!(p.record_size(), 100);
        let a = p.next().to_vec();
        let b = p.next().to_vec();
        let c = p.next().to_vec();
        let a2 = p.next().to_vec();
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_ne!(b, c);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut x = RecordPool::new(2, 16, 7);
        let mut y = RecordPool::new(2, 16, 7);
        assert_eq!(x.next(), y.next());
    }

    #[test]
    fn zero_count_clamps_to_one() {
        let mut p = RecordPool::new(0, 8, 1);
        let _ = p.next();
    }
}
