//! The per-figure parameter sweeps of the paper's evaluation (§V).
//!
//! Every figure of the paper maps to a [`Figure`]: a list of experiment
//! points, each tagged with the series and x-value the paper plots.
//! `DESIGN.md` §4 is the authoritative index; the configurations here
//! follow the figure captions.

use std::time::Duration;

use kera_common::config::VirtualLogPolicy;

use crate::experiment::{ExperimentConfig, SystemKind};

/// One experiment point of a figure.
#[derive(Clone, Debug)]
pub struct Point {
    /// Series label (legend entry), e.g. "KerA R3".
    pub series: String,
    /// X-axis value, e.g. "128" (streams) or "16p/64KB".
    pub x: String,
    pub cfg: ExperimentConfig,
}

/// A reproducible figure.
#[derive(Clone, Debug)]
pub struct Figure {
    pub id: &'static str,
    pub title: &'static str,
    pub points: Vec<Point>,
}

fn base() -> ExperimentConfig {
    ExperimentConfig::default()
}

/// Fig. 8: scaling the number of streams — Kafka vs KerA, 4 producers,
/// chunk 1 KB, one partition per stream, KerA with 4 shared virtual logs
/// per broker, R1/R2/R3.
pub fn fig08() -> Figure {
    let mut points = Vec::new();
    for &streams in &[32u32, 64, 128, 256] {
        for &r in &[1u32, 2, 3] {
            for &system in &[SystemKind::Kafka, SystemKind::Kera] {
                let cfg = ExperimentConfig {
                    system,
                    producers: 4,
                    consumers: 0,
                    streams,
                    streamlets_per_stream: 1,
                    chunk_size: 1024,
                    replication_factor: r,
                    vlog_policy: VirtualLogPolicy::SharedPerBroker(4),
                    ..base()
                };
                points.push(Point { series: format!("{system} R{r}"), x: streams.to_string(), cfg });
            }
        }
    }
    Figure { id: "fig08", title: "Scaling the number of streams (Kafka vs KerA, chunk 1KB)", points }
}

/// Fig. 9: scaling the number of clients — 128 streams, chunk 16 KB,
/// producers 4/8/16, R1/R2/R3; KerA configured like Kafka (one replicated
/// log per partition) to isolate active vs passive replication.
pub fn fig09() -> Figure {
    let mut points = Vec::new();
    for &producers in &[4u32, 8, 16] {
        for &r in &[1u32, 2, 3] {
            for &system in &[SystemKind::Kafka, SystemKind::Kera] {
                let cfg = ExperimentConfig {
                    system,
                    producers,
                    consumers: 0,
                    streams: 128,
                    streamlets_per_stream: 1,
                    chunk_size: 16 * 1024,
                    replication_factor: r,
                    vlog_policy: VirtualLogPolicy::PerStreamlet,
                    ..base()
                };
                points.push(Point {
                    series: format!("{system} R{r}"),
                    x: format!("{producers}p"),
                    cfg,
                });
            }
        }
    }
    Figure { id: "fig09", title: "Scaling the number of clients (one log per partition)", points }
}

/// Fig. 10: low-latency configuration — chunk 1 KB, R3, 4 producers + 4
/// consumers; Kafka vs KerA with 4 and 32 shared virtual logs per broker.
pub fn fig10() -> Figure {
    let mut points = Vec::new();
    for &streams in &[64u32, 128, 256] {
        let variants: Vec<(String, SystemKind, VirtualLogPolicy)> = vec![
            ("Kafka".into(), SystemKind::Kafka, VirtualLogPolicy::PerStreamlet),
            ("KerA 4 vlogs".into(), SystemKind::Kera, VirtualLogPolicy::SharedPerBroker(4)),
            ("KerA 32 vlogs".into(), SystemKind::Kera, VirtualLogPolicy::SharedPerBroker(32)),
        ];
        for (series, system, policy) in variants {
            let cfg = ExperimentConfig {
                system,
                producers: 4,
                consumers: 4,
                streams,
                streamlets_per_stream: 1,
                chunk_size: 1024,
                replication_factor: 3,
                vlog_policy: policy,
                ..base()
            };
            points.push(Point { series, x: streams.to_string(), cfg });
        }
    }
    Figure { id: "fig10", title: "Low-latency configuration (R3, chunk 1KB, 4P+4C)", points }
}

/// Fig. 11: high-throughput configuration — one stream with 32
/// partitions (KerA: 32 streamlets × 4 sub-partitions, one virtual log
/// per sub-partition), R3, varying producers and chunk size.
pub fn fig11() -> Figure {
    let mut points = Vec::new();
    for &producers in &[4u32, 8, 16] {
        for &chunk_kb in &[4usize, 16, 64] {
            for &system in &[SystemKind::Kafka, SystemKind::Kera] {
                let cfg = ExperimentConfig {
                    system,
                    producers,
                    consumers: producers,
                    streams: 1,
                    streamlets_per_stream: 32,
                    active_groups: 4,
                    chunk_size: chunk_kb * 1024,
                    replication_factor: 3,
                    vlog_policy: VirtualLogPolicy::PerSubPartition,
                    ..base()
                };
                points.push(Point {
                    series: system.to_string(),
                    x: format!("{producers}p/{chunk_kb}KB"),
                    cfg,
                });
            }
        }
    }
    Figure { id: "fig11", title: "High-throughput configuration (R3, 32 partitions)", points }
}

/// Fig. 12: scaling the number of streams in KerA — ONE shared virtual
/// log per broker for up to 512 streams, R1/R2/R3, 8P+8C, chunk 1 KB.
pub fn fig12() -> Figure {
    let mut points = Vec::new();
    for &streams in &[64u32, 128, 256, 512] {
        for &r in &[1u32, 2, 3] {
            let cfg = ExperimentConfig {
                producers: 8,
                consumers: 8,
                streams,
                streamlets_per_stream: 1,
                chunk_size: 1024,
                replication_factor: r,
                vlog_policy: VirtualLogPolicy::SharedPerBroker(1),
                ..base()
            };
            points.push(Point { series: format!("R{r}"), x: streams.to_string(), cfg });
        }
    }
    Figure { id: "fig12", title: "KerA: one shared virtual log per broker", points }
}

/// Fig. 13: increasing the replication capacity (1/2/4 shared virtual
/// logs per broker) while scaling streams; R3, 8P+8C, chunk 1 KB.
pub fn fig13() -> Figure {
    let mut points = Vec::new();
    for &vlogs in &[1u32, 2, 4] {
        for &streams in &[128u32, 256, 512] {
            let cfg = ExperimentConfig {
                producers: 8,
                consumers: 8,
                streams,
                streamlets_per_stream: 1,
                chunk_size: 1024,
                replication_factor: 3,
                vlog_policy: VirtualLogPolicy::SharedPerBroker(vlogs),
                ..base()
            };
            points.push(Point { series: format!("{vlogs} vlogs"), x: streams.to_string(), cfg });
        }
    }
    Figure { id: "fig13", title: "Replication capacity 1/2/4 virtual logs (R3)", points }
}

fn vlog_sweep(id: &'static str, title: &'static str, streams: u32) -> Figure {
    let mut points = Vec::new();
    for &vlogs in &[1u32, 2, 4, 8, 16, 32, 64] {
        for &r in &[1u32, 2, 3] {
            let cfg = ExperimentConfig {
                producers: 8,
                consumers: 8,
                streams,
                streamlets_per_stream: 1,
                chunk_size: 1024,
                replication_factor: r,
                vlog_policy: VirtualLogPolicy::SharedPerBroker(vlogs),
                ..base()
            };
            points.push(Point { series: format!("R{r}"), x: vlogs.to_string(), cfg });
        }
    }
    Figure { id, title, points }
}

/// Fig. 14: 128 streams, varying the number of virtual logs.
pub fn fig14() -> Figure {
    vlog_sweep("fig14", "128 streams, varying #virtual logs", 128)
}

/// Fig. 15: 256 streams, varying the number of virtual logs.
pub fn fig15() -> Figure {
    vlog_sweep("fig15", "256 streams, varying #virtual logs", 256)
}

/// Fig. 16: 512 streams, varying the number of virtual logs.
pub fn fig16() -> Figure {
    vlog_sweep("fig16", "512 streams, varying #virtual logs", 512)
}

fn throughput_sweep(id: &'static str, title: &'static str, clients: u32) -> Figure {
    let mut points = Vec::new();
    for &chunk_kb in &[4usize, 8, 16, 32, 64] {
        for &r in &[1u32, 2, 3] {
            let cfg = ExperimentConfig {
                producers: clients,
                consumers: clients,
                streams: 1,
                streamlets_per_stream: 32,
                active_groups: 4,
                chunk_size: chunk_kb * 1024,
                replication_factor: r,
                vlog_policy: VirtualLogPolicy::PerSubPartition,
                ..base()
            };
            points.push(Point { series: format!("R{r}"), x: format!("{chunk_kb}KB"), cfg });
        }
    }
    Figure { id, title, points }
}

/// Fig. 17: one virtual log per sub-partition, 4P+4C, chunk size sweep.
pub fn fig17() -> Figure {
    throughput_sweep("fig17", "One vlog per sub-partition, 4P+4C", 4)
}

/// Fig. 18: one virtual log per sub-partition, 8P+8C.
pub fn fig18() -> Figure {
    throughput_sweep("fig18", "One vlog per sub-partition, 8P+8C", 8)
}

/// Fig. 19: one virtual log per sub-partition, 16P+16C.
pub fn fig19() -> Figure {
    throughput_sweep("fig19", "One vlog per sub-partition, 16P+16C", 16)
}

/// Fig. 20: one virtual log per sub-partition, 32P+32C.
pub fn fig20() -> Figure {
    throughput_sweep("fig20", "One vlog per sub-partition, 32P+32C", 32)
}

/// Fig. 21: varying the number of virtual logs for one 32-streamlet
/// stream (Q=4), chunk 32/64 KB, R3, 8P+8C.
pub fn fig21() -> Figure {
    let mut points = Vec::new();
    for &vlogs in &[1u32, 2, 4, 8, 16, 32] {
        for &chunk_kb in &[32usize, 64] {
            let cfg = ExperimentConfig {
                producers: 8,
                consumers: 8,
                streams: 1,
                streamlets_per_stream: 32,
                active_groups: 4,
                chunk_size: chunk_kb * 1024,
                replication_factor: 3,
                vlog_policy: VirtualLogPolicy::SharedPerBroker(vlogs),
                ..base()
            };
            points.push(Point { series: format!("{chunk_kb}KB"), x: vlogs.to_string(), cfg });
        }
    }
    Figure { id: "fig21", title: "Varying #virtual logs (32 streamlets, Q=4, R3)", points }
}

/// Looks a figure up by id ("fig08".."fig21").
pub fn figure(id: &str) -> Option<Figure> {
    Some(match id {
        "fig08" => fig08(),
        "fig09" => fig09(),
        "fig10" => fig10(),
        "fig11" => fig11(),
        "fig12" => fig12(),
        "fig13" => fig13(),
        "fig14" => fig14(),
        "fig15" => fig15(),
        "fig16" => fig16(),
        "fig17" => fig17(),
        "fig18" => fig18(),
        "fig19" => fig19(),
        "fig20" => fig20(),
        "fig21" => fig21(),
        _ => return None,
    })
}

/// All fourteen figures, in paper order.
pub fn all_figures() -> Vec<Figure> {
    ["fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
        "fig18", "fig19", "fig20", "fig21"]
        .iter()
        .map(|id| figure(id).unwrap())
        .collect()
}

/// Scales a figure down (shorter windows, fewer points) for smoke tests
/// and Criterion runs.
pub fn quick(mut fig: Figure, max_points: usize, measure: Duration) -> Figure {
    if fig.points.len() > max_points {
        // Round-robin across series (so a subset never drops a whole
        // system/replication-factor), spreading within each series.
        let mut order: Vec<String> = Vec::new();
        let mut by_series: std::collections::HashMap<String, Vec<Point>> =
            std::collections::HashMap::new();
        for p in fig.points.drain(..) {
            if !order.contains(&p.series) {
                order.push(p.series.clone());
            }
            by_series.entry(p.series.clone()).or_default().push(p);
        }
        // Spread each series' kept points evenly over its own sweep.
        let per_series = (max_points / order.len().max(1)).max(1);
        let mut kept = Vec::with_capacity(max_points);
        for name in &order {
            let pts = &by_series[name];
            let step = (pts.len() as f64 / per_series as f64).max(1.0);
            let mut next = 0.0;
            for (i, p) in pts.iter().enumerate() {
                if kept.len() >= max_points {
                    break;
                }
                if i as f64 >= next {
                    kept.push(p.clone());
                    next += step;
                }
            }
        }
        fig.points = kept;
    }
    for p in &mut fig.points {
        p.cfg.warmup = measure / 2;
        p.cfg.measure = measure;
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_resolves() {
        assert_eq!(all_figures().len(), 14);
        assert!(figure("fig99").is_none());
        for f in all_figures() {
            assert!(!f.points.is_empty(), "{} has no points", f.id);
            for p in &f.points {
                assert!(p.cfg.producers > 0);
                assert!(p.cfg.replication_factor >= 1 && p.cfg.replication_factor <= 3);
            }
        }
    }

    #[test]
    fn fig08_compares_systems_across_replication() {
        let f = fig08();
        assert!(f.points.iter().any(|p| p.series.contains("Kafka R3")));
        assert!(f.points.iter().any(|p| p.series.contains("KerA R1")));
        // 4 stream counts x 3 factors x 2 systems.
        assert_eq!(f.points.len(), 24);
    }

    #[test]
    fn fig09_uses_per_streamlet_logs() {
        for p in fig09().points {
            if p.cfg.system == SystemKind::Kera {
                assert_eq!(p.cfg.vlog_policy, VirtualLogPolicy::PerStreamlet);
            }
        }
    }

    #[test]
    fn throughput_figs_use_subpartition_logs() {
        for f in [fig17(), fig18(), fig19(), fig20()] {
            for p in &f.points {
                assert_eq!(p.cfg.vlog_policy, VirtualLogPolicy::PerSubPartition);
                assert_eq!(p.cfg.active_groups, 4);
                assert_eq!(p.cfg.streamlets_per_stream, 32);
            }
        }
    }

    #[test]
    fn quick_subsets_evenly() {
        let f = quick(fig08(), 5, Duration::from_millis(100));
        assert!(f.points.len() <= 6);
        assert!(f.points.iter().all(|p| p.cfg.measure == Duration::from_millis(100)));
    }
}
