//! One experiment: cluster + producers + consumers + steady-state
//! measurement (paper §V-A).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use kera_broker::KeraCluster;
use kera_client::consumer::{Consumer, ConsumerConfig, Subscription};
use kera_client::producer::{Producer, ProducerConfig};
use kera_client::{MetadataClient, Partitioner};
use kera_common::config::{
    ClusterConfig, CoordinatorConfig, QuotaConfig, ReplicationConfig, StreamConfig,
    VirtualLogPolicy,
};
use kera_common::ids::{ConsumerId, NodeId, ProducerId, StreamId, StreamletId};
use kera_common::Result;
use kera_kafka_sim::broker::KafkaTuning;
use kera_kafka_sim::KafkaCluster;

use crate::workload::RecordPool;

/// Which system under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemKind {
    /// KerA with virtual-log replication.
    Kera,
    /// The Kafka-style baseline (one replicated log per partition,
    /// passive pull replication).
    Kafka,
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemKind::Kera => write!(f, "KerA"),
            SystemKind::Kafka => write!(f, "Kafka"),
        }
    }
}

fn env_ms(name: &str, default: u64) -> Duration {
    Duration::from_millis(
        std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default),
    )
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_flag(name: &str, default: bool) -> bool {
    std::env::var(name).map(|v| !v.is_empty() && v != "0").unwrap_or(default)
}

/// Canonical full measurement window. Figure TSVs under `results/` are
/// only comparable when measured with exactly this window; any override
/// (`KERA_WARMUP_MS` / `KERA_MEASURE_MS`) marks the run as a smoke run,
/// which [`crate::report::figure_main`] routes to `results/tmp/` so it
/// can never clobber the committed reference results.
pub const FULL_WARMUP: Duration = Duration::from_millis(750);
/// See [`FULL_WARMUP`].
pub const FULL_MEASURE: Duration = Duration::from_millis(2000);

/// Full description of one experiment point.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    pub system: SystemKind,
    pub brokers: u32,
    pub worker_threads: usize,
    pub producers: u32,
    pub consumers: u32,
    pub streams: u32,
    pub streamlets_per_stream: u32,
    /// `Q`: active groups (sub-partitions) per streamlet.
    pub active_groups: u32,
    pub chunk_size: usize,
    pub request_max_bytes: usize,
    pub linger: Duration,
    pub record_size: usize,
    pub replication_factor: u32,
    /// Virtual-log association policy (KerA only).
    pub vlog_policy: VirtualLogPolicy,
    pub segment_size: usize,
    pub vseg_size: usize,
    pub warmup: Duration,
    pub measure: Duration,
    /// `replica.fetch.wait.max.ms` for the Kafka baseline.
    pub kafka_fetch_wait: Duration,
    /// Outstanding produce requests per broker (paper: "multiple
    /// parallel producer requests"; its evaluation uses 1).
    pub producer_pipeline: usize,
    /// Per-storage-write fixed cost on the replication path (see
    /// `ClusterConfig::io_cost_ns`). The figure sweeps default to 30 µs —
    /// the order of one small log-file append + offset-index update on
    /// the paper's testbed — so the small-IO vs large-IO effect the
    /// paper measures is present on the in-process substrate
    /// (`KERA_IO_COST_NS` overrides; 0 disables).
    pub io_cost_ns: u64,
    /// Cluster-wide observability (tracing + flight recorder). On by
    /// default; `KERA_OBS=0` turns it off for overhead comparisons.
    /// Metrics counters work either way.
    pub observability: bool,
    /// Coordinator replicas (KerA only; 1 = the historical single
    /// coordinator, 3 = the replicated metadata plane of DESIGN.md §10).
    /// `KERA_COORD_REPLICAS` overrides, so every figure harness run
    /// works unchanged against a replicated coordinator.
    pub coordinator_replicas: u32,
    /// Per-tenant admission control (DESIGN.md §11). Off by default so
    /// every figure reproduces the unthrottled paper numbers;
    /// `KERA_QUOTA=1` turns it on for any figure run, with
    /// `KERA_QUOTA_BPS` / `KERA_QUOTA_BURST` / `KERA_QUOTA_FETCH_BPS` /
    /// `KERA_QUOTA_INFLIGHT` / `KERA_QUOTA_QUEUE` tuning the limits.
    pub quotas: QuotaConfig,
}

fn env_quotas() -> QuotaConfig {
    let d = QuotaConfig::default();
    QuotaConfig {
        enabled: env_flag("KERA_QUOTA", false),
        produce_bytes_per_sec: env_usize("KERA_QUOTA_BPS", d.produce_bytes_per_sec as usize)
            as u64,
        burst_bytes: env_usize("KERA_QUOTA_BURST", d.burst_bytes as usize) as u64,
        fetch_bytes_per_sec: env_usize("KERA_QUOTA_FETCH_BPS", d.fetch_bytes_per_sec as usize)
            as u64,
        max_inflight_bytes: env_usize("KERA_QUOTA_INFLIGHT", d.max_inflight_bytes as usize)
            as u64,
        admission_queue_bytes: env_usize("KERA_QUOTA_QUEUE", d.admission_queue_bytes as usize)
            as u64,
        ..d
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            system: SystemKind::Kera,
            brokers: 4,
            worker_threads: env_usize("KERA_BROKER_WORKERS", 3),
            producers: 4,
            consumers: 0,
            streams: 1,
            streamlets_per_stream: 1,
            active_groups: 1,
            chunk_size: 16 * 1024,
            request_max_bytes: 1 << 20,
            linger: Duration::from_millis(1),
            record_size: 100,
            replication_factor: 3,
            vlog_policy: VirtualLogPolicy::SharedPerBroker(4),
            segment_size: 1 << 20,
            vseg_size: 1 << 20,
            warmup: env_ms("KERA_WARMUP_MS", FULL_WARMUP.as_millis() as u64),
            measure: env_ms("KERA_MEASURE_MS", FULL_MEASURE.as_millis() as u64),
            kafka_fetch_wait: Duration::from_millis(500),
            producer_pipeline: 1,
            io_cost_ns: env_usize("KERA_IO_COST_NS", 30_000) as u64,
            observability: env_flag("KERA_OBS", true),
            coordinator_replicas: env_usize("KERA_COORD_REPLICAS", 1) as u32,
            quotas: env_quotas(),
        }
    }
}

impl ExperimentConfig {
    /// Stream configuration for stream `id` under this experiment.
    pub fn stream_config(&self, id: u32) -> StreamConfig {
        StreamConfig {
            id: StreamId(id),
            streamlets: self.streamlets_per_stream,
            // Kafka has no sub-partitions: a partition is always a single
            // append chain (Q is a KerA concept).
            active_groups: match self.system {
                SystemKind::Kera => self.active_groups,
                SystemKind::Kafka => 1,
            },
            segments_per_group: 16,
            segment_size: self.segment_size,
            replication: ReplicationConfig {
                factor: self.replication_factor,
                policy: self.vlog_policy,
                vseg_size: self.vseg_size,
            },
        }
    }

    /// Total client nodes this experiment registers (producers,
    /// consumers, plus the admin client).
    pub fn client_nodes(&self) -> u32 {
        self.producers + self.consumers + 1
    }
}

/// Latency summary of one pipeline stage, from the cluster-wide
/// `kera.trace.stage` histograms.
#[derive(Clone, Debug)]
pub struct StageSummary {
    pub stage: &'static str,
    pub count: u64,
    pub mean_us: f64,
    pub p50_us: f64,
    pub p99_us: f64,
}

/// The stages the report breaks a produce down into, pipeline order.
const BREAKDOWN_STAGES: [&str; 7] =
    ["rpc_call", "rpc_serve", "append", "replicate", "vlog_ship", "backup_write", "flush"];

/// Extracts the per-stage latency breakdown from a metrics snapshot
/// (stages with no samples are omitted).
pub fn stage_breakdown(snap: &kera_obs::RegistrySnapshot) -> Vec<StageSummary> {
    BREAKDOWN_STAGES
        .iter()
        .filter_map(|&stage| {
            let h = snap.histogram_sum("kera.trace.stage", &[("stage", stage)]);
            (h.count > 0).then(|| StageSummary {
                stage,
                count: h.count,
                mean_us: h.mean_ns() / 1e3,
                p50_us: h.quantile_ns(0.5) as f64 / 1e3,
                p99_us: h.quantile_ns(0.99) as f64 / 1e3,
            })
        })
        .collect()
}

/// What one experiment measured.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Aggregated acknowledged producer throughput, records/s.
    pub produce_rate: f64,
    /// Aggregated consumer throughput, records/s.
    pub consume_rate: f64,
    /// Aggregated producer goodput, bytes/s (chunk bytes).
    pub produce_bytes_rate: f64,
    /// Mean produce request latency, microseconds.
    pub mean_request_latency_us: f64,
    /// KerA only: replication RPC batches sent (per backup set).
    pub replication_batches: u64,
    /// KerA only: chunks those batches carried (consolidation =
    /// chunks / batches).
    pub replication_chunks: u64,
    /// Produce requests that failed terminally.
    pub failed_requests: u64,
    /// Per-tenant (per-producer) acknowledged throughput, records/s —
    /// populated only when quotas are enabled, so quota-off reports are
    /// byte-identical to pre-quota runs.
    pub tenant_rates: Vec<(u32, f64)>,
    /// Per-stage latency breakdown (client call → broker append →
    /// replicate wait → vlog ship → backup write → flush), empty when
    /// observability is off.
    pub stages: Vec<StageSummary>,
    /// Full cluster metrics snapshot as JSON, for per-figure dumps.
    pub metrics_json: String,
}

impl Measurement {
    /// Million records per second — the unit of every figure.
    pub fn mrecords_per_sec(&self) -> f64 {
        self.produce_rate / 1e6
    }

    /// Chunks shipped per replication RPC (KerA's consolidation factor).
    pub fn consolidation(&self) -> f64 {
        if self.replication_batches == 0 {
            0.0
        } else {
            self.replication_chunks as f64 / self.replication_batches as f64
        }
    }
}

enum Cluster {
    Kera(KeraCluster),
    Kafka(KafkaCluster),
}

impl Cluster {
    /// All coordinator replicas (single-element unless the KerA
    /// coordinator is replicated).
    fn coordinators(&self) -> Vec<NodeId> {
        match self {
            Cluster::Kera(c) => c.coordinators(),
            Cluster::Kafka(c) => c.coordinators(),
        }
    }

    fn client(&self, i: u32) -> kera_rpc::NodeRuntime {
        match self {
            Cluster::Kera(c) => c.client(i),
            Cluster::Kafka(c) => c.client(i),
        }
    }

    fn metrics_snapshot(&self) -> kera_obs::RegistrySnapshot {
        match self {
            Cluster::Kera(c) => c.metrics_snapshot(),
            Cluster::Kafka(c) => c.metrics_snapshot(),
        }
    }

    fn shutdown(self) {
        match self {
            Cluster::Kera(c) => c.shutdown(),
            Cluster::Kafka(c) => c.shutdown(),
        }
    }
}

/// Runs one experiment point and returns its measurement.
pub fn run_experiment(cfg: &ExperimentConfig) -> Result<Measurement> {
    let cluster_cfg = ClusterConfig {
        brokers: cfg.brokers,
        worker_threads: cfg.worker_threads,
        io_cost_ns: cfg.io_cost_ns,
        observability: cfg.observability,
        coordinator: CoordinatorConfig {
            replicas: cfg.coordinator_replicas,
            ..CoordinatorConfig::default()
        },
        quotas: cfg.quotas,
        ..ClusterConfig::default()
    };
    let cluster = match cfg.system {
        SystemKind::Kera => Cluster::Kera(KeraCluster::start(cluster_cfg)?),
        SystemKind::Kafka => Cluster::Kafka(KafkaCluster::start(
            cluster_cfg,
            KafkaTuning {
                fetch_wait: cfg.kafka_fetch_wait,
                fetch_max_bytes_per_partition: 1 << 20,
                ack_timeout: Duration::from_secs(10),
                io_cost_ns: cfg.io_cost_ns,
            },
        )?),
    };

    // Create all streams through one admin client.
    let admin_rt = cluster.client(cfg.producers + cfg.consumers);
    let admin = MetadataClient::with_replicas(admin_rt.client(), cluster.coordinators());
    let stream_ids: Vec<StreamId> = (1..=cfg.streams).map(StreamId).collect();
    for &s in &stream_ids {
        admin.create_stream(cfg.stream_config(s.raw()))?;
    }

    let stop = Arc::new(AtomicBool::new(false));

    // Producers: proxy clients sharing all streams (§V-A), one source
    // thread each, records spread round-robin over streams and, inside a
    // stream, over streamlets by the partitioner.
    let mut producers = Vec::new();
    let mut producer_rts = Vec::new();
    for p in 0..cfg.producers {
        let rt = cluster.client(p);
        let meta = MetadataClient::with_replicas(rt.client(), cluster.coordinators());
        let producer = Arc::new(Producer::new(
            &meta,
            &stream_ids,
            ProducerConfig {
                id: ProducerId(p),
                chunk_size: cfg.chunk_size,
                request_max_bytes: cfg.request_max_bytes,
                linger: cfg.linger,
                partitioner: Partitioner::RoundRobin,
                // Bound queued-but-unsent data to ~4 MB per producer so a
                // slow configuration cannot balloon memory or stretch
                // teardown.
                queue_capacity: ((4 << 20) / cfg.chunk_size).clamp(8, 1000),
                pipeline: cfg.producer_pipeline,
                ..ProducerConfig::default()
            },
        )?);
        producers.push(producer);
        producer_rts.push(rt);
    }
    let source_threads: Vec<_> = producers
        .iter()
        .enumerate()
        .map(|(p, producer)| {
            let producer = Arc::clone(producer);
            let stop = Arc::clone(&stop);
            let streams = stream_ids.clone();
            let record_size = cfg.record_size;
            std::thread::Builder::new()
                .name(format!("source-{p}"))
                .spawn(move || {
                    let mut pool = RecordPool::new(64, record_size, 0x5eed + p as u64);
                    let mut i = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let stream = streams[i % streams.len()];
                        i += 1;
                        if producer.send(stream, pool.next()).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawn source")
        })
        .collect();

    // Consumers: divide all (stream, streamlet) pairs round-robin.
    let mut consumers = Vec::new();
    let mut consumer_rts = Vec::new();
    if cfg.consumers > 0 {
        let mut pairs: Vec<(StreamId, StreamletId)> = Vec::new();
        for &s in &stream_ids {
            for sl in 0..cfg.streamlets_per_stream {
                pairs.push((s, StreamletId(sl)));
            }
        }
        for c in 0..cfg.consumers {
            let rt = cluster.client(cfg.producers + c);
            let meta = MetadataClient::with_replicas(rt.client(), cluster.coordinators());
            let mut by_stream: std::collections::HashMap<StreamId, Vec<StreamletId>> =
                std::collections::HashMap::new();
            for (i, &(s, sl)) in pairs.iter().enumerate() {
                if i as u32 % cfg.consumers == c {
                    by_stream.entry(s).or_default().push(sl);
                }
            }
            let subs: Vec<Subscription> = by_stream
                .into_iter()
                .map(|(stream, streamlets)| Subscription { stream, streamlets: Some(streamlets), start: Vec::new() })
                .collect();
            if subs.is_empty() {
                continue;
            }
            let consumer = Arc::new(Consumer::new(
                &meta,
                &subs,
                ConsumerConfig {
                    id: ConsumerId(c),
                    fetch_max_bytes: cfg.chunk_size as u32,
                    cache_capacity: 1000,
                    ..ConsumerConfig::default()
                },
            )?);
            consumers.push(consumer);
            consumer_rts.push(rt);
        }
    }
    let sink_threads: Vec<_> = consumers
        .iter()
        .enumerate()
        .map(|(c, consumer)| {
            let consumer = Arc::clone(consumer);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("sink-{c}"))
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let _ = consumer.poll_count(Duration::from_millis(20));
                    }
                })
                .expect("spawn sink")
        })
        .collect();

    // Warm up, then open the measurement window on every meter
    // ("without considering each client's first few seconds", §V-A).
    std::thread::sleep(cfg.warmup);
    for p in &producers {
        p.metrics().start_window();
    }
    for c in &consumers {
        c.metrics().start_window();
    }
    std::thread::sleep(cfg.measure);

    // Read rates before tearing anything down.
    let mut produce_rate = 0.0;
    let mut produce_bytes_rate = 0.0;
    let mut failed_requests = 0;
    let mut latency_sum = 0.0;
    let mut tenant_rates = Vec::new();
    for (p_idx, p) in producers.iter().enumerate() {
        if let Some((r, b)) = p.metrics().rates() {
            produce_rate += r;
            produce_bytes_rate += b;
            if cfg.quotas.enabled {
                tenant_rates.push((p_idx as u32, r));
            }
        }
        failed_requests += p.failed_requests();
        latency_sum += p.request_latency().mean_ns() / 1e3;
    }
    let mean_request_latency_us = latency_sum / cfg.producers.max(1) as f64;
    let mut consume_rate = 0.0;
    for c in &consumers {
        if let Some((r, _)) = c.metrics().rates() {
            consume_rate += r;
        }
    }
    let (replication_batches, replication_chunks) = match &cluster {
        Cluster::Kera(c) => {
            let mut batches = 0;
            let mut chunks = 0;
            for b in &c.broker_svcs {
                let (bt, ch, _by) = b.vlogs().replication_stats();
                batches += bt;
                chunks += ch;
            }
            (batches, chunks)
        }
        Cluster::Kafka(_) => (0, 0),
    };

    // Cluster-wide metrics and the per-stage latency breakdown, read
    // before teardown so every node's registry is still alive.
    let snapshot = cluster.metrics_snapshot();
    let stages = stage_breakdown(&snapshot);
    let metrics_json = snapshot.to_json();

    // Tear down.
    stop.store(true, Ordering::SeqCst);
    for t in source_threads {
        let _ = t.join();
    }
    for t in sink_threads {
        let _ = t.join();
    }
    drop(consumers);
    for p in producers {
        if let Ok(p) = Arc::try_unwrap(p) {
            p.abort(); // fast teardown: unsent chunks are dropped
        }
    }
    cluster.shutdown();

    // Hand freed arena pages back to the OS: a sweep runs dozens of
    // experiments in one process, and glibc otherwise accumulates each
    // point's high-water mark until the OOM killer intervenes.
    // SAFETY: malloc_trim is a glibc extension with no preconditions —
    // it only releases unused arena pages back to the OS and is safe to
    // call from any thread at any time; the declaration matches the
    // glibc prototype `int malloc_trim(size_t pad)`.
    #[cfg(target_env = "gnu")]
    unsafe {
        unsafe extern "C" {
            fn malloc_trim(pad: usize) -> i32;
        }
        malloc_trim(0);
    }

    Ok(Measurement {
        produce_rate,
        consume_rate,
        produce_bytes_rate,
        mean_request_latency_us,
        replication_batches,
        replication_chunks,
        failed_requests,
        tenant_rates,
        stages,
        metrics_json,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(cfg: &mut ExperimentConfig) {
        cfg.warmup = Duration::from_millis(150);
        cfg.measure = Duration::from_millis(400);
        cfg.brokers = 2;
        cfg.producers = 2;
        cfg.worker_threads = 2;
    }

    #[test]
    fn kera_experiment_produces_and_reports() {
        let mut cfg = ExperimentConfig {
            streams: 4,
            replication_factor: 2,
            chunk_size: 1024,
            ..ExperimentConfig::default()
        };
        quick(&mut cfg);
        let m = run_experiment(&cfg).unwrap();
        assert!(m.produce_rate > 0.0, "no throughput measured: {m:?}");
        assert_eq!(m.failed_requests, 0);
        assert!(m.replication_batches > 0);
        assert!(m.consolidation() >= 1.0);
        // Observability is on by default: the trace histograms must
        // yield a per-stage breakdown covering the produce pipeline.
        let stages: Vec<&str> = m.stages.iter().map(|s| s.stage).collect();
        for want in ["rpc_call", "append", "replicate", "vlog_ship", "backup_write"] {
            assert!(stages.contains(&want), "missing stage {want} in {stages:?}");
        }
        assert!(m.metrics_json.contains("kera.broker.records_in"), "metrics dump populated");
    }

    /// Acceptance for DESIGN.md §10: the figure harness runs unchanged
    /// against a 3-replica coordinator — stream creation and metadata
    /// lookups route to whichever replica leads, and throughput is
    /// measured exactly as in single-coordinator mode.
    #[test]
    fn kera_experiment_runs_against_replicated_coordinator() {
        let mut cfg = ExperimentConfig {
            streams: 2,
            replication_factor: 2,
            chunk_size: 1024,
            coordinator_replicas: 3,
            ..ExperimentConfig::default()
        };
        quick(&mut cfg);
        let m = run_experiment(&cfg).unwrap();
        assert!(m.produce_rate > 0.0, "no throughput with replicated coordinator: {m:?}");
        assert_eq!(m.failed_requests, 0);
    }

    /// Acceptance for DESIGN.md §11: a figure point runs to completion
    /// with admission control enabled, reports per-tenant rates, and
    /// still loses no acked request. The quota is set high enough that
    /// the measured aggregate stays positive even when individual
    /// requests get throttled and retried.
    #[test]
    fn kera_experiment_runs_with_quotas_enabled() {
        let mut cfg = ExperimentConfig {
            streams: 2,
            replication_factor: 2,
            chunk_size: 1024,
            quotas: QuotaConfig {
                enabled: true,
                produce_bytes_per_sec: 64 * 1024 * 1024,
                burst_bytes: 4 * 1024 * 1024,
                ..QuotaConfig::default()
            },
            ..ExperimentConfig::default()
        };
        quick(&mut cfg);
        let m = run_experiment(&cfg).unwrap();
        assert!(m.produce_rate > 0.0, "no throughput with quotas on: {m:?}");
        assert_eq!(m.failed_requests, 0);
        assert_eq!(m.tenant_rates.len(), 2, "one rate per producer: {:?}", m.tenant_rates);
        assert!(m.metrics_json.contains("kera.broker.admission_queue_bytes"), "quota gauges");
    }

    #[test]
    fn quotas_off_reports_no_tenant_rates() {
        let mut cfg = ExperimentConfig {
            replication_factor: 2,
            chunk_size: 1024,
            ..ExperimentConfig::default()
        };
        cfg.quotas.enabled = false;
        quick(&mut cfg);
        let m = run_experiment(&cfg).unwrap();
        assert!(m.produce_rate > 0.0);
        assert!(m.tenant_rates.is_empty(), "quota-off output must not change");
    }

    #[test]
    fn observability_off_yields_no_stage_breakdown() {
        let mut cfg = ExperimentConfig {
            replication_factor: 2,
            chunk_size: 1024,
            observability: false,
            ..ExperimentConfig::default()
        };
        quick(&mut cfg);
        let m = run_experiment(&cfg).unwrap();
        assert!(m.produce_rate > 0.0);
        assert!(m.stages.is_empty(), "no spans with obs off: {:?}", m.stages);
        // Counters are registry-backed and keep working regardless.
        assert!(m.metrics_json.contains("kera.broker.records_in"));
    }

    #[test]
    fn kafka_experiment_with_consumers() {
        let mut cfg = ExperimentConfig {
            system: SystemKind::Kafka,
            streams: 2,
            consumers: 2,
            replication_factor: 2,
            chunk_size: 1024,
            kafka_fetch_wait: Duration::from_millis(50),
            ..ExperimentConfig::default()
        };
        quick(&mut cfg);
        let m = run_experiment(&cfg).unwrap();
        assert!(m.produce_rate > 0.0);
        assert!(m.consume_rate > 0.0, "consumers saw nothing: {m:?}");
        assert_eq!(m.failed_requests, 0);
    }

    #[test]
    fn r1_has_no_replication_batches() {
        let mut cfg = ExperimentConfig {
            streams: 2,
            replication_factor: 1,
            chunk_size: 1024,
            ..ExperimentConfig::default()
        };
        quick(&mut cfg);
        let m = run_experiment(&cfg).unwrap();
        assert!(m.produce_rate > 0.0);
        assert_eq!(m.replication_batches, 0);
    }
}
