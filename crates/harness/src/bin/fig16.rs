//! Reproduces Figure 16 of the paper. See DESIGN.md §4 for the sweep.
fn main() {
    kera_harness::report::figure_main("fig16");
}
