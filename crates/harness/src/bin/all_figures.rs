//! Runs every figure of the paper's evaluation (Figs. 8-21) and writes
//! one TSV per figure under results/. Scale with KERA_MEASURE_MS /
//! KERA_WARMUP_MS.
fn main() {
    for fig in kera_harness::all_figures() {
        kera_harness::report::figure_main(fig.id);
    }
}
