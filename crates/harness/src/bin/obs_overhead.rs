//! Observability overhead smoke check: one fig08-style point (KerA R3,
//! 32 streams, 1 KB chunks) run with tracing off and then on. The traced
//! run must stay within a small throughput budget of the untraced one —
//! the hot paths are supposed to pay one branch, not a syscall.
//!
//! Environment:
//! - `KERA_OBS_TOLERANCE_PCT` — allowed slowdown, percent (default 5)
//! - `KERA_WARMUP_MS` / `KERA_MEASURE_MS` — per-run window, as everywhere
//!
//! The check retries a few times and passes on the best attempt: a
//! single noisy scheduler quantum on a shared CI box must not fail the
//! gate, a consistent regression must.

use kera_common::config::VirtualLogPolicy;
use kera_harness::experiment::{run_experiment, ExperimentConfig, SystemKind};

fn point(observability: bool) -> ExperimentConfig {
    ExperimentConfig {
        system: SystemKind::Kera,
        producers: 4,
        consumers: 0,
        streams: 32,
        streamlets_per_stream: 1,
        chunk_size: 1024,
        replication_factor: 3,
        vlog_policy: VirtualLogPolicy::SharedPerBroker(4),
        observability,
        ..ExperimentConfig::default()
    }
}

fn measure(observability: bool) -> f64 {
    let m = run_experiment(&point(observability)).expect("overhead point runs");
    assert_eq!(m.failed_requests, 0, "failed requests during overhead check");
    m.produce_rate
}

fn main() {
    let tolerance: f64 = std::env::var("KERA_OBS_TOLERANCE_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0);
    let attempts = 3;
    let mut best = f64::INFINITY;
    for attempt in 1..=attempts {
        let off = measure(false);
        let on = measure(true);
        let overhead_pct = (off - on) / off * 100.0;
        println!(
            "obs-overhead attempt {attempt}/{attempts}: off={off:.0} rec/s on={on:.0} rec/s \
             overhead={overhead_pct:.1}% (budget {tolerance}%)"
        );
        best = best.min(overhead_pct);
        if best <= tolerance {
            println!("obs-overhead: OK ({best:.1}% <= {tolerance}%)");
            return;
        }
    }
    eprintln!("obs-overhead: tracing costs {best:.1}% throughput, budget is {tolerance}%");
    std::process::exit(1);
}
