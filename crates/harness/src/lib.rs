//! Benchmark harness: regenerates every figure of the paper's evaluation
//! (Figs. 8–21) against the in-process KerA cluster and the Kafka-style
//! baseline.
//!
//! - [`experiment`] — one experiment = one cluster + `P` producers + `C`
//!   consumers running the paper's workload (§V-A: non-keyed 100-byte
//!   records, `linger.ms = 1`, proxy producers sharing all streams, one
//!   request per broker in parallel), measured over a steady-state window
//!   that skips warm-up;
//! - [`workload`] — synthetic record generation;
//! - [`figures`] — the per-figure parameter sweeps of §V-B/C/D, each
//!   mapping onto [`experiment::ExperimentConfig`]s;
//! - [`report`] — table/TSV output.
//!
//! Scale knobs (environment):
//! `KERA_MEASURE_MS` (default 2000), `KERA_WARMUP_MS` (default 750),
//! `KERA_BROKER_WORKERS` (default 3). Absolute numbers depend on the host
//! (this is a single-process simulation, not Grid5000); the *shapes* are
//! what `EXPERIMENTS.md` tracks.

pub mod experiment;
pub mod figures;
pub mod report;
pub mod rig;
pub mod workload;

pub use experiment::{ExperimentConfig, Measurement, StageSummary, SystemKind};
pub use figures::{all_figures, figure};
