//! A reusable cluster + producer rig for Criterion benchmarks.
//!
//! Criterion measures "time to ingest N records end-to-end (acked)"; the
//! rig keeps the cluster and producers alive across iterations so setup
//! cost stays out of the measurement.

use std::sync::Arc;
use std::time::{Duration, Instant};

use kera_broker::KeraCluster;
use kera_client::producer::{Producer, ProducerConfig};
use kera_client::{MetadataClient, Partitioner};
use kera_common::config::ClusterConfig;
use kera_common::ids::{ProducerId, StreamId};
use kera_common::Result;
use kera_kafka_sim::broker::KafkaTuning;
use kera_kafka_sim::KafkaCluster;
use kera_rpc::NodeRuntime;

use crate::experiment::{ExperimentConfig, SystemKind};
use crate::workload::RecordPool;

enum AnyCluster {
    Kera(KeraCluster),
    Kafka(KafkaCluster),
}

/// A running cluster with connected producers, ready to ingest on demand.
pub struct BenchRig {
    cluster: Option<AnyCluster>,
    producers: Vec<Arc<Producer>>,
    _rts: Vec<NodeRuntime>,
    streams: Vec<StreamId>,
    record_size: usize,
}

impl BenchRig {
    /// Boots the system under `cfg` and connects `cfg.producers`
    /// producers (no background source threads — [`BenchRig::ingest`]
    /// drives them).
    pub fn start(cfg: &ExperimentConfig) -> Result<BenchRig> {
        let cluster_cfg = ClusterConfig {
            brokers: cfg.brokers,
            worker_threads: cfg.worker_threads,
            io_cost_ns: cfg.io_cost_ns,
            observability: cfg.observability,
            coordinator: kera_common::config::CoordinatorConfig {
                replicas: cfg.coordinator_replicas,
                ..kera_common::config::CoordinatorConfig::default()
            },
            ..ClusterConfig::default()
        };
        let cluster = match cfg.system {
            SystemKind::Kera => AnyCluster::Kera(KeraCluster::start(cluster_cfg)?),
            SystemKind::Kafka => AnyCluster::Kafka(KafkaCluster::start(
                cluster_cfg,
                KafkaTuning { fetch_wait: cfg.kafka_fetch_wait, ..KafkaTuning::default() },
            )?),
        };
        let client = |i: u32| match &cluster {
            AnyCluster::Kera(c) => c.client(i),
            AnyCluster::Kafka(c) => c.client(i),
        };
        let coordinators = match &cluster {
            AnyCluster::Kera(c) => c.coordinators(),
            AnyCluster::Kafka(c) => c.coordinators(),
        };

        let admin_rt = client(cfg.producers);
        let admin = MetadataClient::with_replicas(admin_rt.client(), coordinators.clone());
        let streams: Vec<StreamId> = (1..=cfg.streams).map(StreamId).collect();
        for &s in &streams {
            admin.create_stream(cfg.stream_config(s.raw()))?;
        }

        let mut producers = Vec::new();
        let mut rts = vec![admin_rt];
        for p in 0..cfg.producers {
            let rt = client(p);
            let meta = MetadataClient::with_replicas(rt.client(), coordinators.clone());
            producers.push(Arc::new(Producer::new(
                &meta,
                &streams,
                ProducerConfig {
                    id: ProducerId(p),
                    chunk_size: cfg.chunk_size,
                    request_max_bytes: cfg.request_max_bytes,
                    linger: cfg.linger,
                    partitioner: Partitioner::RoundRobin,
                    ..ProducerConfig::default()
                },
            )?));
            rts.push(rt);
        }
        Ok(BenchRig {
            cluster: Some(cluster),
            producers,
            _rts: rts,
            streams,
            record_size: cfg.record_size,
        })
    }

    /// Ingests `total` records spread over the producers (each on its own
    /// thread, like the paper's concurrent producers), flushes, and
    /// returns the wall-clock time from first send to last ack.
    pub fn ingest(&self, total: u64) -> Duration {
        let per = (total / self.producers.len() as u64).max(1);
        let started = Instant::now();
        std::thread::scope(|scope| {
            for (i, producer) in self.producers.iter().enumerate() {
                let streams = &self.streams;
                let record_size = self.record_size;
                let producer = Arc::clone(producer);
                scope.spawn(move || {
                    let mut pool = RecordPool::new(16, record_size, i as u64);
                    for k in 0..per {
                        let stream = streams[(k as usize) % streams.len()];
                        if producer.send(stream, pool.next()).is_err() {
                            return;
                        }
                    }
                    let _ = producer.flush();
                });
            }
        });
        started.elapsed()
    }

    /// Tears the rig down.
    pub fn stop(mut self) {
        self.producers.clear();
        if let Some(cluster) = self.cluster.take() {
            match cluster {
                AnyCluster::Kera(c) => c.shutdown(),
                AnyCluster::Kafka(c) => c.shutdown(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rig_ingests_and_stops() {
        let cfg = ExperimentConfig {
            brokers: 2,
            producers: 2,
            streams: 2,
            replication_factor: 2,
            chunk_size: 1024,
            worker_threads: 2,
            ..ExperimentConfig::default()
        };
        let rig = BenchRig::start(&cfg).unwrap();
        let d1 = rig.ingest(100);
        let d2 = rig.ingest(1000);
        assert!(d1 > Duration::ZERO && d2 > Duration::ZERO);
        rig.stop();
    }

    #[test]
    fn rig_works_for_kafka() {
        let cfg = ExperimentConfig {
            system: SystemKind::Kafka,
            brokers: 2,
            producers: 1,
            streams: 1,
            streamlets_per_stream: 2,
            replication_factor: 2,
            chunk_size: 1024,
            worker_threads: 2,
            kafka_fetch_wait: Duration::from_millis(20),
            ..ExperimentConfig::default()
        };
        let rig = BenchRig::start(&cfg).unwrap();
        let d = rig.ingest(500);
        assert!(d > Duration::ZERO);
        rig.stop();
    }
}
