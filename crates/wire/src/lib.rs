//! Binary wire formats shared by brokers, backups, clients and the
//! Kafka-style baseline.
//!
//! Layout of the crate:
//!
//! - [`codec`] — little-endian read/write primitives over `bytes` buffers;
//! - [`record`] — the multi-key-value record entry format (RAMCloud/SLIK
//!   style: a checksummed entry header, optional version and timestamp,
//!   zero or more keys, and a value);
//! - [`chunk`] — the chunk format: the unit producers batch records into
//!   and the unit the virtual log replicates (paper §IV-A, Fig. 3);
//! - [`frames`] — RPC envelopes: opcodes, request/response headers, status
//!   codes, and their TCP serialization;
//! - [`cursor`] — consumer cursors addressing a position inside a
//!   streamlet's chain of groups and segments;
//! - [`messages`] — typed encode/decode for every RPC body (produce,
//!   fetch, metadata, backup writes, follower fetch, recovery);
//! - [`meta`] — the coordinator's metadata-log records, snapshots and
//!   the election/log-replication bodies (DESIGN.md §10).
//!
//! All multi-byte integers are little-endian. Clients and brokers share
//! these formats so chunks flow from producer buffers into broker segments
//! and onto backups without re-serialization — the paper's "shared binary
//! data format" (§II-A).

pub mod chunk;
pub mod codec;
pub mod cursor;
pub mod frames;
pub mod messages;
pub mod meta;
pub mod record;
