//! The chunk format (paper §IV-A, Fig. 3).
//!
//! A chunk is the unit producers batch records into, the unit brokers
//! append to physical segments, and the unit virtual logs replicate. Each
//! chunk is tagged with the producer identifier and, once appended at the
//! broker, with the `[group, segment]` coordinates and the partition base
//! offset — these fields "are updated at append time" and are "essential at
//! recovery time" (paper §IV-B).
//!
//! On-wire layout (little-endian), `CHUNK_HEADER` = 48 bytes:
//!
//! ```text
//! +0   magic        u16  0x4B43 ("KC")
//! +2   flags        u16  bit 0: base_offset carries a producer sequence
//!                        tag (cleared at assignment); rest reserved
//! +4   chunk_len    u32  total length, header included
//! +8   checksum     u32  CRC32C over the record payload [48 .. chunk_len)
//! +12  producer     u32
//! +16  stream       u32
//! +20  streamlet    u32
//! +24  group        u32  UNASSIGNED until broker append
//! +28  segment      u32  UNASSIGNED until broker append
//! +32  base_offset  u64  first record's logical offset; assigned at append
//! +40  record_count u32
//! +44  reserved     u32
//! ```
//!
//! The checksum intentionally covers only the payload: broker-side
//! assignment patches header fields in place (inside the segment buffer)
//! without touching record bytes, so the payload checksum stays valid all
//! the way from the producer to the backups and the disk.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use bytes::{Bytes, BytesMut};
use kera_common::checksum::crc32c;
use kera_common::copymode::copy_data_plane;
use kera_common::ids::{GroupId, ProducerId, SegmentId, StreamId, StreamletId};
use kera_common::{KeraError, Result};
use parking_lot::Mutex;

use crate::record::{Record, RecordIter};

/// Serialized chunk header size.
pub const CHUNK_HEADER: usize = 48;
/// Chunk magic ("KC" little-endian).
pub const CHUNK_MAGIC: u16 = 0x4B43;
/// Sentinel for group/segment fields before broker assignment.
pub const UNASSIGNED: u32 = u32::MAX;

/// Flag bit: until broker assignment, `base_offset` carries a
/// producer-assigned sequence tag. Brokers use it to recognize a
/// retransmitted chunk and replay the original ack instead of appending
/// a second copy. Cleared by [`assign_in_place`], which overwrites the
/// field the flag refers to.
pub const FLAG_SEQ_TAGGED: u16 = 0x0001;

/// Byte offsets of the patchable header fields (used by the broker append
/// path and by recovery).
pub mod field {
    pub const FLAGS: usize = 2;
    pub const CHUNK_LEN: usize = 4;
    pub const GROUP: usize = 24;
    pub const SEGMENT: usize = 28;
    pub const BASE_OFFSET: usize = 32;
}

/// Parsed chunk header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkHeader {
    pub flags: u16,
    pub chunk_len: u32,
    pub checksum: u32,
    pub producer: ProducerId,
    pub stream: StreamId,
    pub streamlet: StreamletId,
    pub group: u32,
    pub segment: u32,
    pub base_offset: u64,
    pub record_count: u32,
}

impl ChunkHeader {
    /// Parses the fixed header at `buf[0..CHUNK_HEADER]`.
    pub fn parse(buf: &[u8]) -> Result<ChunkHeader> {
        if buf.len() < CHUNK_HEADER {
            return Err(KeraError::Protocol("chunk shorter than header".into()));
        }
        let magic = u16::from_le_bytes([buf[0], buf[1]]);
        if magic != CHUNK_MAGIC {
            return Err(KeraError::Protocol(format!("bad chunk magic {magic:#06x}")));
        }
        // Offsets are all below CHUNK_HEADER, which the length check
        // above guarantees is in bounds.
        let u32_at =
            |off: usize| u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]]);
        let chunk_len = u32_at(field::CHUNK_LEN);
        if (chunk_len as usize) < CHUNK_HEADER {
            return Err(KeraError::Protocol(format!("chunk_len {chunk_len} below header size")));
        }
        Ok(ChunkHeader {
            flags: u16::from_le_bytes([buf[field::FLAGS], buf[field::FLAGS + 1]]),
            chunk_len,
            checksum: u32_at(8),
            producer: ProducerId(u32_at(12)),
            stream: StreamId(u32_at(16)),
            streamlet: StreamletId(u32_at(20)),
            group: u32_at(field::GROUP),
            segment: u32_at(field::SEGMENT),
            base_offset: u64::from_le_bytes([
                buf[32], buf[33], buf[34], buf[35], buf[36], buf[37], buf[38], buf[39],
            ]),
            record_count: u32_at(40),
        })
    }

    #[inline]
    pub fn is_assigned(&self) -> bool {
        self.group != UNASSIGNED && self.segment != UNASSIGNED
    }

    /// The producer-assigned sequence tag, if the chunk carries one (only
    /// unassigned chunks do; assignment overwrites the field and clears
    /// the flag).
    #[inline]
    pub fn sequence_tag(&self) -> Option<u64> {
        (self.flags & FLAG_SEQ_TAGGED != 0).then_some(self.base_offset)
    }

    #[inline]
    pub fn group_id(&self) -> GroupId {
        GroupId(self.group)
    }

    #[inline]
    pub fn segment_id(&self) -> SegmentId {
        SegmentId(self.segment)
    }
}

/// A free list of chunk-sized buffers shared by the builders of one
/// producer (or one bench rig).
///
/// The zero-copy seal hands the builder's allocation to the sealed
/// [`Bytes`] outright, so without recycling every chunk costs one fresh
/// allocation. The pool closes the loop: once the last reference to a
/// sealed chunk drops back to the producer (the broker acked, the
/// request buffer is gone), [`BufferPool::release`] reclaims the
/// allocation via [`Bytes::try_into_mut`] and the next
/// [`BufferPool::acquire`] reuses it. Releasing a chunk that is still
/// referenced elsewhere simply drops our handle — correctness never
/// depends on the pool, it only saves allocator traffic.
#[derive(Debug)]
pub struct BufferPool {
    bufs: Mutex<Vec<BytesMut>>,
    capacity: usize,
    max_pooled: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    outstanding: AtomicI64,
}

/// Point-in-time [`BufferPool`] accounting, scraped by the
/// introspection plane. `wire` doesn't depend on `kera-obs`, so these
/// are plain atomics the pool's owner exports into its registry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquires served from the free list.
    pub hits: u64,
    /// Acquires that fell through to a fresh allocation.
    pub misses: u64,
    /// Buffers acquired and not yet released back (may briefly read
    /// negative under concurrent acquire/release races; clamped to 0).
    pub outstanding: i64,
    /// Free buffers currently pooled.
    pub pooled: usize,
}

impl BufferPool {
    /// `capacity` is the chunk size each buffer is sized for;
    /// `max_pooled` bounds how many free buffers the pool retains
    /// (excess releases just drop their allocation).
    pub fn new(capacity: usize, max_pooled: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool {
            bufs: Mutex::named("wire.pool", Vec::new()),
            capacity,
            max_pooled,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            outstanding: AtomicI64::new(0),
        })
    }

    /// Hit/miss/outstanding accounting since the pool was created.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            outstanding: self.outstanding.load(Ordering::Relaxed).max(0),
            pooled: self.pooled(),
        }
    }

    /// The chunk capacity buffers from this pool are sized for.
    #[inline]
    pub fn chunk_capacity(&self) -> usize {
        self.capacity
    }

    /// Number of free buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.bufs.lock().len()
    }

    /// A cleared buffer with at least `chunk_capacity` bytes of room —
    /// recycled if available, freshly allocated otherwise.
    pub fn acquire(&self) -> BytesMut {
        self.outstanding.fetch_add(1, Ordering::Relaxed);
        if let Some(mut b) = self.bufs.lock().pop() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            b.clear();
            return b;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        BytesMut::with_capacity(self.capacity)
    }

    /// Attempts to reclaim a sealed chunk's allocation for reuse.
    /// Succeeds (returns `true`) only when `sealed` is the last handle;
    /// otherwise the handle is dropped and the allocation stays with the
    /// remaining references.
    pub fn release(&self, sealed: Bytes) -> bool {
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
        let Ok(mut buf) = sealed.try_into_mut() else { return false };
        if buf.capacity() < self.capacity {
            return false; // undersized stray; not worth pooling
        }
        buf.clear();
        let mut bufs = self.bufs.lock();
        if bufs.len() >= self.max_pooled {
            return false;
        }
        bufs.push(buf);
        true
    }
}

/// Builds a chunk in a fixed-capacity reusable buffer.
///
/// Producers keep a pool of these (one set per streamlet, recycled between
/// requests — paper Fig. 6); `reset` rearms the builder without
/// reallocating.
///
/// The builder accumulates into a [`BytesMut`]; [`ChunkBuilder::seal`]
/// patches the header and *hands the allocation over* as an immutable
/// [`Bytes`] — the sealed chunk is never copied out. A builder created
/// via [`ChunkBuilder::with_pool`] refills from (and its sealed chunks
/// can be returned to) a shared [`BufferPool`].
#[derive(Debug)]
pub struct ChunkBuilder {
    buf: BytesMut,
    capacity: usize,
    record_count: u32,
    producer: ProducerId,
    stream: StreamId,
    streamlet: StreamletId,
    pool: Option<Arc<BufferPool>>,
}

impl ChunkBuilder {
    /// `capacity` is the configured chunk size (header included), e.g. 16 KB.
    pub fn new(capacity: usize, producer: ProducerId, stream: StreamId, streamlet: StreamletId) -> Self {
        Self::build(capacity, None, producer, stream, streamlet)
    }

    /// A builder drawing its buffers from `pool` (chunk capacity comes
    /// from the pool).
    pub fn with_pool(
        pool: Arc<BufferPool>,
        producer: ProducerId,
        stream: StreamId,
        streamlet: StreamletId,
    ) -> Self {
        Self::build(pool.chunk_capacity(), Some(pool), producer, stream, streamlet)
    }

    fn build(
        capacity: usize,
        pool: Option<Arc<BufferPool>>,
        producer: ProducerId,
        stream: StreamId,
        streamlet: StreamletId,
    ) -> Self {
        assert!(capacity > CHUNK_HEADER, "chunk capacity must exceed the header");
        assert!(capacity <= u32::MAX as usize, "chunk capacity must fit the u32 length field");
        let mut b = Self {
            buf: BytesMut::new(),
            capacity,
            record_count: 0,
            producer,
            stream,
            streamlet,
            pool,
        };
        b.reset_header();
        b
    }

    fn reset_header(&mut self) {
        self.buf.clear();
        // After a zero-copy seal the allocation has moved out with the
        // sealed chunk: refill from the pool (recycled ack'd chunk) or
        // reserve a fresh one.
        if self.buf.capacity() < self.capacity {
            match &self.pool {
                Some(pool) => self.buf = pool.acquire(),
                None => self.buf.reserve(self.capacity),
            }
        }
        self.buf.extend_from_slice(&CHUNK_MAGIC.to_le_bytes());
        self.buf.extend_from_slice(&0u16.to_le_bytes()); // flags
        self.buf.extend_from_slice(&0u32.to_le_bytes()); // chunk_len (patched)
        self.buf.extend_from_slice(&0u32.to_le_bytes()); // checksum (patched)
        self.buf.extend_from_slice(&self.producer.raw().to_le_bytes());
        self.buf.extend_from_slice(&self.stream.raw().to_le_bytes());
        self.buf.extend_from_slice(&self.streamlet.raw().to_le_bytes());
        self.buf.extend_from_slice(&UNASSIGNED.to_le_bytes()); // group
        self.buf.extend_from_slice(&UNASSIGNED.to_le_bytes()); // segment
        self.buf.extend_from_slice(&0u64.to_le_bytes()); // base_offset
        self.buf.extend_from_slice(&0u32.to_le_bytes()); // record_count (patched)
        self.buf.extend_from_slice(&0u32.to_le_bytes()); // reserved
        debug_assert_eq!(self.buf.len(), CHUNK_HEADER);
        self.record_count = 0;
    }

    /// Retargets the builder (builders are pooled and reused across
    /// streamlets) and clears any accumulated records.
    pub fn reset(&mut self, producer: ProducerId, stream: StreamId, streamlet: StreamletId) {
        self.producer = producer;
        self.stream = stream;
        self.streamlet = streamlet;
        self.reset_header();
    }

    #[inline]
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    #[inline]
    pub fn streamlet(&self) -> StreamletId {
        self.streamlet
    }

    #[inline]
    pub fn record_count(&self) -> u32 {
        self.record_count
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.record_count == 0
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Remaining payload capacity in bytes.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.capacity - self.buf.len()
    }

    /// True if a record of `encoded_len` bytes would fit.
    #[inline]
    pub fn fits(&self, encoded_len: usize) -> bool {
        self.buf.len() + encoded_len <= self.capacity
    }

    /// Appends a record; returns `false` (without modifying the chunk) if
    /// it does not fit. The caller then seals this chunk and retries on a
    /// fresh one.
    pub fn append(&mut self, record: &Record<'_>) -> bool {
        if !self.fits(record.encoded_len()) {
            return false;
        }
        record.encode_into(&mut self.buf);
        self.record_count += 1;
        true
    }

    /// Seals the chunk: patches length, record count and payload checksum,
    /// and returns the serialized bytes. The builder rearms itself (same
    /// producer/stream/streamlet) on a recycled or fresh buffer; call
    /// [`ChunkBuilder::reset`] only to retarget it.
    ///
    /// The sealed [`Bytes`] *is* the builder's accumulation buffer —
    /// the records were serialized directly into it by `append`, and
    /// every later hop (request pack, broker append, replication) takes
    /// slices of or copies from this one allocation. Under
    /// `KERA_COPY_DATA_PLANE=1` the seed's copy-out is restored for
    /// before/after benchmarking.
    pub fn seal(&mut self) -> Bytes {
        let chunk_len = self.buf.len() as u32;
        self.buf[field::CHUNK_LEN..field::CHUNK_LEN + 4]
            .copy_from_slice(&chunk_len.to_le_bytes());
        self.buf[40..44].copy_from_slice(&self.record_count.to_le_bytes());
        let crc = crc32c(&self.buf[CHUNK_HEADER..]);
        self.buf[8..12].copy_from_slice(&crc.to_le_bytes());
        let sealed = if copy_data_plane() {
            // lint: allow(no-hot-copy) — the seed's copy-out, kept
            // reachable behind KERA_COPY_DATA_PLANE=1 for the
            // before/after bench trajectory.
            Bytes::copy_from_slice(&self.buf)
        } else {
            self.buf.split().freeze()
        };
        self.reset_header();
        sealed
    }

    /// Seals the chunk with a producer-assigned sequence tag stashed in
    /// the (still unassigned) `base_offset` field. The broker uses the tag
    /// to suppress duplicate appends when a produce request is retried.
    pub fn seal_with_sequence(&mut self, seq: u64) -> Bytes {
        let flags = u16::from_le_bytes([self.buf[field::FLAGS], self.buf[field::FLAGS + 1]])
            | FLAG_SEQ_TAGGED;
        self.buf[field::FLAGS..field::FLAGS + 2].copy_from_slice(&flags.to_le_bytes());
        self.buf[field::BASE_OFFSET..field::BASE_OFFSET + 8].copy_from_slice(&seq.to_le_bytes());
        self.seal()
    }
}

/// Zero-copy view over one serialized chunk.
#[derive(Clone, Copy, Debug)]
pub struct ChunkView<'a> {
    buf: &'a [u8],
    header: ChunkHeader,
}

impl<'a> ChunkView<'a> {
    /// Parses the chunk starting at `buf[0]`; trims to `chunk_len`.
    pub fn parse(buf: &'a [u8]) -> Result<ChunkView<'a>> {
        let header = ChunkHeader::parse(buf)?;
        let len = header.chunk_len as usize;
        if len > buf.len() {
            return Err(KeraError::Protocol(format!(
                "chunk_len {len} exceeds buffer {}",
                buf.len()
            )));
        }
        Ok(ChunkView { buf: &buf[..len], header })
    }

    #[inline]
    pub fn header(&self) -> &ChunkHeader {
        &self.header
    }

    #[inline]
    pub fn bytes(&self) -> &'a [u8] {
        self.buf
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.payload().is_empty()
    }

    /// The packed record bytes.
    #[inline]
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[CHUNK_HEADER..]
    }

    /// Validates the payload checksum.
    pub fn verify(&self) -> Result<()> {
        let actual = crc32c(self.payload());
        if actual != self.header.checksum {
            return Err(KeraError::Corruption {
                what: "chunk",
                expected: self.header.checksum,
                actual,
            });
        }
        Ok(())
    }

    /// Iterates over the records in the chunk.
    pub fn records(&self) -> RecordIter<'a> {
        RecordIter::new(self.payload())
    }
}

/// Patches the broker-assigned fields of a serialized chunk in place.
///
/// `buf` must point at the start of the chunk (inside a segment buffer or a
/// request body). Only `group`, `segment` and `base_offset` are written; the
/// payload checksum is unaffected by design.
pub fn assign_in_place(buf: &mut [u8], group: GroupId, segment: SegmentId, base_offset: u64) {
    debug_assert!(buf.len() >= CHUNK_HEADER);
    buf[field::GROUP..field::GROUP + 4].copy_from_slice(&group.raw().to_le_bytes());
    buf[field::SEGMENT..field::SEGMENT + 4].copy_from_slice(&segment.raw().to_le_bytes());
    buf[field::BASE_OFFSET..field::BASE_OFFSET + 8].copy_from_slice(&base_offset.to_le_bytes());
    // The sequence tag lived in base_offset, which now holds the real
    // offset: clear the flag so stored/replicated chunks are canonical.
    let flags = u16::from_le_bytes([buf[field::FLAGS], buf[field::FLAGS + 1]]) & !FLAG_SEQ_TAGGED;
    buf[field::FLAGS..field::FLAGS + 2].copy_from_slice(&flags.to_le_bytes());
}

/// Iterates chunks packed back-to-back (a produce request body, a backup
/// replicated segment, an on-disk segment file).
pub struct ChunkIter<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ChunkIter<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Byte offset of the next chunk to be returned.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }
}

impl<'a> Iterator for ChunkIter<'a> {
    type Item = Result<ChunkView<'a>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.buf.len() {
            return None;
        }
        match ChunkView::parse(&self.buf[self.pos..]) {
            Ok(view) => {
                self.pos += view.len();
                Some(Ok(view))
            }
            Err(e) => {
                self.pos = self.buf.len();
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chunk(n_records: usize) -> Bytes {
        let mut b = ChunkBuilder::new(4096, ProducerId(9), StreamId(1), StreamletId(2));
        for i in 0..n_records {
            let v = vec![i as u8; 100];
            assert!(b.append(&Record::value_only(&v)));
        }
        b.seal()
    }

    #[test]
    fn build_parse_verify_roundtrip() {
        let bytes = sample_chunk(10);
        let view = ChunkView::parse(&bytes).unwrap();
        view.verify().unwrap();
        let h = view.header();
        assert_eq!(h.producer, ProducerId(9));
        assert_eq!(h.stream, StreamId(1));
        assert_eq!(h.streamlet, StreamletId(2));
        assert_eq!(h.record_count, 10);
        assert_eq!(h.chunk_len as usize, bytes.len());
        assert!(!h.is_assigned());
        let recs: Vec<_> = view.records().collect::<Result<_>>().unwrap();
        assert_eq!(recs.len(), 10);
        assert_eq!(recs[3].value(), &[3u8; 100][..]);
    }

    #[test]
    fn capacity_is_respected() {
        let mut b = ChunkBuilder::new(256, ProducerId(0), StreamId(0), StreamletId(0));
        let payload = [0u8; 100];
        let rec = Record::value_only(&payload);
        assert!(b.append(&rec)); // 112 bytes + 48 header = 160
        assert!(!b.append(&rec)); // would be 272 > 256
        assert_eq!(b.record_count(), 1);
        let sealed = b.seal();
        assert_eq!(sealed.len(), CHUNK_HEADER + 112);
    }

    #[test]
    fn reset_reuses_builder() {
        let mut b = ChunkBuilder::new(1024, ProducerId(1), StreamId(1), StreamletId(1));
        b.append(&Record::value_only(b"abc"));
        let first = b.seal();
        b.reset(ProducerId(2), StreamId(3), StreamletId(4));
        assert!(b.is_empty());
        b.append(&Record::value_only(b"xyz"));
        let second = b.seal();
        let h2 = *ChunkView::parse(&second).unwrap().header();
        assert_eq!(h2.producer, ProducerId(2));
        assert_eq!(h2.stream, StreamId(3));
        assert_eq!(h2.streamlet, StreamletId(4));
        assert_ne!(first, second);
    }

    #[test]
    fn assignment_patch_preserves_checksum() {
        let bytes = sample_chunk(3);
        let mut owned = bytes.to_vec();
        assign_in_place(&mut owned, GroupId(5), SegmentId(7), 12345);
        let view = ChunkView::parse(&owned).unwrap();
        view.verify().unwrap(); // payload checksum still valid
        let h = view.header();
        assert!(h.is_assigned());
        assert_eq!(h.group_id(), GroupId(5));
        assert_eq!(h.segment_id(), SegmentId(7));
        assert_eq!(h.base_offset, 12345);
    }

    #[test]
    fn payload_corruption_detected() {
        let bytes = sample_chunk(2);
        let mut owned = bytes.to_vec();
        owned[CHUNK_HEADER + 20] ^= 1;
        let view = ChunkView::parse(&owned).unwrap();
        assert!(view.verify().is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = sample_chunk(1);
        let mut owned = bytes.to_vec();
        owned[0] = 0;
        assert!(ChunkView::parse(&owned).is_err());
    }

    #[test]
    fn truncated_chunk_rejected() {
        let bytes = sample_chunk(1);
        assert!(ChunkView::parse(&bytes[..bytes.len() - 1]).is_err());
        assert!(ChunkView::parse(&bytes[..10]).is_err());
    }

    #[test]
    fn chunk_iter_walks_a_request_body() {
        let mut body = Vec::new();
        for n in 1..=4 {
            body.extend_from_slice(&sample_chunk(n));
        }
        let chunks: Vec<_> = ChunkIter::new(&body).collect::<Result<_>>().unwrap();
        assert_eq!(chunks.len(), 4);
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c.header().record_count as usize, i + 1);
            c.verify().unwrap();
        }
    }

    #[test]
    fn chunk_iter_position_tracks_bytes() {
        let one = sample_chunk(2);
        let mut body = one.to_vec();
        body.extend_from_slice(&one);
        let mut it = ChunkIter::new(&body);
        assert_eq!(it.position(), 0);
        it.next().unwrap().unwrap();
        assert_eq!(it.position(), one.len());
    }

    #[test]
    fn sequence_tag_roundtrip_and_cleared_on_assignment() {
        let mut b = ChunkBuilder::new(4096, ProducerId(9), StreamId(1), StreamletId(2));
        b.append(&Record::value_only(b"hello"));
        let bytes = b.seal_with_sequence(0xDEAD_BEEF_1234);
        let view = ChunkView::parse(&bytes).unwrap();
        view.verify().unwrap(); // tag lives in the header; checksum unaffected
        assert_eq!(view.header().sequence_tag(), Some(0xDEAD_BEEF_1234));
        assert!(!view.header().is_assigned());

        let mut owned = bytes.to_vec();
        assign_in_place(&mut owned, GroupId(5), SegmentId(7), 42);
        let assigned = ChunkView::parse(&owned).unwrap();
        assigned.verify().unwrap();
        let h = assigned.header();
        assert_eq!(h.sequence_tag(), None, "assignment consumes the tag");
        assert_eq!(h.base_offset, 42);
        assert_eq!(h.flags & FLAG_SEQ_TAGGED, 0);
    }

    #[test]
    fn untagged_chunks_have_no_sequence_tag() {
        let bytes = sample_chunk(1);
        assert_eq!(ChunkView::parse(&bytes).unwrap().header().sequence_tag(), None);
    }

    #[test]
    fn seal_hands_over_the_accumulation_buffer() {
        // Zero-copy contract: the sealed Bytes is the very allocation the
        // records were encoded into, not a copy of it.
        let mut b = ChunkBuilder::new(4096, ProducerId(1), StreamId(1), StreamletId(1));
        b.append(&Record::value_only(b"zero-copy"));
        let ptr = b.buf.as_ref().as_ptr();
        let sealed = b.seal();
        assert_eq!(sealed.as_ref().as_ptr(), ptr);
        // The builder rearmed itself: a second chunk builds immediately.
        assert!(b.is_empty());
        b.append(&Record::value_only(b"next"));
        let second = b.seal();
        ChunkView::parse(&second).unwrap().verify().unwrap();
    }

    #[test]
    fn pool_recycles_released_chunks() {
        let pool = BufferPool::new(4096, 4);
        let mut b = ChunkBuilder::with_pool(Arc::clone(&pool), ProducerId(1), StreamId(1), StreamletId(1));
        b.append(&Record::value_only(b"pooled"));
        let sealed = b.seal();
        let ptr = sealed.as_ref().as_ptr();

        // While the sealed chunk is shared, release refuses to reclaim.
        let shared = sealed.clone();
        assert!(!pool.release(shared));
        assert_eq!(pool.pooled(), 0);

        // Last handle: the allocation goes back to the pool...
        assert!(pool.release(sealed));
        assert_eq!(pool.pooled(), 1);

        // ...and the next rearm reuses it without allocating.
        b.append(&Record::value_only(b"again"));
        let _second = b.seal(); // consumes the builder's current buffer
        b.append(&Record::value_only(b"third"));
        assert_eq!(b.buf.as_ref().as_ptr(), ptr, "rearm should reuse the pooled allocation");
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn pool_bounds_retained_buffers() {
        let pool = BufferPool::new(256, 1);
        let a = BytesMut::with_capacity(256).freeze();
        let b = BytesMut::with_capacity(256).freeze();
        assert!(pool.release(a));
        assert!(!pool.release(b), "pool at max_pooled drops the extra buffer");
        assert_eq!(pool.pooled(), 1);
        // Undersized buffers are not pooled.
        assert!(!pool.release(Bytes::from(vec![0u8; 8])));
    }

    #[test]
    fn pool_stats_track_hits_misses_outstanding() {
        let pool = BufferPool::new(256, 4);
        let a = pool.acquire(); // empty pool -> miss
        let b = pool.acquire(); // miss
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.outstanding), (0, 2, 2));

        assert!(pool.release(a.freeze()));
        let s = pool.stats();
        assert_eq!((s.outstanding, s.pooled), (1, 1));

        let c = pool.acquire(); // served from the free list -> hit
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.outstanding, s.pooled), (1, 2, 2, 0));
        drop(b);
        drop(c);
    }

    #[test]
    fn empty_chunk_seals_and_parses() {
        let mut b = ChunkBuilder::new(128, ProducerId(0), StreamId(0), StreamletId(0));
        let sealed = b.seal();
        let view = ChunkView::parse(&sealed).unwrap();
        view.verify().unwrap();
        assert_eq!(view.header().record_count, 0);
        assert!(view.is_empty());
        assert_eq!(view.records().count(), 0);
    }
}
