//! The record entry format (paper §IV-A).
//!
//! > "Each record of a stream is represented by an entry header which has a
//! > checksum covering everything but this field; the record is defined by
//! > several keys (possibly none) and its value, similar to the
//! > multi-key-value data format used in RAMCloud. The record's entry
//! > header contains an attribute to optionally define a version and a
//! > timestamp field."
//!
//! On-wire layout (little-endian):
//!
//! ```text
//! +0   checksum   u32   CRC32C over bytes [4 .. entry_len)
//! +4   entry_len  u32   total entry length, header included
//! +8   flags      u8    bit0 = has version, bit1 = has timestamp
//! +9   num_keys   u8
//! +10  reserved   u16   must be zero
//! [version    u64]      present iff flags bit0
//! [timestamp  u64]      present iff flags bit1
//! [key_len    u16] × num_keys
//! [key bytes  ...] × num_keys
//! [value bytes ...]     entry_len - everything above
//! ```

use bytes::BufMut;
use kera_common::checksum::crc32c;
use kera_common::{KeraError, Result};

/// Fixed part of the entry header.
pub const RECORD_FIXED_HEADER: usize = 12;
const FLAG_VERSION: u8 = 0b01;
const FLAG_TIMESTAMP: u8 = 0b10;

/// Everything needed to serialize one record.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Record<'a> {
    pub version: Option<u64>,
    pub timestamp: Option<u64>,
    pub keys: Vec<&'a [u8]>,
    pub value: &'a [u8],
}

impl<'a> Record<'a> {
    /// A plain non-keyed record — what the paper's evaluation workload uses
    /// (100-byte non-keyed records).
    pub fn value_only(value: &'a [u8]) -> Self {
        Self { version: None, timestamp: None, keys: Vec::new(), value }
    }

    /// Serialized size of this record.
    pub fn encoded_len(&self) -> usize {
        RECORD_FIXED_HEADER
            + self.version.map_or(0, |_| 8)
            + self.timestamp.map_or(0, |_| 8)
            + self.keys.len() * 2
            + self.keys.iter().map(|k| k.len()).sum::<usize>()
            + self.value.len()
    }

    /// Appends the serialized entry to `out`. Returns the entry length.
    ///
    /// Generic over the sink so the producer's chunk builder (a pooled
    /// `BytesMut` that is later frozen and shipped without copying) and
    /// plain `Vec<u8>` buffers share one encoder — the record is
    /// serialized exactly once, at this call.
    pub fn encode_into<B>(&self, out: &mut B) -> usize
    where
        B: BufMut + AsRef<[u8]> + AsMut<[u8]>,
    {
        let start = out.as_ref().len();
        let entry_len = self.encoded_len();
        out.put_slice(&[0u8; 4]); // checksum patched below
        out.put_u32_le(entry_len as u32);
        let mut flags = 0u8;
        if self.version.is_some() {
            flags |= FLAG_VERSION;
        }
        if self.timestamp.is_some() {
            flags |= FLAG_TIMESTAMP;
        }
        out.put_u8(flags);
        out.put_u8(self.keys.len() as u8);
        out.put_slice(&[0u8; 2]); // reserved
        if let Some(v) = self.version {
            out.put_u64_le(v);
        }
        if let Some(t) = self.timestamp {
            out.put_u64_le(t);
        }
        for k in &self.keys {
            out.put_u16_le(k.len() as u16);
        }
        for k in &self.keys {
            out.put_slice(k);
        }
        out.put_slice(self.value);
        debug_assert_eq!(out.as_ref().len() - start, entry_len);
        // Checksum covers everything but the checksum field itself
        // (paper: "a checksum covering everything but this field").
        let buf = out.as_mut();
        let crc = crc32c(&buf[start + 4..start + entry_len]);
        buf[start..start + 4].copy_from_slice(&crc.to_le_bytes());
        entry_len
    }
}

/// Zero-copy view over one serialized record.
#[derive(Clone, Copy, Debug)]
pub struct RecordView<'a> {
    buf: &'a [u8], // exactly one entry
    flags: u8,
    num_keys: u8,
}

impl<'a> RecordView<'a> {
    /// Parses the record starting at `buf[0]`. `buf` may extend beyond the
    /// entry; the returned view is trimmed to `entry_len`.
    pub fn parse(buf: &'a [u8]) -> Result<RecordView<'a>> {
        if buf.len() < RECORD_FIXED_HEADER {
            return Err(KeraError::Protocol("record shorter than fixed header".into()));
        }
        let entry_len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
        if entry_len < RECORD_FIXED_HEADER || entry_len > buf.len() {
            return Err(KeraError::Protocol(format!(
                "record entry_len {entry_len} out of bounds (buffer {})",
                buf.len()
            )));
        }
        let flags = buf[8];
        let num_keys = buf[9];
        let view = RecordView { buf: &buf[..entry_len], flags, num_keys };
        // Structural validation: variable sections must fit.
        if view.var_header_len() > entry_len {
            return Err(KeraError::Protocol("record variable header overflows entry".into()));
        }
        let keys_total: usize =
            (0..num_keys).map(|i| view.key_len(i as usize)).sum::<usize>();
        if view.var_header_len() + keys_total > entry_len {
            return Err(KeraError::Protocol("record keys overflow entry".into()));
        }
        Ok(view)
    }

    #[inline]
    pub fn entry_len(&self) -> usize {
        self.buf.len()
    }

    #[inline]
    pub fn stored_checksum(&self) -> u32 {
        u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]])
    }

    /// Recomputes the checksum and compares against the stored one.
    pub fn verify(&self) -> Result<()> {
        let actual = crc32c(&self.buf[4..]);
        let expected = self.stored_checksum();
        if actual != expected {
            return Err(KeraError::Corruption { what: "record", expected, actual });
        }
        Ok(())
    }

    #[inline]
    fn has_version(&self) -> bool {
        self.flags & FLAG_VERSION != 0
    }

    #[inline]
    fn has_timestamp(&self) -> bool {
        self.flags & FLAG_TIMESTAMP != 0
    }

    /// Byte length of the fixed header plus optional fields and the key
    /// length table (i.e. offset of the first key byte).
    fn var_header_len(&self) -> usize {
        RECORD_FIXED_HEADER
            + if self.has_version() { 8 } else { 0 }
            + if self.has_timestamp() { 8 } else { 0 }
            + self.num_keys as usize * 2
    }

    pub fn version(&self) -> Option<u64> {
        if !self.has_version() {
            return None;
        }
        let off = RECORD_FIXED_HEADER;
        let bytes = self.buf.get(off..off + 8)?;
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }

    pub fn timestamp(&self) -> Option<u64> {
        if !self.has_timestamp() {
            return None;
        }
        let off = RECORD_FIXED_HEADER + if self.has_version() { 8 } else { 0 };
        let bytes = self.buf.get(off..off + 8)?;
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }

    #[inline]
    pub fn num_keys(&self) -> usize {
        self.num_keys as usize
    }

    fn key_len(&self, i: usize) -> usize {
        let table = RECORD_FIXED_HEADER
            + if self.has_version() { 8 } else { 0 }
            + if self.has_timestamp() { 8 } else { 0 };
        let off = table + i * 2;
        u16::from_le_bytes([self.buf[off], self.buf[off + 1]]) as usize
    }

    /// The `i`-th key.
    pub fn key(&self, i: usize) -> Option<&'a [u8]> {
        if i >= self.num_keys() {
            return None;
        }
        let mut start = self.var_header_len();
        for j in 0..i {
            start += self.key_len(j);
        }
        Some(&self.buf[start..start + self.key_len(i)])
    }

    /// The record value (everything after the keys).
    pub fn value(&self) -> &'a [u8] {
        let mut start = self.var_header_len();
        for i in 0..self.num_keys() {
            start += self.key_len(i);
        }
        &self.buf[start..]
    }
}

/// Iterates the records packed back-to-back in `buf` (a chunk payload).
pub struct RecordIter<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> RecordIter<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
}

impl<'a> Iterator for RecordIter<'a> {
    type Item = Result<RecordView<'a>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.buf.len() {
            return None;
        }
        match RecordView::parse(&self.buf[self.pos..]) {
            Ok(view) => {
                self.pos += view.entry_len();
                Some(Ok(view))
            }
            Err(e) => {
                self.pos = self.buf.len(); // stop iteration after an error
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: &Record<'_>) -> Vec<u8> {
        let mut out = Vec::new();
        let n = rec.encode_into(&mut out);
        assert_eq!(n, out.len());
        assert_eq!(n, rec.encoded_len());
        out
    }

    #[test]
    fn value_only_roundtrip() {
        let rec = Record::value_only(b"payload-bytes");
        let buf = roundtrip(&rec);
        let view = RecordView::parse(&buf).unwrap();
        view.verify().unwrap();
        assert_eq!(view.value(), b"payload-bytes");
        assert_eq!(view.num_keys(), 0);
        assert_eq!(view.version(), None);
        assert_eq!(view.timestamp(), None);
    }

    #[test]
    fn full_featured_roundtrip() {
        let rec = Record {
            version: Some(7),
            timestamp: Some(1_625_000_000_000),
            keys: vec![b"user-42".as_slice(), b"region-eu".as_slice()],
            value: b"the-value",
        };
        let buf = roundtrip(&rec);
        let view = RecordView::parse(&buf).unwrap();
        view.verify().unwrap();
        assert_eq!(view.version(), Some(7));
        assert_eq!(view.timestamp(), Some(1_625_000_000_000));
        assert_eq!(view.num_keys(), 2);
        assert_eq!(view.key(0).unwrap(), b"user-42");
        assert_eq!(view.key(1).unwrap(), b"region-eu");
        assert_eq!(view.key(2), None);
        assert_eq!(view.value(), b"the-value");
    }

    #[test]
    fn empty_value_and_empty_key() {
        let rec = Record { version: None, timestamp: None, keys: vec![b"".as_slice()], value: b"" };
        let buf = roundtrip(&rec);
        let view = RecordView::parse(&buf).unwrap();
        view.verify().unwrap();
        assert_eq!(view.key(0).unwrap(), b"");
        assert_eq!(view.value(), b"");
    }

    #[test]
    fn corruption_detected_anywhere_past_checksum_field() {
        let rec = Record::value_only(b"sensitive");
        let buf = roundtrip(&rec);
        for i in 4..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            // A flip in entry_len (or other structural fields) may already
            // fail parsing; otherwise the checksum must catch it.
            let detected = match RecordView::parse(&bad) {
                Err(_) => true,
                Ok(view) => view.verify().is_err(),
            };
            assert!(detected, "flip at byte {i} undetected");
        }
    }

    #[test]
    fn truncated_parse_fails() {
        let rec = Record::value_only(b"0123456789");
        let buf = roundtrip(&rec);
        assert!(RecordView::parse(&buf[..buf.len() - 1]).is_err());
        assert!(RecordView::parse(&buf[..4]).is_err());
    }

    #[test]
    fn iterator_walks_consecutive_records() {
        let mut buf = Vec::new();
        for i in 0..10u8 {
            Record::value_only(&[i; 5]).encode_into(&mut buf);
        }
        let recs: Vec<_> = RecordIter::new(&buf).collect::<Result<_>>().unwrap();
        assert_eq!(recs.len(), 10);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.value(), &[i as u8; 5]);
            r.verify().unwrap();
        }
    }

    #[test]
    fn iterator_surfaces_error_then_stops() {
        let mut buf = Vec::new();
        Record::value_only(b"ok").encode_into(&mut buf);
        buf.extend_from_slice(&[0xff; 3]); // garbage tail
        let mut it = RecordIter::new(&buf);
        assert!(it.next().unwrap().is_ok());
        assert!(it.next().unwrap().is_err());
        assert!(it.next().is_none());
    }

    #[test]
    fn entry_len_zero_is_rejected_not_infinite_loop() {
        let mut buf = vec![0u8; RECORD_FIXED_HEADER];
        // entry_len = 0
        buf[4..8].copy_from_slice(&0u32.to_le_bytes());
        assert!(RecordView::parse(&buf).is_err());
    }

    #[test]
    fn parse_trims_to_entry_len() {
        let mut buf = Vec::new();
        Record::value_only(b"first").encode_into(&mut buf);
        let first_len = buf.len();
        Record::value_only(b"second").encode_into(&mut buf);
        let view = RecordView::parse(&buf).unwrap();
        assert_eq!(view.entry_len(), first_len);
        assert_eq!(view.value(), b"first");
    }
}
