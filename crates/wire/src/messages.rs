//! Typed request/response bodies for every opcode.
//!
//! Each message implements `encode() -> Bytes` and `decode(&[u8]) ->
//! Result<Self>`; bulk chunk data is carried as packed chunk bytes (see
//! [`crate::chunk`]) so the same buffer travels producer → broker →
//! backup → disk without re-serialization.

use bytes::Bytes;
use kera_common::config::{ReplicationConfig, StreamConfig, VirtualLogPolicy};
use kera_common::copymode::copy_data_plane;
use kera_common::ids::{
    ConsumerId, NodeId, ProducerId, StreamId, StreamletId, VirtualLogId, VirtualSegmentId,
};
use kera_common::{KeraError, Result};

use crate::codec::{Reader, Writer};
use crate::cursor::SlotCursor;

// ---------------------------------------------------------------------------
// StreamConfig encoding (shared by several messages)
// ---------------------------------------------------------------------------

pub fn encode_stream_config(w: &mut Writer, c: &StreamConfig) {
    w.u32(c.id.raw())
        .u32(c.streamlets)
        .u32(c.active_groups)
        .u32(c.segments_per_group)
        .u64(c.segment_size as u64)
        .u32(c.replication.factor)
        .u64(c.replication.vseg_size as u64);
    match c.replication.policy {
        VirtualLogPolicy::SharedPerBroker(n) => {
            w.u8(0).u32(n);
        }
        VirtualLogPolicy::PerStreamlet => {
            w.u8(1).u32(0);
        }
        VirtualLogPolicy::PerSubPartition => {
            w.u8(2).u32(0);
        }
    }
}

pub fn decode_stream_config(r: &mut Reader<'_>) -> Result<StreamConfig> {
    let id = StreamId(r.u32()?);
    let streamlets = r.u32()?;
    let active_groups = r.u32()?;
    let segments_per_group = r.u32()?;
    let segment_size = r.u64()? as usize;
    let factor = r.u32()?;
    let vseg_size = r.u64()? as usize;
    let policy = match (r.u8()?, r.u32()?) {
        (0, n) => VirtualLogPolicy::SharedPerBroker(n),
        (1, _) => VirtualLogPolicy::PerStreamlet,
        (2, _) => VirtualLogPolicy::PerSubPartition,
        (p, _) => return Err(KeraError::Protocol(format!("unknown vlog policy {p}"))),
    };
    Ok(StreamConfig {
        id,
        streamlets,
        active_groups,
        segments_per_group,
        segment_size,
        replication: ReplicationConfig { factor, policy, vseg_size },
    })
}

// ---------------------------------------------------------------------------
// CreateStream / GetMetadata / HostStream
// ---------------------------------------------------------------------------

/// Client → coordinator: create a stream.
#[derive(Clone, Debug, PartialEq)]
pub struct CreateStreamRequest {
    pub config: StreamConfig,
}

impl CreateStreamRequest {
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        encode_stream_config(&mut w, &self.config);
        w.finish()
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf);
        Ok(Self { config: decode_stream_config(&mut r)? })
    }
}

/// Where each streamlet lives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamletPlacement {
    pub streamlet: StreamletId,
    pub broker: NodeId,
}

/// Coordinator → client and coordinator → broker: full stream metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamMetadata {
    pub config: StreamConfig,
    pub placements: Vec<StreamletPlacement>,
}

impl StreamMetadata {
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        self.encode_into(&mut w);
        w.finish()
    }

    pub fn encode_into(&self, w: &mut Writer) {
        encode_stream_config(w, &self.config);
        w.u32(self.placements.len() as u32);
        for p in &self.placements {
            w.u32(p.streamlet.raw()).u32(p.broker.raw());
        }
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf);
        Self::decode_from(&mut r)
    }

    pub fn decode_from(r: &mut Reader<'_>) -> Result<Self> {
        let config = decode_stream_config(r)?;
        let n = r.collection_len(8)?;
        let mut placements = Vec::with_capacity(n);
        for _ in 0..n {
            placements.push(StreamletPlacement {
                streamlet: StreamletId(r.u32()?),
                broker: NodeId(r.u32()?),
            });
        }
        Ok(Self { config, placements })
    }

    /// Broker responsible for `streamlet`.
    pub fn broker_of(&self, streamlet: StreamletId) -> Option<NodeId> {
        self.placements.iter().find(|p| p.streamlet == streamlet).map(|p| p.broker)
    }

    /// Distinct brokers serving this stream, in placement order.
    pub fn brokers(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        for p in &self.placements {
            if !out.contains(&p.broker) {
                out.push(p.broker);
            }
        }
        out
    }
}

/// Client → coordinator: look up a stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GetMetadataRequest {
    pub stream: StreamId,
}

impl GetMetadataRequest {
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        w.u32(self.stream.raw());
        w.finish()
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        Ok(Self { stream: StreamId(Reader::new(buf).u32()?) })
    }
}

/// Roles a node can play for a hosted streamlet (Kafka baseline uses
/// followers; KerA brokers are always leaders and replicate via vlogs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ReplicaRole {
    Leader = 0,
    Follower = 1,
}

/// Coordinator → broker: host (a subset of) a stream's streamlets.
#[derive(Clone, Debug, PartialEq)]
pub struct HostStreamRequest {
    pub metadata: StreamMetadata,
    /// Streamlets this node must host and its role for each. For
    /// followers, `leader` is the node to fetch from.
    pub assignments: Vec<HostAssignment>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HostAssignment {
    pub streamlet: StreamletId,
    pub role: ReplicaRole,
    pub leader: NodeId,
}

impl HostStreamRequest {
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        self.metadata.encode_into(&mut w);
        w.u32(self.assignments.len() as u32);
        for a in &self.assignments {
            w.u32(a.streamlet.raw()).u8(a.role as u8).u32(a.leader.raw());
        }
        w.finish()
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf);
        let metadata = StreamMetadata::decode_from(&mut r)?;
        let n = r.collection_len(9)?;
        let mut assignments = Vec::with_capacity(n);
        for _ in 0..n {
            let streamlet = StreamletId(r.u32()?);
            let role = match r.u8()? {
                0 => ReplicaRole::Leader,
                1 => ReplicaRole::Follower,
                x => return Err(KeraError::Protocol(format!("unknown replica role {x}"))),
            };
            let leader = NodeId(r.u32()?);
            assignments.push(HostAssignment { streamlet, role, leader });
        }
        Ok(Self { metadata, assignments })
    }
}

// ---------------------------------------------------------------------------
// Produce
// ---------------------------------------------------------------------------

/// Producer → broker: a request carrying packed chunks (paper Fig. 3:
/// "each request contains multiple chunks"). Chunks may belong to
/// different streams hosted on the same broker.
#[derive(Clone, Debug)]
pub struct ProduceRequest {
    pub producer: ProducerId,
    /// Set for recovery re-ingestion: chunks already carry group/segment
    /// assignments that must be preserved.
    pub recovery: bool,
    pub chunk_count: u32,
    /// Packed serialized chunks.
    pub chunks: Bytes,
}

impl ProduceRequest {
    /// Serialized header size (producer + recovery flag + chunk count).
    pub const HEADER_LEN: usize = 9;

    pub fn encode(&self) -> Bytes {
        let mut w = Writer::with_capacity(Self::HEADER_LEN + self.chunks.len());
        w.u32(self.producer.raw())
            .u8(self.recovery as u8)
            .u32(self.chunk_count)
            .bytes(&self.chunks);
        w.finish()
    }

    /// Packs the request header and the sealed chunks into the request
    /// body in one pass — each chunk's bytes are copied exactly once, out
    /// of its seal allocation into the body the transport ships. (The
    /// seed path copied twice: chunks → `chunks` field → `encode`.)
    pub fn encode_chunks(producer: ProducerId, recovery: bool, chunks: &[Bytes]) -> Bytes {
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        let mut w = Writer::with_capacity(Self::HEADER_LEN + total);
        w.u32(producer.raw()).u8(recovery as u8).u32(chunks.len() as u32);
        for c in chunks {
            w.bytes(c);
        }
        w.finish()
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf);
        let producer = ProducerId(r.u32()?);
        let recovery = r.u8()? != 0;
        let chunk_count = r.u32()?;
        let chunks = Bytes::copy_from_slice(r.bytes(r.remaining())?);
        Ok(Self { producer, recovery, chunk_count, chunks })
    }

    /// Like [`ProduceRequest::decode`], but `chunks` is a zero-copy slice
    /// of the request payload — the broker appends from the same
    /// allocation the transport received into.
    pub fn decode_bytes(buf: &Bytes) -> Result<Self> {
        if copy_data_plane() {
            return Self::decode(buf);
        }
        let mut r = Reader::new(buf);
        let producer = ProducerId(r.u32()?);
        let recovery = r.u8()? != 0;
        let chunk_count = r.u32()?;
        let chunks = buf.slice(r.position()..);
        Ok(Self { producer, recovery, chunk_count, chunks })
    }
}

/// Per-chunk assignment info returned to the producer (enables
/// exactly-once dedup on retry and offset bookkeeping).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkAck {
    pub stream: StreamId,
    pub streamlet: StreamletId,
    pub group: u32,
    pub segment: u32,
    pub base_offset: u64,
    pub records: u32,
}

#[derive(Clone, Debug, Default)]
pub struct ProduceResponse {
    pub acks: Vec<ChunkAck>,
}

impl ProduceResponse {
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::with_capacity(4 + self.acks.len() * 28);
        w.u32(self.acks.len() as u32);
        for a in &self.acks {
            w.u32(a.stream.raw())
                .u32(a.streamlet.raw())
                .u32(a.group)
                .u32(a.segment)
                .u64(a.base_offset)
                .u32(a.records);
        }
        w.finish()
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf);
        let n = r.collection_len(28)?;
        let mut acks = Vec::with_capacity(n);
        for _ in 0..n {
            acks.push(ChunkAck {
                stream: StreamId(r.u32()?),
                streamlet: StreamletId(r.u32()?),
                group: r.u32()?,
                segment: r.u32()?,
                base_offset: r.u64()?,
                records: r.u32()?,
            });
        }
        Ok(Self { acks })
    }
}

// ---------------------------------------------------------------------------
// Fetch (consumers)
// ---------------------------------------------------------------------------

/// One streamlet slot the consumer wants data from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FetchEntry {
    pub stream: StreamId,
    pub streamlet: StreamletId,
    pub slot: u32,
    pub cursor: SlotCursor,
    pub max_bytes: u32,
}

/// Consumer → broker: pull durable chunks for a set of slots
/// ("the Requests thread builds one request for each broker and pulls one
/// chunk for each streamlet", paper Fig. 7).
#[derive(Clone, Debug, Default)]
pub struct FetchRequest {
    pub consumer: ConsumerId,
    pub entries: Vec<FetchEntry>,
}

impl FetchRequest {
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::with_capacity(8 + self.entries.len() * 28);
        w.u32(self.consumer.raw()).u32(self.entries.len() as u32);
        for e in &self.entries {
            w.u32(e.stream.raw()).u32(e.streamlet.raw()).u32(e.slot);
            e.cursor.encode(&mut w);
            w.u32(e.max_bytes);
        }
        w.finish()
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf);
        let consumer = ConsumerId(r.u32()?);
        let n = r.collection_len(28)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(FetchEntry {
                stream: StreamId(r.u32()?),
                streamlet: StreamletId(r.u32()?),
                slot: r.u32()?,
                cursor: SlotCursor::decode(&mut r)?,
                max_bytes: r.u32()?,
            });
        }
        Ok(Self { consumer, entries })
    }
}

/// Data (possibly empty) returned for one fetch entry; `cursor` is the
/// position to use on the next fetch.
#[derive(Clone, Debug)]
pub struct FetchResult {
    pub stream: StreamId,
    pub streamlet: StreamletId,
    pub slot: u32,
    pub cursor: SlotCursor,
    /// Packed chunks readable up to the durable head.
    pub data: Bytes,
}

#[derive(Clone, Debug, Default)]
pub struct FetchResponse {
    pub results: Vec<FetchResult>,
}

impl FetchResponse {
    pub fn encode(&self) -> Result<Bytes> {
        let total: usize = self.results.iter().map(|x| 32 + x.data.len()).sum();
        let mut w = Writer::with_capacity(4 + total);
        w.u32(self.results.len() as u32);
        for x in &self.results {
            w.u32(x.stream.raw()).u32(x.streamlet.raw()).u32(x.slot);
            x.cursor.encode(&mut w);
            w.len_prefixed(&x.data)?;
        }
        Ok(w.finish())
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf);
        let n = r.collection_len(28)?;
        let mut results = Vec::with_capacity(n);
        for _ in 0..n {
            let stream = StreamId(r.u32()?);
            let streamlet = StreamletId(r.u32()?);
            let slot = r.u32()?;
            let cursor = SlotCursor::decode(&mut r)?;
            let data = Bytes::copy_from_slice(r.len_prefixed()?);
            results.push(FetchResult { stream, streamlet, slot, cursor, data });
        }
        Ok(Self { results })
    }

    /// Like [`FetchResponse::decode`], but each result's `data` is a
    /// zero-copy slice of the response payload (the consumer iterates the
    /// chunks in place).
    pub fn decode_bytes(buf: &Bytes) -> Result<Self> {
        if copy_data_plane() {
            return Self::decode(buf);
        }
        let mut r = Reader::new(buf);
        let n = r.collection_len(28)?;
        let mut results = Vec::with_capacity(n);
        for _ in 0..n {
            let stream = StreamId(r.u32()?);
            let streamlet = StreamletId(r.u32()?);
            let slot = r.u32()?;
            let cursor = SlotCursor::decode(&mut r)?;
            let start = r.position() + 4;
            let data_len = r.len_prefixed()?.len();
            let data = buf.slice(start..start + data_len);
            results.push(FetchResult { stream, streamlet, slot, cursor, data });
        }
        Ok(Self { results })
    }
}

// ---------------------------------------------------------------------------
// BackupWrite (virtual log replication)
// ---------------------------------------------------------------------------

/// Flags on a backup write.
pub mod backup_flags {
    /// First batch of this virtual segment: the backup must open a fresh
    /// replicated segment.
    pub const OPEN: u8 = 0b01;
    /// Last batch: the virtual segment is closed; `vseg_checksum` is valid
    /// and must be verified and persisted.
    pub const CLOSE: u8 = 0b10;
}

/// Broker → backup: replicate a batch of chunks belonging to one virtual
/// segment. The consolidated RPC at the heart of the paper: one such
/// message can carry chunks of many streams' partitions.
#[derive(Clone, Debug)]
pub struct BackupWriteRequest {
    pub source_broker: NodeId,
    pub vlog: VirtualLogId,
    pub vseg: VirtualSegmentId,
    /// Byte offset of this batch within the replicated virtual segment;
    /// lets the backup detect duplicates/reordering (idempotent retries).
    pub vseg_offset: u32,
    pub flags: u8,
    /// Checksum-of-chunk-checksums for the whole virtual segment; valid
    /// only when `flags & CLOSE`.
    pub vseg_checksum: u32,
    pub chunk_count: u32,
    /// Packed serialized chunks (already broker-assigned).
    pub chunks: Bytes,
}

impl BackupWriteRequest {
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::with_capacity(33 + self.chunks.len());
        w.u32(self.source_broker.raw())
            .u32(self.vlog.raw())
            .u64(self.vseg.raw())
            .u32(self.vseg_offset)
            .u8(self.flags)
            .u32(self.vseg_checksum)
            .u32(self.chunk_count)
            .bytes(&self.chunks);
        w.finish()
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf);
        let source_broker = NodeId(r.u32()?);
        let vlog = VirtualLogId(r.u32()?);
        let vseg = VirtualSegmentId(r.u64()?);
        let vseg_offset = r.u32()?;
        let flags = r.u8()?;
        let vseg_checksum = r.u32()?;
        let chunk_count = r.u32()?;
        let chunks = Bytes::copy_from_slice(r.bytes(r.remaining())?);
        Ok(Self { source_broker, vlog, vseg, vseg_offset, flags, vseg_checksum, chunk_count, chunks })
    }

    /// Like [`BackupWriteRequest::decode`], but `chunks` is a zero-copy
    /// slice of the request payload — the backup retains the slice
    /// instead of copying the batch out of the frame.
    pub fn decode_bytes(buf: &Bytes) -> Result<Self> {
        if copy_data_plane() {
            return Self::decode(buf);
        }
        let mut r = Reader::new(buf);
        let source_broker = NodeId(r.u32()?);
        let vlog = VirtualLogId(r.u32()?);
        let vseg = VirtualSegmentId(r.u64()?);
        let vseg_offset = r.u32()?;
        let flags = r.u8()?;
        let vseg_checksum = r.u32()?;
        let chunk_count = r.u32()?;
        let chunks = buf.slice(r.position()..);
        Ok(Self { source_broker, vlog, vseg, vseg_offset, flags, vseg_checksum, chunk_count, chunks })
    }
}

/// A fully-encoded [`BackupWriteRequest`] body, built once by the virtual
/// log's gather path and shipped verbatim to every backup.
///
/// The seed pipeline copied each replication batch twice: segment buffers
/// → a gathered `chunks` buffer → the encoded request body. `pack`
/// collapses that to a single copy (segment slices straight into the
/// body); the same `Bytes` then rides the envelope to `r` backups without
/// further copies, and retries re-send it instead of re-encoding.
#[derive(Clone, Debug)]
pub struct EncodedBackupWrite {
    body: Bytes,
}

impl EncodedBackupWrite {
    /// Gathers `chunks` (slices of the broker's segment buffers) behind a
    /// serialized request header in one pass. `total_chunk_bytes` sizes
    /// the single allocation up front.
    #[allow(clippy::too_many_arguments)] // mirrors the wire header, field for field
    pub fn pack<'a>(
        source_broker: NodeId,
        vlog: VirtualLogId,
        vseg: VirtualSegmentId,
        vseg_offset: u32,
        flags: u8,
        vseg_checksum: u32,
        chunk_count: u32,
        total_chunk_bytes: usize,
        chunks: impl IntoIterator<Item = &'a [u8]>,
    ) -> Self {
        let mut w = Writer::with_capacity(29 + total_chunk_bytes);
        w.u32(source_broker.raw())
            .u32(vlog.raw())
            .u64(vseg.raw())
            .u32(vseg_offset)
            .u8(flags)
            .u32(vseg_checksum)
            .u32(chunk_count);
        for c in chunks {
            w.bytes(c);
        }
        Self { body: w.finish() }
    }

    /// Wraps an already-assembled request (tests, fault-injection mocks).
    pub fn from_request(req: &BackupWriteRequest) -> Self {
        Self { body: req.encode() }
    }

    /// The serialized request body — what goes in the envelope payload.
    #[inline]
    pub fn body(&self) -> &Bytes {
        &self.body
    }

    /// Decodes the header back out (zero-copy; mocks and tests use this
    /// to inspect what would cross the wire).
    pub fn request(&self) -> Result<BackupWriteRequest> {
        BackupWriteRequest::decode_bytes(&self.body)
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackupWriteResponse {
    /// Bytes of the virtual segment durably held after this write.
    pub durable_offset: u32,
}

impl BackupWriteResponse {
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        w.u32(self.durable_offset);
        w.finish()
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        Ok(Self { durable_offset: Reader::new(buf).u32()? })
    }
}

// ---------------------------------------------------------------------------
// FollowerFetch (Kafka baseline, passive replication)
// ---------------------------------------------------------------------------

/// One partition's fetch position inside a follower fetch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FollowerFetchEntry {
    pub stream: StreamId,
    pub partition: StreamletId,
    /// Follower's log-end byte offset — doubles as the replication ack:
    /// the leader advances the partition high watermark from it.
    pub fetch_offset: u64,
}

#[derive(Clone, Debug, Default)]
pub struct FollowerFetchRequest {
    pub follower: NodeId,
    /// `replica.fetch.max.bytes` per partition.
    pub max_bytes_per_partition: u32,
    pub entries: Vec<FollowerFetchEntry>,
}

impl FollowerFetchRequest {
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::with_capacity(12 + self.entries.len() * 16);
        w.u32(self.follower.raw())
            .u32(self.max_bytes_per_partition)
            .u32(self.entries.len() as u32);
        for e in &self.entries {
            w.u32(e.stream.raw()).u32(e.partition.raw()).u64(e.fetch_offset);
        }
        w.finish()
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf);
        let follower = NodeId(r.u32()?);
        let max_bytes_per_partition = r.u32()?;
        let n = r.collection_len(16)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(FollowerFetchEntry {
                stream: StreamId(r.u32()?),
                partition: StreamletId(r.u32()?),
                fetch_offset: r.u64()?,
            });
        }
        Ok(Self { follower, max_bytes_per_partition, entries })
    }
}

#[derive(Clone, Debug)]
pub struct FollowerFetchResult {
    pub stream: StreamId,
    pub partition: StreamletId,
    /// Leader's high watermark for this partition (bytes).
    pub high_watermark: u64,
    /// Raw log bytes starting at the requested fetch offset.
    pub data: Bytes,
}

#[derive(Clone, Debug, Default)]
pub struct FollowerFetchResponse {
    pub results: Vec<FollowerFetchResult>,
}

impl FollowerFetchResponse {
    pub fn encode(&self) -> Result<Bytes> {
        let total: usize = self.results.iter().map(|x| 20 + x.data.len()).sum();
        let mut w = Writer::with_capacity(4 + total);
        w.u32(self.results.len() as u32);
        for x in &self.results {
            w.u32(x.stream.raw()).u32(x.partition.raw()).u64(x.high_watermark);
            w.len_prefixed(&x.data)?;
        }
        Ok(w.finish())
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf);
        let n = r.collection_len(20)?;
        let mut results = Vec::with_capacity(n);
        for _ in 0..n {
            let stream = StreamId(r.u32()?);
            let partition = StreamletId(r.u32()?);
            let high_watermark = r.u64()?;
            let data = Bytes::copy_from_slice(r.len_prefixed()?);
            results.push(FollowerFetchResult { stream, partition, high_watermark, data });
        }
        Ok(Self { results })
    }

    /// Like [`FollowerFetchResponse::decode`], but each result's `data`
    /// is a zero-copy slice of the response payload.
    pub fn decode_bytes(buf: &Bytes) -> Result<Self> {
        if copy_data_plane() {
            return Self::decode(buf);
        }
        let mut r = Reader::new(buf);
        let n = r.collection_len(20)?;
        let mut results = Vec::with_capacity(n);
        for _ in 0..n {
            let stream = StreamId(r.u32()?);
            let partition = StreamletId(r.u32()?);
            let high_watermark = r.u64()?;
            let start = r.position() + 4;
            let data_len = r.len_prefixed()?.len();
            let data = buf.slice(start..start + data_len);
            results.push(FollowerFetchResult { stream, partition, high_watermark, data });
        }
        Ok(Self { results })
    }
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// Coordinator/recovery-master → backup: what do you hold for this broker?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryEnumerateRequest {
    pub crashed_broker: NodeId,
}

impl RecoveryEnumerateRequest {
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        w.u32(self.crashed_broker.raw());
        w.finish()
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        Ok(Self { crashed_broker: NodeId(Reader::new(buf).u32()?) })
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicatedSegmentInfo {
    pub vlog: VirtualLogId,
    pub vseg: VirtualSegmentId,
    pub len: u32,
    pub closed: bool,
}

#[derive(Clone, Debug, Default)]
pub struct RecoveryEnumerateResponse {
    pub segments: Vec<ReplicatedSegmentInfo>,
}

impl RecoveryEnumerateResponse {
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::with_capacity(4 + self.segments.len() * 17);
        w.u32(self.segments.len() as u32);
        for s in &self.segments {
            w.u32(s.vlog.raw()).u64(s.vseg.raw()).u32(s.len).u8(s.closed as u8);
        }
        w.finish()
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf);
        let n = r.collection_len(17)?;
        let mut segments = Vec::with_capacity(n);
        for _ in 0..n {
            segments.push(ReplicatedSegmentInfo {
                vlog: VirtualLogId(r.u32()?),
                vseg: VirtualSegmentId(r.u64()?),
                len: r.u32()?,
                closed: r.u8()? != 0,
            });
        }
        Ok(Self { segments })
    }
}

/// Recovery-master → backup: stream back one replicated virtual segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryReadRequest {
    pub crashed_broker: NodeId,
    pub vlog: VirtualLogId,
    pub vseg: VirtualSegmentId,
}

impl RecoveryReadRequest {
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        w.u32(self.crashed_broker.raw()).u32(self.vlog.raw()).u64(self.vseg.raw());
        w.finish()
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf);
        Ok(Self {
            crashed_broker: NodeId(r.u32()?),
            vlog: VirtualLogId(r.u32()?),
            vseg: VirtualSegmentId(r.u64()?),
        })
    }
}

/// The replicated segment's packed chunks travel back as the raw response
/// payload (no wrapper needed beyond the envelope).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReportCrashRequest {
    pub node: NodeId,
}

impl ReportCrashRequest {
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        w.u32(self.node.raw());
        w.finish()
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        Ok(Self { node: NodeId(Reader::new(buf).u32()?) })
    }
}

/// Client → broker: translate a logical record offset into a cursor
/// (paper: "consumers can read at any offset"; served by the
/// lightweight per-chunk offset index).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeekRequest {
    pub stream: StreamId,
    pub streamlet: StreamletId,
    pub slot: u32,
    pub record_offset: u64,
}

impl SeekRequest {
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        w.u32(self.stream.raw()).u32(self.streamlet.raw()).u32(self.slot).u64(self.record_offset);
        w.finish()
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf);
        Ok(Self {
            stream: StreamId(r.u32()?),
            streamlet: StreamletId(r.u32()?),
            slot: r.u32()?,
            record_offset: r.u64()?,
        })
    }
}

/// Cursor of the chunk covering the requested offset; `found = false`
/// when the slot holds no data yet (start at the beginning).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeekResponse {
    pub found: bool,
    pub cursor: SlotCursor,
}

impl SeekResponse {
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        w.u8(self.found as u8);
        self.cursor.encode(&mut w);
        w.finish()
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf);
        Ok(Self { found: r.u8()? != 0, cursor: SlotCursor::decode(&mut r)? })
    }
}

/// One streamlet reassigned by crash recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reassignment {
    pub stream: StreamId,
    pub streamlet: StreamletId,
    pub new_broker: NodeId,
}

/// Coordinator → crash reporter: where the dead broker's streamlets went.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrashReassignmentResponse {
    pub reassignments: Vec<Reassignment>,
}

impl CrashReassignmentResponse {
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::with_capacity(4 + self.reassignments.len() * 12);
        w.u32(self.reassignments.len() as u32);
        for r in &self.reassignments {
            w.u32(r.stream.raw()).u32(r.streamlet.raw()).u32(r.new_broker.raw());
        }
        w.finish()
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf);
        let n = r.collection_len(12)?;
        let mut reassignments = Vec::with_capacity(n);
        for _ in 0..n {
            reassignments.push(Reassignment {
                stream: StreamId(r.u32()?),
                streamlet: StreamletId(r.u32()?),
                new_broker: NodeId(r.u32()?),
            });
        }
        Ok(Self { reassignments })
    }
}

/// Any node → broker: report admission-control accounting for one
/// tenant (`u32::MAX` = the asking node itself). Tooling/diagnostics,
/// not the data path — chaos drills use it to assert broker memory
/// stayed bounded without reaching into broker internals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuotaStateRequest {
    /// Raw node id of the tenant to report on (`u32::MAX` = sender).
    pub tenant: u32,
}

impl QuotaStateRequest {
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        w.u32(self.tenant);
        w.finish()
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        Ok(Self { tenant: Reader::new(buf).u32()? })
    }
}

/// Broker → asker: one tenant's quota accounting plus the broker-wide
/// admission-queue gauges. A tenant the broker has no session for (or
/// quotas disabled) reports `known == false` with zeroed accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QuotaStateResponse {
    /// Quotas are enabled on this broker.
    pub enabled: bool,
    /// The broker holds session state for the asked-about tenant.
    pub known: bool,
    /// Tenant's current produce token balance, in bytes (floored at 0).
    pub tokens: u64,
    /// Tenant's admitted-but-unacknowledged bytes.
    pub inflight_bytes: u64,
    /// Broker-wide admitted-but-unacknowledged bytes right now.
    pub queue_bytes: u64,
    /// High-water mark of `queue_bytes` since the broker started — the
    /// bounded-memory gate reads this.
    pub queue_hwm_bytes: u64,
    /// Total throttle responses issued (all tenants, produce + fetch).
    pub throttles: u64,
    /// Total rejections issued (all tenants).
    pub rejections: u64,
    /// Total session evictions (ladder + zombie sweep).
    pub evictions: u64,
}

impl QuotaStateResponse {
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        w.u8(self.enabled as u8)
            .u8(self.known as u8)
            .u64(self.tokens)
            .u64(self.inflight_bytes)
            .u64(self.queue_bytes)
            .u64(self.queue_hwm_bytes)
            .u64(self.throttles)
            .u64(self.rejections)
            .u64(self.evictions);
        w.finish()
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf);
        let enabled = match r.u8()? {
            0 => false,
            1 => true,
            v => return Err(KeraError::Protocol(format!("bad bool {v} in quota state"))),
        };
        let known = match r.u8()? {
            0 => false,
            1 => true,
            v => return Err(KeraError::Protocol(format!("bad bool {v} in quota state"))),
        };
        Ok(Self {
            enabled,
            known,
            tokens: r.u64()?,
            inflight_bytes: r.u64()?,
            queue_bytes: r.u64()?,
            queue_hwm_bytes: r.u64()?,
            throttles: r.u64()?,
            rejections: r.u64()?,
            evictions: r.u64()?,
        })
    }
}

/// Section bitmask for [`IntrospectRequest::sections`]. Health is cheap
/// (a handful of atomics); metrics and traces serialize JSON bodies, so
/// scrapers that only want liveness can skip them.
pub mod introspect_sections {
    pub const HEALTH: u32 = 1 << 0;
    pub const METRICS: u32 = 1 << 1;
    pub const TRACES: u32 = 1 << 2;
    pub const ALL: u32 = HEALTH | METRICS | TRACES;
}

/// The role a node reports in [`IntrospectResponse::role`].
pub mod introspect_role {
    pub const BROKER: u8 = 0;
    pub const BACKUP: u8 = 1;
    pub const COORDINATOR: u8 = 2;

    pub fn name(role: u8) -> &'static str {
        match role {
            BROKER => "broker",
            BACKUP => "backup",
            COORDINATOR => "coordinator",
            _ => "unknown",
        }
    }
}

/// Any node → any node: introspection scrape (`kera-inspect`, CI
/// smokes, the future multi-process scrape plane). Not the data path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntrospectRequest {
    /// Bitmask of [`introspect_sections`] to include in the response.
    pub sections: u32,
}

impl IntrospectRequest {
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        w.u32(self.sections);
        w.finish()
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        Ok(Self { sections: Reader::new(buf).u32()? })
    }
}

/// One node's introspection report: a fixed health summary plus
/// optional JSON bodies (registry snapshot, sampled slow-trace trees).
/// Fields that don't apply to a role are zero — a backup has no term, a
/// coordinator has no vlogs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IntrospectResponse {
    /// Raw node id of the reporter.
    pub node: u32,
    /// [`introspect_role`] of the reporter.
    pub role: u8,
    /// Coordinator replicas only: currently the elected leader.
    pub is_leader: bool,
    /// Coordinator replicas: current term. Brokers/backups: 0.
    pub term: u64,
    /// Broker: live virtual logs. Others: 0.
    pub vlogs: u32,
    /// Backup: replicated virtual segments held. Others: 0.
    pub segments: u32,
    /// Broker: bytes appended across vlogs (replication input).
    pub appended_bytes: u64,
    /// Broker: bytes acknowledged durable by backups. The replication
    /// lag is `appended_bytes - durable_bytes`.
    pub durable_bytes: u64,
    /// Broker: bytes appended but not yet fetched past by any consumer
    /// on tracked slots (committed-offset lag).
    pub consumer_lag_bytes: u64,
    /// Broker: admission control armed.
    pub quota_enabled: bool,
    /// Broker: admitted-but-unacknowledged bytes right now.
    pub quota_queue_bytes: u64,
    /// Broker: high-water mark of the admission queue.
    pub quota_queue_hwm_bytes: u64,
    /// Broker: total throttle responses issued.
    pub quota_throttles: u64,
    /// Broker: total rejections issued.
    pub quota_rejections: u64,
    /// RPC requests currently executing in this node's worker pool.
    pub inflight: u32,
    /// Monotonic progress heartbeat (appends/replications/commits); the
    /// stall watchdog fires when this stops advancing with work in
    /// flight.
    pub progress: u64,
    /// Watchdog period armed on this node, ms (0 = disarmed).
    pub watchdog_ms: u32,
    /// METRICS section: `RegistrySnapshot::to_json` body, else empty.
    pub metrics_json: String,
    /// TRACES section: sampled slow-trace trees as JSON, else empty.
    pub traces_json: String,
}

impl IntrospectResponse {
    pub fn encode(&self) -> Result<Bytes> {
        let mut w = Writer::new();
        w.u32(self.node)
            .u8(self.role)
            .u8(self.is_leader as u8)
            .u8(self.quota_enabled as u8)
            .u64(self.term)
            .u32(self.vlogs)
            .u32(self.segments)
            .u64(self.appended_bytes)
            .u64(self.durable_bytes)
            .u64(self.consumer_lag_bytes)
            .u64(self.quota_queue_bytes)
            .u64(self.quota_queue_hwm_bytes)
            .u64(self.quota_throttles)
            .u64(self.quota_rejections)
            .u32(self.inflight)
            .u64(self.progress)
            .u32(self.watchdog_ms);
        w.string(&self.metrics_json)?;
        w.string(&self.traces_json)?;
        Ok(w.finish())
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf);
        let node = r.u32()?;
        let role = r.u8()?;
        if role > introspect_role::COORDINATOR {
            return Err(KeraError::Protocol(format!("bad role {role} in introspect")));
        }
        let is_leader = match r.u8()? {
            0 => false,
            1 => true,
            v => return Err(KeraError::Protocol(format!("bad bool {v} in introspect"))),
        };
        let quota_enabled = match r.u8()? {
            0 => false,
            1 => true,
            v => return Err(KeraError::Protocol(format!("bad bool {v} in introspect"))),
        };
        Ok(Self {
            node,
            role,
            is_leader,
            quota_enabled,
            term: r.u64()?,
            vlogs: r.u32()?,
            segments: r.u32()?,
            appended_bytes: r.u64()?,
            durable_bytes: r.u64()?,
            consumer_lag_bytes: r.u64()?,
            quota_queue_bytes: r.u64()?,
            quota_queue_hwm_bytes: r.u64()?,
            quota_throttles: r.u64()?,
            quota_rejections: r.u64()?,
            inflight: r.u32()?,
            progress: r.u64()?,
            watchdog_ms: r.u32()?,
            metrics_json: r.string()?,
            traces_json: r.string()?,
        })
    }

    /// Replication lag in bytes (appended but not yet durable).
    pub fn replication_lag_bytes(&self) -> u64 {
        self.appended_bytes.saturating_sub(self.durable_bytes)
    }

    pub fn role_name(&self) -> &'static str {
        introspect_role::name(self.role)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kera_common::config::VirtualLogPolicy;

    fn sample_config() -> StreamConfig {
        StreamConfig {
            id: StreamId(3),
            streamlets: 32,
            active_groups: 4,
            segments_per_group: 8,
            segment_size: 1 << 20,
            replication: ReplicationConfig {
                factor: 3,
                policy: VirtualLogPolicy::PerSubPartition,
                vseg_size: 1 << 20,
            },
        }
    }

    #[test]
    fn stream_config_roundtrip_all_policies() {
        for policy in [
            VirtualLogPolicy::SharedPerBroker(4),
            VirtualLogPolicy::PerStreamlet,
            VirtualLogPolicy::PerSubPartition,
        ] {
            let mut c = sample_config();
            c.replication.policy = policy;
            let mut w = Writer::new();
            encode_stream_config(&mut w, &c);
            let buf = w.finish();
            let back = decode_stream_config(&mut Reader::new(&buf)).unwrap();
            assert_eq!(back, c);
        }
    }

    #[test]
    fn create_stream_roundtrip() {
        let req = CreateStreamRequest { config: sample_config() };
        let back = CreateStreamRequest::decode(&req.encode()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn metadata_roundtrip_and_lookup() {
        let md = StreamMetadata {
            config: sample_config(),
            placements: vec![
                StreamletPlacement { streamlet: StreamletId(0), broker: NodeId(10) },
                StreamletPlacement { streamlet: StreamletId(1), broker: NodeId(11) },
                StreamletPlacement { streamlet: StreamletId(2), broker: NodeId(10) },
            ],
        };
        let back = StreamMetadata::decode(&md.encode()).unwrap();
        assert_eq!(back, md);
        assert_eq!(back.broker_of(StreamletId(1)), Some(NodeId(11)));
        assert_eq!(back.broker_of(StreamletId(9)), None);
        assert_eq!(back.brokers(), vec![NodeId(10), NodeId(11)]);
    }

    #[test]
    fn host_stream_roundtrip() {
        let req = HostStreamRequest {
            metadata: StreamMetadata {
                config: sample_config(),
                placements: vec![StreamletPlacement {
                    streamlet: StreamletId(0),
                    broker: NodeId(1),
                }],
            },
            assignments: vec![
                HostAssignment {
                    streamlet: StreamletId(0),
                    role: ReplicaRole::Leader,
                    leader: NodeId(1),
                },
                HostAssignment {
                    streamlet: StreamletId(1),
                    role: ReplicaRole::Follower,
                    leader: NodeId(2),
                },
            ],
        };
        let back = HostStreamRequest::decode(&req.encode()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn produce_roundtrip() {
        let req = ProduceRequest {
            producer: ProducerId(8),
            recovery: true,
            chunk_count: 2,
            chunks: Bytes::from_static(b"fake-chunk-bytes"),
        };
        let back = ProduceRequest::decode(&req.encode()).unwrap();
        assert_eq!(back.producer, req.producer);
        assert!(back.recovery);
        assert_eq!(back.chunk_count, 2);
        assert_eq!(back.chunks, req.chunks);
    }

    #[test]
    fn produce_single_pack_matches_struct_encode() {
        let a = Bytes::from_static(b"chunk-a");
        let b = Bytes::from_static(b"chunk-bb");
        let packed = ProduceRequest::encode_chunks(ProducerId(8), false, &[a.clone(), b.clone()]);
        let mut joined = Vec::new();
        joined.extend_from_slice(&a);
        joined.extend_from_slice(&b);
        let via_struct = ProduceRequest {
            producer: ProducerId(8),
            recovery: false,
            chunk_count: 2,
            chunks: Bytes::from(joined),
        }
        .encode();
        assert_eq!(packed, via_struct, "single-pack must be byte-identical on the wire");

        // The sliced decoder yields chunks windowed into the payload.
        let payload = packed.clone();
        let req = ProduceRequest::decode_bytes(&payload).unwrap();
        assert_eq!(req.chunk_count, 2);
        assert_eq!(&req.chunks[..], b"chunk-achunk-bb");
        let base = payload.as_ref().as_ptr() as usize;
        let ptr = req.chunks.as_ref().as_ptr() as usize;
        assert_eq!(ptr, base + ProduceRequest::HEADER_LEN);
    }

    #[test]
    fn encoded_backup_write_packs_once_and_decodes_back() {
        let chunks: [&[u8]; 2] = [b"first-chunk", b"second"];
        let total = chunks.iter().map(|c| c.len()).sum();
        let enc = EncodedBackupWrite::pack(
            NodeId(1),
            VirtualLogId(2),
            VirtualSegmentId(3),
            4096,
            backup_flags::OPEN,
            0,
            2,
            total,
            chunks,
        );
        let req = enc.request().unwrap();
        assert_eq!(req.source_broker, NodeId(1));
        assert_eq!(req.vlog, VirtualLogId(2));
        assert_eq!(req.vseg, VirtualSegmentId(3));
        assert_eq!(req.vseg_offset, 4096);
        assert_eq!(req.flags, backup_flags::OPEN);
        assert_eq!(req.chunk_count, 2);
        assert_eq!(&req.chunks[..], b"first-chunksecond");
        // Byte-identical to the struct encoder's output.
        assert_eq!(enc.body(), &req.encode());
        // from_request round-trips too.
        assert_eq!(EncodedBackupWrite::from_request(&req).body(), enc.body());
    }

    #[test]
    fn produce_response_roundtrip() {
        let resp = ProduceResponse {
            acks: vec![ChunkAck {
                stream: StreamId(1),
                streamlet: StreamletId(2),
                group: 3,
                segment: 4,
                base_offset: 500,
                records: 6,
            }],
        };
        let back = ProduceResponse::decode(&resp.encode()).unwrap();
        assert_eq!(back.acks, resp.acks);
    }

    #[test]
    fn fetch_roundtrip() {
        let req = FetchRequest {
            consumer: ConsumerId(4),
            entries: vec![FetchEntry {
                stream: StreamId(1),
                streamlet: StreamletId(2),
                slot: 1,
                cursor: SlotCursor { chain: 1, segment: 2, offset: 3 },
                max_bytes: 65536,
            }],
        };
        let back = FetchRequest::decode(&req.encode()).unwrap();
        assert_eq!(back.consumer, req.consumer);
        assert_eq!(back.entries, req.entries);

        let resp = FetchResponse {
            results: vec![FetchResult {
                stream: StreamId(1),
                streamlet: StreamletId(2),
                slot: 1,
                cursor: SlotCursor { chain: 1, segment: 2, offset: 99 },
                data: Bytes::from_static(b"packed"),
            }],
        };
        let encoded = resp.encode().unwrap();
        let back = FetchResponse::decode(&encoded).unwrap();
        assert_eq!(back.results.len(), 1);
        assert_eq!(back.results[0].cursor.offset, 99);
        assert_eq!(&back.results[0].data[..], b"packed");

        // The sliced decoder agrees and its data is a window into the
        // response buffer, not a copy.
        let sliced = FetchResponse::decode_bytes(&encoded).unwrap();
        assert_eq!(&sliced.results[0].data[..], b"packed");
        let base = encoded.as_ref().as_ptr() as usize;
        let data_ptr = sliced.results[0].data.as_ref().as_ptr() as usize;
        assert!((base..base + encoded.len()).contains(&data_ptr));
    }

    #[test]
    fn backup_write_roundtrip() {
        let req = BackupWriteRequest {
            source_broker: NodeId(1),
            vlog: VirtualLogId(2),
            vseg: VirtualSegmentId(3),
            vseg_offset: 4096,
            flags: backup_flags::OPEN | backup_flags::CLOSE,
            vseg_checksum: 0xdead_beef,
            chunk_count: 5,
            chunks: Bytes::from_static(b"chunks"),
        };
        let back = BackupWriteRequest::decode(&req.encode()).unwrap();
        assert_eq!(back.source_broker, req.source_broker);
        assert_eq!(back.vlog, req.vlog);
        assert_eq!(back.vseg, req.vseg);
        assert_eq!(back.vseg_offset, 4096);
        assert_eq!(back.flags, req.flags);
        assert_eq!(back.vseg_checksum, 0xdead_beef);
        assert_eq!(back.chunk_count, 5);
        assert_eq!(back.chunks, req.chunks);

        let resp = BackupWriteResponse { durable_offset: 8192 };
        assert_eq!(BackupWriteResponse::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn follower_fetch_roundtrip() {
        let req = FollowerFetchRequest {
            follower: NodeId(3),
            max_bytes_per_partition: 1 << 20,
            entries: vec![FollowerFetchEntry {
                stream: StreamId(1),
                partition: StreamletId(0),
                fetch_offset: 777,
            }],
        };
        let back = FollowerFetchRequest::decode(&req.encode()).unwrap();
        assert_eq!(back.follower, req.follower);
        assert_eq!(back.entries, req.entries);

        let resp = FollowerFetchResponse {
            results: vec![FollowerFetchResult {
                stream: StreamId(1),
                partition: StreamletId(0),
                high_watermark: 700,
                data: Bytes::from_static(b"log-bytes"),
            }],
        };
        let encoded = resp.encode().unwrap();
        let back = FollowerFetchResponse::decode(&encoded).unwrap();
        assert_eq!(back.results[0].high_watermark, 700);
        assert_eq!(&back.results[0].data[..], b"log-bytes");
        let sliced = FollowerFetchResponse::decode_bytes(&encoded).unwrap();
        assert_eq!(&sliced.results[0].data[..], b"log-bytes");
    }

    #[test]
    fn recovery_messages_roundtrip() {
        let e = RecoveryEnumerateRequest { crashed_broker: NodeId(9) };
        assert_eq!(RecoveryEnumerateRequest::decode(&e.encode()).unwrap(), e);

        let resp = RecoveryEnumerateResponse {
            segments: vec![ReplicatedSegmentInfo {
                vlog: VirtualLogId(1),
                vseg: VirtualSegmentId(2),
                len: 3,
                closed: true,
            }],
        };
        let back = RecoveryEnumerateResponse::decode(&resp.encode()).unwrap();
        assert_eq!(back.segments, resp.segments);

        let rr = RecoveryReadRequest {
            crashed_broker: NodeId(9),
            vlog: VirtualLogId(1),
            vseg: VirtualSegmentId(2),
        };
        assert_eq!(RecoveryReadRequest::decode(&rr.encode()).unwrap(), rr);

        let rc = ReportCrashRequest { node: NodeId(5) };
        assert_eq!(ReportCrashRequest::decode(&rc.encode()).unwrap(), rc);
    }

    #[test]
    fn seek_roundtrip() {
        let req = SeekRequest {
            stream: StreamId(1),
            streamlet: StreamletId(2),
            slot: 3,
            record_offset: 12345,
        };
        assert_eq!(SeekRequest::decode(&req.encode()).unwrap(), req);
        let resp = SeekResponse {
            found: true,
            cursor: SlotCursor { chain: 1, segment: 2, offset: 3 },
        };
        assert_eq!(SeekResponse::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn crash_reassignment_roundtrip() {
        let resp = CrashReassignmentResponse {
            reassignments: vec![Reassignment {
                stream: StreamId(1),
                streamlet: StreamletId(2),
                new_broker: NodeId(3),
            }],
        };
        assert_eq!(CrashReassignmentResponse::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn quota_state_roundtrip() {
        let req = QuotaStateRequest { tenant: 2001 };
        assert_eq!(QuotaStateRequest::decode(&req.encode()).unwrap(), req);
        let req = QuotaStateRequest { tenant: u32::MAX };
        assert_eq!(QuotaStateRequest::decode(&req.encode()).unwrap(), req);

        let resp = QuotaStateResponse {
            enabled: true,
            known: true,
            tokens: 123_456,
            inflight_bytes: 789,
            queue_bytes: 1024,
            queue_hwm_bytes: 4096,
            throttles: 7,
            rejections: 3,
            evictions: 1,
        };
        assert_eq!(QuotaStateResponse::decode(&resp.encode()).unwrap(), resp);

        // Truncation anywhere errors cleanly.
        let buf = resp.encode();
        for cut in 0..buf.len() {
            assert!(QuotaStateResponse::decode(&buf[..cut]).is_err(), "cut at {cut} decoded");
        }
        // Non-boolean bool byte is a protocol error, not a panic.
        let mut bad = buf.to_vec();
        bad[0] = 7;
        assert!(QuotaStateResponse::decode(&bad).is_err());
    }

    #[test]
    fn introspect_roundtrip() {
        let req = IntrospectRequest { sections: introspect_sections::ALL };
        assert_eq!(IntrospectRequest::decode(&req.encode()).unwrap(), req);
        let req = IntrospectRequest { sections: introspect_sections::HEALTH };
        assert_eq!(IntrospectRequest::decode(&req.encode()).unwrap(), req);

        let resp = IntrospectResponse {
            node: 3001,
            role: introspect_role::COORDINATOR,
            is_leader: true,
            term: 4,
            vlogs: 0,
            segments: 0,
            appended_bytes: 1 << 20,
            durable_bytes: (1 << 20) - 4096,
            consumer_lag_bytes: 512,
            quota_enabled: true,
            quota_queue_bytes: 100,
            quota_queue_hwm_bytes: 2048,
            quota_throttles: 7,
            quota_rejections: 1,
            inflight: 3,
            progress: 99,
            watchdog_ms: 250,
            metrics_json: "{\"counters\":{}}".into(),
            traces_json: "[]".into(),
        };
        let buf = resp.encode().unwrap();
        let back = IntrospectResponse::decode(&buf).unwrap();
        assert_eq!(back, resp);
        assert_eq!(back.replication_lag_bytes(), 4096);
        assert_eq!(back.role_name(), "coordinator");

        // Truncation anywhere errors cleanly.
        for cut in 0..buf.len() {
            assert!(IntrospectResponse::decode(&buf[..cut]).is_err(), "cut at {cut} decoded");
        }
        // Non-boolean bool byte and out-of-range role are protocol
        // errors, not panics.
        let mut bad = buf.to_vec();
        bad[5] = 9; // is_leader
        assert!(IntrospectResponse::decode(&bad).is_err());
        let mut bad = buf.to_vec();
        bad[4] = 3; // role
        assert!(IntrospectResponse::decode(&bad).is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let req = FetchRequest {
            consumer: ConsumerId(4),
            entries: vec![FetchEntry {
                stream: StreamId(1),
                streamlet: StreamletId(2),
                slot: 0,
                cursor: SlotCursor::START,
                max_bytes: 1,
            }],
        };
        let buf = req.encode();
        assert!(FetchRequest::decode(&buf[..buf.len() - 2]).is_err());
    }
}
