//! RPC envelopes: opcodes, status codes and frame serialization.
//!
//! The in-memory transport passes [`Envelope`] values through channels
//! directly (the payload `Bytes` is already serialized, so nothing is
//! re-encoded); the TCP transport uses [`Envelope::encode`] /
//! [`Envelope::decode`] with a `u32` length prefix.

use bytes::Bytes;
use kera_common::ids::NodeId;
use kera_common::{KeraError, Result};

use crate::codec::{Reader, Writer};

/// Every RPC the cluster speaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum OpCode {
    /// Liveness probe.
    Ping = 0,
    /// Coordinator: create a stream and place its streamlets.
    CreateStream = 1,
    /// Coordinator: fetch stream metadata (streamlet→broker map, Q).
    GetMetadata = 2,
    /// Broker: append a set of chunks (the producer request, Fig. 3).
    Produce = 3,
    /// Broker: pull chunks for a set of streamlet cursors (consumer).
    Fetch = 4,
    /// Backup: replicate a batch of chunks of one virtual segment.
    BackupWrite = 5,
    /// Backup: drop replicated segments of a vlog (after stream deletion).
    BackupFree = 6,
    /// Kafka baseline: follower pull request (passive replication).
    FollowerFetch = 7,
    /// Backup: list replicated virtual segments held for a crashed broker.
    RecoveryEnumerate = 8,
    /// Backup: read one replicated virtual segment's chunks.
    RecoveryRead = 9,
    /// Broker: re-ingest recovered chunks (handled like a produce).
    RecoveryIngest = 10,
    /// Coordinator: report a node crash / trigger recovery.
    ReportCrash = 11,
    /// Orderly shutdown.
    Shutdown = 12,
    /// Coordinator → broker: host streamlets of a stream (leader or, in
    /// the Kafka baseline, follower replicas).
    HostStream = 13,
    /// Client → coordinator (and coordinator → broker): delete a stream.
    DeleteStream = 14,
    /// Broker: translate a logical record offset into a slot cursor
    /// (lightweight offset index lookup).
    Seek = 15,
    /// Coordinator replica → replica: solicit a vote for a new term.
    RequestVote = 16,
    /// Coordinator leader → follower: replicate a slice of the metadata
    /// log (doubles as the leader heartbeat when the slice is empty).
    MetaAppend = 17,
    /// Any node → coordinator replica: who is the leader right now?
    GetLeader = 18,
    /// Broker: report a tenant's admission-control accounting (token
    /// balance, in-flight bytes, queue high-water mark) — tooling and
    /// chaos drills, not the data path.
    QuotaState = 19,
    /// Any node: introspection scrape — health summary, metrics
    /// snapshot and sampled slow traces (`kera-inspect`, not the data
    /// path).
    Introspect = 20,
}

impl OpCode {
    pub fn from_u8(v: u8) -> Result<OpCode> {
        use OpCode::*;
        Ok(match v {
            0 => Ping,
            1 => CreateStream,
            2 => GetMetadata,
            3 => Produce,
            4 => Fetch,
            5 => BackupWrite,
            6 => BackupFree,
            7 => FollowerFetch,
            8 => RecoveryEnumerate,
            9 => RecoveryRead,
            10 => RecoveryIngest,
            11 => ReportCrash,
            12 => Shutdown,
            13 => HostStream,
            14 => DeleteStream,
            15 => Seek,
            16 => RequestVote,
            17 => MetaAppend,
            18 => GetLeader,
            19 => QuotaState,
            20 => Introspect,
            _ => return Err(KeraError::Protocol(format!("unknown opcode {v}"))),
        })
    }
}

/// Response status. Mirrors the variants of [`KeraError`] that can cross
/// the wire; `Ok` for successful responses and all requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum StatusCode {
    Ok = 0,
    UnknownStream = 1,
    UnknownStreamlet = 2,
    UnknownGroup = 3,
    StreamExists = 4,
    Corruption = 5,
    ChunkTooLarge = 6,
    NoCapacity = 7,
    ShuttingDown = 8,
    Protocol = 9,
    Recovery = 10,
    Internal = 11,
    NotLeader = 12,
    Throttled = 13,
    Rejected = 14,
}

impl StatusCode {
    pub fn from_u8(v: u8) -> Result<StatusCode> {
        Ok(match v {
            0 => StatusCode::Ok,
            1 => StatusCode::UnknownStream,
            2 => StatusCode::UnknownStreamlet,
            3 => StatusCode::UnknownGroup,
            4 => StatusCode::StreamExists,
            5 => StatusCode::Corruption,
            6 => StatusCode::ChunkTooLarge,
            7 => StatusCode::NoCapacity,
            8 => StatusCode::ShuttingDown,
            9 => StatusCode::Protocol,
            10 => StatusCode::Recovery,
            11 => StatusCode::Internal,
            12 => StatusCode::NotLeader,
            13 => StatusCode::Throttled,
            14 => StatusCode::Rejected,
            _ => return Err(KeraError::Protocol(format!("unknown status {v}"))),
        })
    }
}

/// Maps a server-side error to the status carried on the wire.
pub fn status_for_error(e: &KeraError) -> StatusCode {
    match e {
        KeraError::UnknownStream(_) => StatusCode::UnknownStream,
        KeraError::UnknownStreamlet(_, _) => StatusCode::UnknownStreamlet,
        KeraError::UnknownGroup(_) => StatusCode::UnknownGroup,
        KeraError::StreamExists(_) => StatusCode::StreamExists,
        KeraError::Corruption { .. } => StatusCode::Corruption,
        KeraError::ChunkTooLarge { .. } => StatusCode::ChunkTooLarge,
        KeraError::NoCapacity(_) => StatusCode::NoCapacity,
        KeraError::ShuttingDown => StatusCode::ShuttingDown,
        KeraError::Protocol(_) => StatusCode::Protocol,
        KeraError::Recovery(_) => StatusCode::Recovery,
        KeraError::NotLeader { .. } => StatusCode::NotLeader,
        KeraError::Throttled { .. } => StatusCode::Throttled,
        KeraError::Rejected { .. } => StatusCode::Rejected,
        _ => StatusCode::Internal,
    }
}

/// Reconstructs a client-side error from a non-Ok status and the error
/// message the server put in the payload.
pub fn error_for_status(status: StatusCode, message: &str) -> KeraError {
    match status {
        StatusCode::Ok => KeraError::Protocol("error_for_status called with Ok".into()),
        StatusCode::ShuttingDown => KeraError::ShuttingDown,
        StatusCode::NoCapacity => KeraError::NoCapacity(message.to_string()),
        StatusCode::Recovery => KeraError::Recovery(message.to_string()),
        StatusCode::Corruption => {
            KeraError::Corruption { what: "remote", expected: 0, actual: 0 }
        }
        // The structured hint/term ride after the message in the payload;
        // callers that only have the message fall back to "unknown".
        StatusCode::NotLeader => KeraError::NotLeader { hint: None, term: 0 },
        // Structured retry_after/window_hint likewise ride after the
        // message; without them, "retry immediately, no hint".
        StatusCode::Throttled => KeraError::Throttled {
            retry_after: std::time::Duration::ZERO,
            window_hint: 0,
        },
        StatusCode::Rejected => KeraError::Rejected { reason: message.to_string() },
        _ => KeraError::Protocol(format!("{status:?}: {message}")),
    }
}

/// Request vs response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    Request = 0,
    Response = 1,
}

/// One message on the wire (or in a channel).
#[derive(Clone, Debug)]
pub struct Envelope {
    pub kind: FrameKind,
    pub opcode: OpCode,
    pub status: StatusCode,
    pub request_id: u64,
    pub from: NodeId,
    /// Remaining time budget for this request in microseconds at the
    /// moment it was sent; `0` means no deadline. Servers drop requests
    /// that sat in their queues past this budget instead of doing work
    /// whose caller has already given up (RAMCloud-style deadline
    /// propagation). Meaningless on responses (always `0`).
    pub deadline_micros: u64,
    /// Causal-trace identity of the request (`kera-obs`); `0` on both
    /// fields means "untraced". Responses echo `0` (the caller already
    /// holds its span).
    pub trace_id: u64,
    /// The sender's span at the moment of sending: the parent for
    /// server-side spans. `0` when untraced.
    pub span_id: u64,
    pub payload: Bytes,
}

impl Envelope {
    pub fn request(opcode: OpCode, request_id: u64, from: NodeId, payload: Bytes) -> Self {
        Self {
            kind: FrameKind::Request,
            opcode,
            status: StatusCode::Ok,
            request_id,
            from,
            deadline_micros: 0,
            trace_id: 0,
            span_id: 0,
            payload,
        }
    }

    /// Stamps the remaining time budget onto a request.
    pub fn with_deadline(mut self, budget: std::time::Duration) -> Self {
        // Saturate instead of wrapping; 0 stays "no deadline", so a
        // sub-microsecond budget rounds up to 1.
        self.deadline_micros = u64::try_from(budget.as_micros())
            .unwrap_or(u64::MAX)
            .max(u64::from(!budget.is_zero()));
        self
    }

    /// Stamps the sender's trace context onto a request (`0, 0` leaves
    /// it untraced).
    pub fn with_trace(mut self, trace_id: u64, span_id: u64) -> Self {
        self.trace_id = trace_id;
        self.span_id = span_id;
        self
    }

    pub fn response(
        opcode: OpCode,
        request_id: u64,
        from: NodeId,
        status: StatusCode,
        payload: Bytes,
    ) -> Self {
        Self {
            kind: FrameKind::Response,
            opcode,
            status,
            request_id,
            from,
            deadline_micros: 0,
            trace_id: 0,
            span_id: 0,
            payload,
        }
    }

    /// An error response carrying the error's message as payload.
    /// `NotLeader` additionally carries its redirect hint and term after
    /// the message (hint `u32::MAX` = no known leader), so the client can
    /// re-resolve without string parsing; `Throttled` likewise carries
    /// its structured retry_after (microseconds) and window hint.
    pub fn error_response(opcode: OpCode, request_id: u64, from: NodeId, e: &KeraError) -> Self {
        let mut w = Writer::new();
        // An error message can never exceed the u32 length field; if it
        // somehow did, the failed write leaves the buffer untouched and
        // the response degrades to a message-less frame (check_status
        // falls back to an empty message).
        let _ = w.string(&e.to_string());
        match e {
            KeraError::NotLeader { hint, term } => {
                w.u32(hint.map_or(u32::MAX, NodeId::raw)).u64(*term);
            }
            KeraError::Throttled { retry_after, window_hint } => {
                w.u64(u64::try_from(retry_after.as_micros()).unwrap_or(u64::MAX))
                    .u64(*window_hint);
            }
            _ => {}
        }
        Self::response(opcode, request_id, from, status_for_error(e), w.finish())
    }

    /// Total serialized size (header + payload), used by the bandwidth
    /// model and transport accounting.
    pub fn wire_len(&self) -> usize {
        Self::HEADER_LEN + self.payload.len()
    }

    /// Serialized envelope header length (excluding the outer u32 length
    /// prefix used by stream transports).
    pub const HEADER_LEN: usize = 40;

    /// Serializes just the 40-byte header. The TCP transport writes this
    /// followed by the payload `Bytes` directly, so the payload is never
    /// copied into a combined frame buffer on the send path.
    pub fn encode_header(&self) -> [u8; Self::HEADER_LEN] {
        let mut h = [0u8; Self::HEADER_LEN];
        h[0] = self.kind as u8;
        h[1] = self.opcode as u8;
        h[2] = self.status as u8;
        // h[3] reserved, zero
        h[4..12].copy_from_slice(&self.request_id.to_le_bytes());
        h[12..16].copy_from_slice(&self.from.raw().to_le_bytes());
        h[16..24].copy_from_slice(&self.deadline_micros.to_le_bytes());
        h[24..32].copy_from_slice(&self.trace_id.to_le_bytes());
        h[32..40].copy_from_slice(&self.span_id.to_le_bytes());
        h
    }

    /// Serializes header + payload into one contiguous buffer (copies the
    /// payload; transports prefer [`Envelope::encode_header`] + payload).
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::with_capacity(Self::HEADER_LEN + self.payload.len());
        w.bytes(&self.encode_header()).bytes(&self.payload);
        w.finish()
    }

    /// Parses the header fields of `buf`, leaving the payload empty.
    fn decode_header(buf: &[u8]) -> Result<Envelope> {
        let mut r = Reader::new(buf);
        let kind = match r.u8()? {
            0 => FrameKind::Request,
            1 => FrameKind::Response,
            k => return Err(KeraError::Protocol(format!("unknown frame kind {k}"))),
        };
        let opcode = OpCode::from_u8(r.u8()?)?;
        let status = StatusCode::from_u8(r.u8()?)?;
        let _reserved = r.u8()?;
        let request_id = r.u64()?;
        let from = NodeId(r.u32()?);
        let deadline_micros = r.u64()?;
        let trace_id = r.u64()?;
        let span_id = r.u64()?;
        debug_assert_eq!(r.position(), Self::HEADER_LEN);
        Ok(Envelope {
            kind,
            opcode,
            status,
            request_id,
            from,
            deadline_micros,
            trace_id,
            span_id,
            payload: Bytes::new(),
        })
    }

    /// Parses an envelope from `buf` (header + payload, exact), copying
    /// the payload out of the slice.
    pub fn decode(buf: &[u8]) -> Result<Envelope> {
        let mut env = Self::decode_header(buf)?;
        env.payload = Bytes::copy_from_slice(&buf[Self::HEADER_LEN..]);
        Ok(env)
    }

    /// Parses an envelope from a shared receive buffer: the payload is a
    /// zero-copy slice of `buf`'s allocation, so a request body flows
    /// from the socket read straight to the broker without another
    /// memcpy. Under `KERA_COPY_DATA_PLANE=1` the payload is copied out
    /// (the seed's behavior) for before/after benchmarking.
    pub fn decode_bytes(buf: &Bytes) -> Result<Envelope> {
        if kera_common::copymode::copy_data_plane() {
            return Self::decode(buf);
        }
        let mut env = Self::decode_header(buf)?;
        env.payload = buf.slice(Self::HEADER_LEN..);
        Ok(env)
    }

    /// Extracts the error from a response envelope, or `Ok(())` if the
    /// status is Ok.
    pub fn check_status(&self) -> Result<()> {
        if self.status == StatusCode::Ok {
            return Ok(());
        }
        let mut r = Reader::new(&self.payload);
        let msg = r.string().unwrap_or_default();
        if self.status == StatusCode::NotLeader {
            // A malformed/legacy payload degrades to "leader unknown"
            // rather than a decode error — the caller re-resolves anyway.
            let hint = match r.u32() {
                Ok(u32::MAX) | Err(_) => None,
                Ok(raw) => Some(NodeId(raw)),
            };
            let term = r.u64().unwrap_or(0);
            return Err(KeraError::NotLeader { hint, term });
        }
        if self.status == StatusCode::Throttled {
            // A malformed/legacy payload degrades to "retry now, no
            // hint" rather than a decode error.
            let retry_after = std::time::Duration::from_micros(r.u64().unwrap_or(0));
            let window_hint = r.u64().unwrap_or(0);
            return Err(KeraError::Throttled { retry_after, window_hint });
        }
        Err(error_for_status(self.status, &msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_roundtrip() {
        for v in 0..=20u8 {
            let op = OpCode::from_u8(v).unwrap();
            assert_eq!(op as u8, v);
        }
        assert!(OpCode::from_u8(200).is_err());
    }

    #[test]
    fn status_roundtrip() {
        for v in 0..=14u8 {
            let s = StatusCode::from_u8(v).unwrap();
            assert_eq!(s as u8, v);
        }
        assert!(StatusCode::from_u8(99).is_err());
    }

    #[test]
    fn envelope_encode_decode() {
        let env = Envelope::request(OpCode::Produce, 42, NodeId(7), Bytes::from_static(b"body"));
        let encoded = env.encode();
        assert_eq!(encoded.len(), env.wire_len());
        let back = Envelope::decode(&encoded).unwrap();
        assert_eq!(back.kind, FrameKind::Request);
        assert_eq!(back.opcode, OpCode::Produce);
        assert_eq!(back.status, StatusCode::Ok);
        assert_eq!(back.request_id, 42);
        assert_eq!(back.from, NodeId(7));
        assert_eq!(back.trace_id, 0);
        assert_eq!(back.span_id, 0);
        assert_eq!(&back.payload[..], b"body");
    }

    #[test]
    fn envelope_trace_context_roundtrips() {
        let env = Envelope::request(OpCode::Produce, 1, NodeId(3), Bytes::new())
            .with_trace(0xAABB_CCDD_EEFF_0011, 0x1122_3344_5566_7788);
        let back = Envelope::decode(&env.encode()).unwrap();
        assert_eq!(back.trace_id, 0xAABB_CCDD_EEFF_0011);
        assert_eq!(back.span_id, 0x1122_3344_5566_7788);
    }

    #[test]
    fn error_response_roundtrips_error() {
        let e = KeraError::NoCapacity("only 1 backup".into());
        let env = Envelope::error_response(OpCode::CreateStream, 5, NodeId(0), &e);
        assert_eq!(env.status, StatusCode::NoCapacity);
        let err = env.check_status().unwrap_err();
        match err {
            KeraError::NoCapacity(msg) => assert!(msg.contains("only 1 backup")),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn not_leader_roundtrips_hint_and_term() {
        let e = KeraError::NotLeader { hint: Some(NodeId(3001)), term: 9 };
        let env = Envelope::error_response(OpCode::CreateStream, 8, NodeId(3000), &e);
        assert_eq!(env.status, StatusCode::NotLeader);
        match env.check_status().unwrap_err() {
            KeraError::NotLeader { hint, term } => {
                assert_eq!(hint, Some(NodeId(3001)));
                assert_eq!(term, 9);
            }
            other => panic!("wrong error: {other}"),
        }

        // No known leader: the sentinel survives the trip as None.
        let e = KeraError::NotLeader { hint: None, term: 3 };
        let env = Envelope::error_response(OpCode::GetMetadata, 9, NodeId(3000), &e);
        match env.check_status().unwrap_err() {
            KeraError::NotLeader { hint, term } => {
                assert_eq!(hint, None);
                assert_eq!(term, 3);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn throttled_roundtrips_retry_after_and_hint() {
        let e = KeraError::Throttled {
            retry_after: std::time::Duration::from_micros(2500),
            window_hint: 1 << 20,
        };
        let env = Envelope::error_response(OpCode::Produce, 4, NodeId(1), &e);
        assert_eq!(env.status, StatusCode::Throttled);
        match env.check_status().unwrap_err() {
            KeraError::Throttled { retry_after, window_hint } => {
                assert_eq!(retry_after, std::time::Duration::from_micros(2500));
                assert_eq!(window_hint, 1 << 20);
            }
            other => panic!("wrong error: {other}"),
        }

        // A legacy payload (message only, no extras) degrades gracefully.
        let mut w = crate::codec::Writer::new();
        w.string("throttled").unwrap();
        let env = Envelope::response(OpCode::Produce, 4, NodeId(1), StatusCode::Throttled, w.finish());
        match env.check_status().unwrap_err() {
            KeraError::Throttled { retry_after, window_hint } => {
                assert_eq!(retry_after, std::time::Duration::ZERO);
                assert_eq!(window_hint, 0);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn rejected_roundtrips_reason() {
        let e = KeraError::Rejected { reason: "admission queue full".into() };
        let env = Envelope::error_response(OpCode::Produce, 6, NodeId(2), &e);
        assert_eq!(env.status, StatusCode::Rejected);
        match env.check_status().unwrap_err() {
            KeraError::Rejected { reason } => assert!(reason.contains("admission queue full")),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn ok_response_check_passes() {
        let env =
            Envelope::response(OpCode::Ping, 1, NodeId(1), StatusCode::Ok, Bytes::new());
        env.check_status().unwrap();
    }

    #[test]
    fn status_error_mapping_covers_core_errors() {
        use kera_common::ids::{StreamId, StreamletId};
        assert_eq!(
            status_for_error(&KeraError::UnknownStream(StreamId(1))),
            StatusCode::UnknownStream
        );
        assert_eq!(
            status_for_error(&KeraError::UnknownStreamlet(StreamId(1), StreamletId(2))),
            StatusCode::UnknownStreamlet
        );
        assert_eq!(status_for_error(&KeraError::ShuttingDown), StatusCode::ShuttingDown);
        assert_eq!(
            status_for_error(&KeraError::Timeout { op: "x" }),
            StatusCode::Internal
        );
    }

    #[test]
    fn decode_bytes_slices_the_receive_buffer() {
        let env = Envelope::request(OpCode::Produce, 7, NodeId(1), Bytes::from(vec![9u8; 64]));
        let frame = env.encode();
        let back = Envelope::decode_bytes(&frame).unwrap();
        assert_eq!(back.request_id, 7);
        assert_eq!(&back.payload[..], &env.payload[..]);
        // Zero-copy: the decoded payload is a window into the frame's
        // allocation, not a copy of it.
        assert!(std::ptr::eq(
            back.payload.as_ref().as_ptr(),
            frame.as_ref()[Envelope::HEADER_LEN..].as_ptr()
        ));
        // The header-only encoding is byte-identical to the first 40
        // bytes of the contiguous encoding.
        assert_eq!(&env.encode_header()[..], &frame[..Envelope::HEADER_LEN]);
        // And decode_bytes on a header-only frame yields an empty payload.
        let empty = Envelope::request(OpCode::Ping, 1, NodeId(2), Bytes::new());
        assert!(Envelope::decode_bytes(&empty.encode()).unwrap().payload.is_empty());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Envelope::decode(&[]).is_err());
        assert!(Envelope::decode(&[9, 0, 0, 0]).is_err());
    }
}
