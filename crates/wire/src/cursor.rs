//! Consumer cursors.
//!
//! A consumer reads a streamlet through `Q` parallel *slots* (one per
//! active-group chain). Group ids are allocated deterministically per slot:
//! the `k`-th group of slot `s` in a streamlet configured with `Q` active
//! groups has id `s + k·Q`, so a cursor only needs the chain index, the
//! segment index within the group, and the byte offset within the segment.
//!
//! Brokers advance cursors across segment and group boundaries and return
//! the updated cursor with each fetch response, so consumers never need to
//! understand broker-side layout beyond this struct.

use kera_common::ids::GroupId;

use crate::codec::{Reader, Writer};
use kera_common::Result;

/// Position of a consumer within one slot (active-group chain) of a
/// streamlet.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct SlotCursor {
    /// Index into the slot's chain of groups (0 = first group of the slot).
    pub chain: u32,
    /// Segment index within the group.
    pub segment: u32,
    /// Byte offset within the segment (always a chunk boundary).
    pub offset: u32,
}

impl SlotCursor {
    /// Cursor at the very beginning of a slot.
    pub const START: SlotCursor = SlotCursor { chain: 0, segment: 0, offset: 0 };

    /// The group id this cursor points at, given the slot and `Q`.
    #[inline]
    pub fn group_id(&self, slot: u32, q: u32) -> GroupId {
        GroupId(slot + self.chain * q)
    }

    /// Moves to the next segment of the same group.
    #[inline]
    pub fn next_segment(self) -> SlotCursor {
        SlotCursor { chain: self.chain, segment: self.segment + 1, offset: 0 }
    }

    /// Moves to the first segment of the next group in this slot's chain.
    #[inline]
    pub fn next_group(self) -> SlotCursor {
        SlotCursor { chain: self.chain + 1, segment: 0, offset: 0 }
    }

    pub fn encode(&self, w: &mut Writer) {
        w.u32(self.chain).u32(self.segment).u32(self.offset);
    }

    pub fn decode(r: &mut Reader<'_>) -> Result<SlotCursor> {
        Ok(SlotCursor { chain: r.u32()?, segment: r.u32()?, offset: r.u32()? })
    }
}

impl std::fmt::Display for SlotCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}/s{}+{}", self.chain, self.segment, self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_id_derivation() {
        // Q = 4: slot 1's chain is groups 1, 5, 9, ...
        let q = 4;
        assert_eq!(SlotCursor::START.group_id(1, q), GroupId(1));
        assert_eq!(SlotCursor::START.next_group().group_id(1, q), GroupId(5));
        assert_eq!(
            SlotCursor::START.next_group().next_group().group_id(1, q),
            GroupId(9)
        );
        // Q = 1 degenerates to sequential group ids.
        assert_eq!(SlotCursor { chain: 3, segment: 0, offset: 0 }.group_id(0, 1), GroupId(3));
    }

    #[test]
    fn advancement_resets_lower_fields() {
        let c = SlotCursor { chain: 2, segment: 3, offset: 77 };
        let s = c.next_segment();
        assert_eq!(s, SlotCursor { chain: 2, segment: 4, offset: 0 });
        let g = c.next_group();
        assert_eq!(g, SlotCursor { chain: 3, segment: 0, offset: 0 });
    }

    #[test]
    fn encode_decode_roundtrip() {
        let c = SlotCursor { chain: 9, segment: 8, offset: 1024 };
        let mut w = Writer::new();
        c.encode(&mut w);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(SlotCursor::decode(&mut r).unwrap(), c);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(SlotCursor { chain: 1, segment: 2, offset: 3 }.to_string(), "c1/s2+3");
    }
}
