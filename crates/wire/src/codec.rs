//! Little-endian read/write primitives.
//!
//! A thin, explicit layer over raw byte slices: every message body in
//! [`crate::messages`] is built from these. Reads are bounds-checked and
//! return [`KeraError::Protocol`] on truncation, so a malformed frame can
//! never panic a broker.

use bytes::{BufMut, Bytes, BytesMut};
use kera_common::{KeraError, Result};

/// Checked `usize -> u32` conversion for length fields.
///
/// Every length on the wire is a `u32`; a buffer past 4 GiB must fail at
/// encode time with [`KeraError::EncodeOverflow`] rather than truncate
/// into a frame that *decodes* — with a silently wrong length.
#[inline]
pub fn checked_len(what: &'static str, len: usize) -> Result<u32> {
    u32::try_from(len).map_err(|_| KeraError::EncodeOverflow { what, len })
}

/// Sequential reader over a byte slice.
#[derive(Clone, Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    #[inline]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(KeraError::Protocol(format!(
                "truncated message: needed {n} bytes at offset {}, had {}",
                self.pos,
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    #[inline]
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    #[inline]
    pub fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    #[inline]
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    #[inline]
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads `n` raw bytes.
    #[inline]
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Reads a `u32` length prefix followed by that many bytes.
    pub fn len_prefixed(&mut self) -> Result<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Reads a `u32` element count for a collection whose elements each
    /// occupy at least `min_elem_size` bytes, rejecting counts that could
    /// not possibly fit in the remaining buffer. This keeps
    /// `Vec::with_capacity` on untrusted input from aborting the process
    /// with a huge allocation.
    pub fn collection_len(&mut self, min_elem_size: usize) -> Result<usize> {
        let n = self.u32()? as usize;
        let needed = n.saturating_mul(min_elem_size.max(1));
        if needed > self.remaining() {
            return Err(KeraError::Protocol(format!(
                "collection of {n} elements (>= {min_elem_size} bytes each) cannot fit in {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String> {
        let raw = self.len_prefixed()?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| KeraError::Protocol("invalid utf-8 in string field".into()))
    }
}

/// Sequential writer producing a `Bytes`.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    #[inline]
    pub fn new() -> Self {
        Self { buf: BytesMut::new() }
    }

    #[inline]
    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: BytesMut::with_capacity(cap) }
    }

    #[inline]
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.put_u8(v);
        self
    }

    #[inline]
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.put_u16_le(v);
        self
    }

    #[inline]
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32_le(v);
        self
    }

    #[inline]
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64_le(v);
        self
    }

    #[inline]
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.put_slice(v);
        self
    }

    /// Writes a `u32` length prefix followed by the bytes. Errors (leaving
    /// the buffer untouched) if `v` is too large for the length field.
    #[inline]
    pub fn len_prefixed(&mut self, v: &[u8]) -> Result<&mut Self> {
        let n = checked_len("length-prefixed field", v.len())?;
        self.u32(n);
        Ok(self.bytes(v))
    }

    #[inline]
    pub fn string(&mut self, v: &str) -> Result<&mut Self> {
        self.len_prefixed(v.as_bytes())
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    #[inline]
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = Writer::new();
        w.u8(0xab).u16(0xcdef).u32(0xdead_beef).u64(0x0123_4567_89ab_cdef);
        w.len_prefixed(b"hello").unwrap().string("world").unwrap();
        let buf = w.finish();

        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u16().unwrap(), 0xcdef);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.len_prefixed().unwrap(), b"hello");
        assert_eq!(r.string().unwrap(), "world");
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let buf = [1u8, 2, 3];
        let mut r = Reader::new(&buf);
        assert_eq!(r.u16().unwrap(), 0x0201);
        assert!(r.u32().is_err());
        // The failed read must not consume anything.
        assert_eq!(r.remaining(), 1);
        assert_eq!(r.u8().unwrap(), 3);
    }

    #[test]
    fn len_prefix_larger_than_payload_is_error() {
        let mut w = Writer::new();
        w.u32(100).bytes(b"short");
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(r.len_prefixed().is_err());
    }

    #[test]
    fn invalid_utf8_string_is_error() {
        let mut w = Writer::new();
        w.len_prefixed(&[0xff, 0xfe]).unwrap();
        let buf = w.finish();
        assert!(Reader::new(&buf).string().is_err());
    }

    /// Boundary test for the checked length conversion: exactly u32::MAX
    /// fits, one past it must surface `EncodeOverflow` (never a silent
    /// truncating `as` cast, which would produce a decodable-but-corrupt
    /// frame).
    #[test]
    #[cfg(target_pointer_width = "64")]
    fn oversized_length_is_a_structured_error() {
        assert_eq!(checked_len("x", u32::MAX as usize).unwrap(), u32::MAX);
        let err = checked_len("produce payload", u32::MAX as usize + 1).unwrap_err();
        match err {
            KeraError::EncodeOverflow { what, len } => {
                assert_eq!(what, "produce payload");
                assert_eq!(len, u32::MAX as usize + 1);
            }
            other => panic!("expected EncodeOverflow, got {other}"),
        }
        // A writer handed an oversized slice must leave the buffer
        // untouched so a caller can recover. We cannot allocate 4 GiB in
        // a test, so this is exercised through `checked_len` above; the
        // writer path is a direct delegation.
    }

    #[test]
    fn position_tracks_consumption() {
        let buf = [0u8; 16];
        let mut r = Reader::new(&buf);
        r.u64().unwrap();
        assert_eq!(r.position(), 8);
        assert_eq!(r.remaining(), 8);
    }
}
