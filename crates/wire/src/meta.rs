//! Metadata-log records and coordinator-replication messages.
//!
//! Every mutating coordinator operation is serialized as a [`MetaOp`]
//! and framed as a checksummed [`MetaRecord`] `(index, term, op)` before
//! it is applied — the coordinator's maps are a deterministic fold over
//! the committed records, so a restarted or newly-elected replica
//! rebuilds exactly the same state by replay (optionally from a
//! [`MetaSnapshot`]). Ops are *decided records*: the leader computes
//! placements and reassignments before appending, so application never
//! consults nondeterministic state (hash iteration order, liveness).
//!
//! Record framing mirrors the record/chunk discipline of this crate: a
//! CRC32C over everything after the checksum field, so truncation and
//! bit flips are always detected (fuzzed in `tests/fuzz_decoders.rs`).

use bytes::Bytes;
use kera_common::checksum::crc32c;
use kera_common::ids::{NodeId, StreamId};
use kera_common::{KeraError, Result};

use crate::codec::{Reader, Writer};
use crate::messages::{Reassignment, StreamMetadata};

// ---------------------------------------------------------------------------
// MetaOp: one mutating coordinator operation
// ---------------------------------------------------------------------------

/// A mutating coordinator operation, as decided by the leader.
#[derive(Clone, Debug, PartialEq)]
pub enum MetaOp {
    /// Add a broker to the membership (idempotent).
    RegisterBroker { node: NodeId },
    /// Create a stream with fully-computed placements.
    CreateStream { metadata: StreamMetadata },
    /// Delete a stream.
    DeleteStream { stream: StreamId },
    /// Mark a broker dead and move its streamlets per the explicit
    /// reassignment list (computed by the leader, applied verbatim).
    MarkDead { node: NodeId, reassignments: Vec<Reassignment> },
}

impl MetaOp {
    pub fn encode_into(&self, w: &mut Writer) {
        match self {
            MetaOp::RegisterBroker { node } => {
                w.u8(0).u32(node.raw());
            }
            MetaOp::CreateStream { metadata } => {
                w.u8(1);
                metadata.encode_into(w);
            }
            MetaOp::DeleteStream { stream } => {
                w.u8(2).u32(stream.raw());
            }
            MetaOp::MarkDead { node, reassignments } => {
                w.u8(3).u32(node.raw()).u32(reassignments.len() as u32);
                for r in reassignments {
                    w.u32(r.stream.raw()).u32(r.streamlet.raw()).u32(r.new_broker.raw());
                }
            }
        }
    }

    pub fn decode_from(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match r.u8()? {
            0 => MetaOp::RegisterBroker { node: NodeId(r.u32()?) },
            1 => MetaOp::CreateStream { metadata: StreamMetadata::decode_from(r)? },
            2 => MetaOp::DeleteStream { stream: StreamId(r.u32()?) },
            3 => {
                let node = NodeId(r.u32()?);
                let n = r.collection_len(12)?;
                let mut reassignments = Vec::with_capacity(n);
                for _ in 0..n {
                    reassignments.push(Reassignment {
                        stream: StreamId(r.u32()?),
                        streamlet: kera_common::ids::StreamletId(r.u32()?),
                        new_broker: NodeId(r.u32()?),
                    });
                }
                MetaOp::MarkDead { node, reassignments }
            }
            t => return Err(KeraError::Protocol(format!("unknown meta op tag {t}"))),
        })
    }
}

// ---------------------------------------------------------------------------
// MetaRecord: one checksummed entry of the metadata log
// ---------------------------------------------------------------------------

/// One entry of the replicated metadata log.
///
/// Wire layout (little-endian):
///
/// ```text
/// +0   checksum  u32   CRC32C over bytes [8 .. 8 + body_len)
/// +4   body_len  u32   length of everything after this field
/// +8   index     u64   log position (1-based; 0 = "before the log")
/// +16  term      u64   leader term that appended the record
/// +24  op        ...   MetaOp encoding, body_len - 16 bytes
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct MetaRecord {
    pub index: u64,
    pub term: u64,
    pub op: MetaOp,
}

impl MetaRecord {
    pub fn encode(&self) -> Result<Bytes> {
        let mut w = Writer::new();
        self.encode_into(&mut w)?;
        Ok(w.finish())
    }

    pub fn encode_into(&self, w: &mut Writer) -> Result<()> {
        let mut body = Writer::new();
        body.u64(self.index).u64(self.term);
        self.op.encode_into(&mut body);
        let body = body.finish();
        w.u32(crc32c(&body)).len_prefixed(&body)?;
        Ok(())
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf);
        Self::decode_from(&mut r)
    }

    pub fn decode_from(r: &mut Reader<'_>) -> Result<Self> {
        let expected = r.u32()?;
        let body = r.len_prefixed()?;
        let actual = crc32c(body);
        if actual != expected {
            return Err(KeraError::Corruption { what: "meta record", expected, actual });
        }
        let mut br = Reader::new(body);
        let index = br.u64()?;
        let term = br.u64()?;
        let op = MetaOp::decode_from(&mut br)?;
        if !br.is_empty() {
            return Err(KeraError::Protocol("trailing bytes in meta record body".into()));
        }
        Ok(Self { index, term, op })
    }
}

// ---------------------------------------------------------------------------
// MetaSnapshot: the folded state machine at a log position
// ---------------------------------------------------------------------------

/// A point-in-time image of the coordinator state machine, equivalent to
/// folding the log through `last_index`. Carried to lagging followers
/// and used to truncate the local log past `snapshot_threshold`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetaSnapshot {
    /// Log index this snapshot covers (replay resumes at `last_index+1`).
    pub last_index: u64,
    /// Term of the record at `last_index`.
    pub last_term: u64,
    /// Registered brokers, in registration order.
    pub brokers: Vec<NodeId>,
    /// Brokers marked dead.
    pub dead: Vec<NodeId>,
    /// All live streams with their placements.
    pub streams: Vec<StreamMetadata>,
}

impl MetaSnapshot {
    pub fn encode(&self) -> Result<Bytes> {
        let mut body = Writer::new();
        body.u64(self.last_index).u64(self.last_term);
        body.u32(self.brokers.len() as u32);
        for b in &self.brokers {
            body.u32(b.raw());
        }
        body.u32(self.dead.len() as u32);
        for d in &self.dead {
            body.u32(d.raw());
        }
        body.u32(self.streams.len() as u32);
        for s in &self.streams {
            s.encode_into(&mut body);
        }
        let body = body.finish();
        let mut w = Writer::with_capacity(8 + body.len());
        w.u32(crc32c(&body)).len_prefixed(&body)?;
        Ok(w.finish())
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf);
        Self::decode_from(&mut r)
    }

    pub fn decode_from(r: &mut Reader<'_>) -> Result<Self> {
        let expected = r.u32()?;
        let body = r.len_prefixed()?;
        let actual = crc32c(body);
        if actual != expected {
            return Err(KeraError::Corruption { what: "meta snapshot", expected, actual });
        }
        let mut br = Reader::new(body);
        let last_index = br.u64()?;
        let last_term = br.u64()?;
        let n = br.collection_len(4)?;
        let mut brokers = Vec::with_capacity(n);
        for _ in 0..n {
            brokers.push(NodeId(br.u32()?));
        }
        let n = br.collection_len(4)?;
        let mut dead = Vec::with_capacity(n);
        for _ in 0..n {
            dead.push(NodeId(br.u32()?));
        }
        let n = br.collection_len(8)?;
        let mut streams = Vec::with_capacity(n);
        for _ in 0..n {
            streams.push(StreamMetadata::decode_from(&mut br)?);
        }
        Ok(Self { last_index, last_term, brokers, dead, streams })
    }
}

// ---------------------------------------------------------------------------
// Election and log-replication RPC bodies
// ---------------------------------------------------------------------------

/// Candidate → replica: solicit a vote for `term`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VoteRequest {
    pub term: u64,
    pub candidate: NodeId,
    /// Candidate's log tail; a voter refuses candidates whose log is
    /// behind its own (committed records must survive elections).
    pub last_log_index: u64,
    pub last_log_term: u64,
}

impl VoteRequest {
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::with_capacity(28);
        w.u64(self.term).u32(self.candidate.raw()).u64(self.last_log_index).u64(self.last_log_term);
        w.finish()
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf);
        Ok(Self {
            term: r.u64()?,
            candidate: NodeId(r.u32()?),
            last_log_index: r.u64()?,
            last_log_term: r.u64()?,
        })
    }
}

/// Replica → candidate: the vote.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VoteResponse {
    /// Voter's term after processing (a candidate seeing a higher term
    /// steps down).
    pub term: u64,
    pub granted: bool,
}

impl VoteResponse {
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::with_capacity(9);
        w.u64(self.term).u8(u8::from(self.granted));
        w.finish()
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf);
        Ok(Self { term: r.u64()?, granted: r.u8()? != 0 })
    }
}

/// Leader → follower: replicate log entries (empty = heartbeat). When a
/// follower is behind the leader's snapshot horizon, `snapshot` carries
/// the full image and `entries` resume after it.
#[derive(Clone, Debug, PartialEq)]
pub struct MetaAppendRequest {
    pub term: u64,
    pub leader: NodeId,
    /// Index/term of the record immediately before `entries` (the Raft
    /// consistency check); 0/0 at the very start of the log.
    pub prev_index: u64,
    pub prev_term: u64,
    /// Highest index the leader knows is replicated on a quorum.
    pub commit_index: u64,
    pub snapshot: Option<MetaSnapshot>,
    pub entries: Vec<MetaRecord>,
}

impl MetaAppendRequest {
    pub fn encode(&self) -> Result<Bytes> {
        let mut w = Writer::new();
        w.u64(self.term)
            .u32(self.leader.raw())
            .u64(self.prev_index)
            .u64(self.prev_term)
            .u64(self.commit_index);
        match &self.snapshot {
            Some(s) => {
                w.u8(1).bytes(&s.encode()?);
            }
            None => {
                w.u8(0);
            }
        }
        w.u32(self.entries.len() as u32);
        for e in &self.entries {
            e.encode_into(&mut w)?;
        }
        Ok(w.finish())
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf);
        let term = r.u64()?;
        let leader = NodeId(r.u32()?);
        let prev_index = r.u64()?;
        let prev_term = r.u64()?;
        let commit_index = r.u64()?;
        let snapshot = match r.u8()? {
            0 => None,
            1 => Some(MetaSnapshot::decode_from(&mut r)?),
            f => return Err(KeraError::Protocol(format!("unknown snapshot flag {f}"))),
        };
        let n = r.collection_len(8)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(MetaRecord::decode_from(&mut r)?);
        }
        Ok(Self { term, leader, prev_index, prev_term, commit_index, snapshot, entries })
    }
}

/// Follower → leader: append outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetaAppendResponse {
    pub term: u64,
    /// False when the consistency check failed (the leader backs up and
    /// resends earlier entries or a snapshot).
    pub success: bool,
    /// Highest log index the follower now holds matching the leader.
    pub match_index: u64,
}

impl MetaAppendResponse {
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::with_capacity(17);
        w.u64(self.term).u8(u8::from(self.success)).u64(self.match_index);
        w.finish()
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf);
        Ok(Self { term: r.u64()?, success: r.u8()? != 0, match_index: r.u64()? })
    }
}

/// Replica → anyone: current leadership view (`GetLeader` response; the
/// request has an empty body).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GetLeaderResponse {
    /// The leader this replica believes in, if it has heard from one.
    pub leader: Option<NodeId>,
    pub term: u64,
    /// True when the responding replica is itself the leader.
    pub is_leader: bool,
}

impl GetLeaderResponse {
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::with_capacity(13);
        w.u32(self.leader.map_or(u32::MAX, NodeId::raw)).u64(self.term).u8(u8::from(self.is_leader));
        w.finish()
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf);
        let raw = r.u32()?;
        Ok(Self {
            leader: (raw != u32::MAX).then_some(NodeId(raw)),
            term: r.u64()?,
            is_leader: r.u8()? != 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kera_common::config::StreamConfig;
    use kera_common::ids::StreamletId;
    use crate::messages::StreamletPlacement;

    fn sample_metadata() -> StreamMetadata {
        StreamMetadata {
            config: StreamConfig { id: StreamId(7), streamlets: 2, ..StreamConfig::default() },
            placements: vec![
                StreamletPlacement { streamlet: StreamletId(0), broker: NodeId(1) },
                StreamletPlacement { streamlet: StreamletId(1), broker: NodeId(2) },
            ],
        }
    }

    #[test]
    fn meta_ops_roundtrip() {
        let ops = [
            MetaOp::RegisterBroker { node: NodeId(4) },
            MetaOp::CreateStream { metadata: sample_metadata() },
            MetaOp::DeleteStream { stream: StreamId(7) },
            MetaOp::MarkDead {
                node: NodeId(1),
                reassignments: vec![Reassignment {
                    stream: StreamId(7),
                    streamlet: StreamletId(0),
                    new_broker: NodeId(2),
                }],
            },
        ];
        for (i, op) in ops.into_iter().enumerate() {
            let rec = MetaRecord { index: i as u64 + 1, term: 3, op };
            let back = MetaRecord::decode(&rec.encode().unwrap()).unwrap();
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn meta_record_detects_any_bit_flip() {
        let rec = MetaRecord {
            index: 9,
            term: 2,
            op: MetaOp::CreateStream { metadata: sample_metadata() },
        };
        let encoded = rec.encode().unwrap();
        for byte in 0..encoded.len() {
            for bit in 0..8 {
                let mut mutant = encoded.to_vec();
                mutant[byte] ^= 1 << bit;
                assert!(
                    MetaRecord::decode(&mutant).is_err(),
                    "undetected flip at byte {byte} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn snapshot_roundtrips_and_detects_corruption() {
        let snap = MetaSnapshot {
            last_index: 17,
            last_term: 4,
            brokers: vec![NodeId(1), NodeId(2), NodeId(3)],
            dead: vec![NodeId(2)],
            streams: vec![sample_metadata()],
        };
        let encoded = snap.encode().unwrap();
        assert_eq!(MetaSnapshot::decode(&encoded).unwrap(), snap);

        let mut mutant = encoded.to_vec();
        mutant[10] ^= 0x40;
        assert!(MetaSnapshot::decode(&mutant).is_err());
    }

    #[test]
    fn election_messages_roundtrip() {
        let vr = VoteRequest { term: 5, candidate: NodeId(3001), last_log_index: 12, last_log_term: 4 };
        assert_eq!(VoteRequest::decode(&vr.encode()).unwrap(), vr);

        let resp = VoteResponse { term: 5, granted: true };
        assert_eq!(VoteResponse::decode(&resp.encode()).unwrap(), resp);

        let append = MetaAppendRequest {
            term: 5,
            leader: NodeId(3001),
            prev_index: 11,
            prev_term: 4,
            commit_index: 10,
            snapshot: Some(MetaSnapshot { last_index: 8, last_term: 3, ..MetaSnapshot::default() }),
            entries: vec![MetaRecord {
                index: 12,
                term: 5,
                op: MetaOp::RegisterBroker { node: NodeId(1) },
            }],
        };
        assert_eq!(MetaAppendRequest::decode(&append.encode().unwrap()).unwrap(), append);

        let ar = MetaAppendResponse { term: 5, success: false, match_index: 7 };
        assert_eq!(MetaAppendResponse::decode(&ar.encode()).unwrap(), ar);

        let gl = GetLeaderResponse { leader: Some(NodeId(3002)), term: 6, is_leader: false };
        assert_eq!(GetLeaderResponse::decode(&gl.encode()).unwrap(), gl);
        let gl = GetLeaderResponse { leader: None, term: 0, is_leader: false };
        assert_eq!(GetLeaderResponse::decode(&gl.encode()).unwrap(), gl);
    }

    #[test]
    fn empty_append_is_a_heartbeat() {
        let hb = MetaAppendRequest {
            term: 2,
            leader: NodeId(0),
            prev_index: 0,
            prev_term: 0,
            commit_index: 0,
            snapshot: None,
            entries: vec![],
        };
        let back = MetaAppendRequest::decode(&hb.encode().unwrap()).unwrap();
        assert!(back.entries.is_empty());
        assert!(back.snapshot.is_none());
    }
}
