//! Backup selection: which backups replicate each virtual segment.
//!
//! "When a new virtual segment is opened, a set of distinct backups is
//! chosen (potentially different from the ones associated to the previous
//! virtual segment) for replicating in order its associated chunks.
//! Distributing data to all backups helps at recovery time since data can
//! be read in parallel from many backups" (paper §III).

use kera_common::ids::NodeId;
use kera_common::rng::SplitMix64;
use kera_common::{KeraError, Result};

/// Strategy for spreading virtual segments over the backup fleet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// Rotate deterministically through the fleet (default: even spread,
    /// reproducible runs).
    RoundRobin,
    /// Uniformly random distinct set per virtual segment (RAMCloud-style).
    RandomDistinct,
}

/// Chooses `copies` distinct backups per virtual segment, never the local
/// node (the broker already holds the active replica).
pub struct BackupSelector {
    local: NodeId,
    candidates: Vec<NodeId>,
    policy: SelectionPolicy,
    cursor: usize,
    rng: SplitMix64,
}

impl BackupSelector {
    /// `backups`: every backup service in the cluster (may include the
    /// local node; it is filtered out).
    pub fn new(local: NodeId, backups: &[NodeId], policy: SelectionPolicy, seed: u64) -> Self {
        let candidates: Vec<NodeId> = backups.iter().copied().filter(|&b| b != local).collect();
        // Stagger the starting point by the (mixed) seed so the many
        // virtual logs of one broker — and the logs of different brokers —
        // don't all begin hammering the same backup.
        let mut rng = SplitMix64::new(seed);
        let cursor =
            if candidates.is_empty() { 0 } else { rng.next_u64() as usize % candidates.len() };
        Self { local, candidates, policy, cursor, rng }
    }

    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// Picks `copies` distinct backups for the next virtual segment.
    pub fn select(&mut self, copies: usize) -> Result<Vec<NodeId>> {
        if copies == 0 {
            return Ok(Vec::new());
        }
        if copies > self.candidates.len() {
            return Err(KeraError::NoCapacity(format!(
                "need {copies} backups, only {} available (excluding local {})",
                self.candidates.len(),
                self.local
            )));
        }
        match self.policy {
            SelectionPolicy::RoundRobin => {
                let n = self.candidates.len();
                let picks =
                    (0..copies).map(|i| self.candidates[(self.cursor + i) % n]).collect();
                self.cursor = (self.cursor + copies) % n;
                Ok(picks)
            }
            SelectionPolicy::RandomDistinct => {
                let idx = self.rng.choose_distinct(self.candidates.len(), copies);
                Ok(idx.into_iter().map(|i| self.candidates[i]).collect())
            }
        }
    }

    /// Removes a crashed backup from the candidate set.
    pub fn remove(&mut self, backup: NodeId) {
        self.candidates.retain(|&b| b != backup);
        if !self.candidates.is_empty() {
            self.cursor %= self.candidates.len();
        } else {
            self.cursor = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn never_selects_local() {
        let mut s = BackupSelector::new(NodeId(1), &nodes(4), SelectionPolicy::RoundRobin, 0);
        for _ in 0..20 {
            let picks = s.select(2).unwrap();
            assert!(!picks.contains(&NodeId(1)));
        }
        let mut s = BackupSelector::new(NodeId(1), &nodes(4), SelectionPolicy::RandomDistinct, 7);
        for _ in 0..20 {
            let picks = s.select(2).unwrap();
            assert!(!picks.contains(&NodeId(1)));
        }
    }

    #[test]
    fn round_robin_spreads_evenly() {
        let mut s = BackupSelector::new(NodeId(0), &nodes(4), SelectionPolicy::RoundRobin, 0);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..30 {
            for b in s.select(2).unwrap() {
                *counts.entry(b).or_insert(0u32) += 1;
            }
        }
        // 60 picks over 3 candidates = 20 each.
        assert_eq!(counts.len(), 3);
        assert!(counts.values().all(|&c| c == 20), "{counts:?}");
    }

    #[test]
    fn picks_are_distinct() {
        for policy in [SelectionPolicy::RoundRobin, SelectionPolicy::RandomDistinct] {
            let mut s = BackupSelector::new(NodeId(9), &nodes(6), policy, 3);
            for _ in 0..50 {
                let picks = s.select(3).unwrap();
                let set: HashSet<_> = picks.iter().collect();
                assert_eq!(set.len(), 3, "{policy:?} produced duplicates: {picks:?}");
            }
        }
    }

    #[test]
    fn insufficient_backups_is_an_error() {
        let mut s = BackupSelector::new(NodeId(0), &nodes(3), SelectionPolicy::RoundRobin, 0);
        assert!(s.select(2).is_ok());
        assert!(matches!(s.select(3), Err(KeraError::NoCapacity(_))));
    }

    #[test]
    fn zero_copies_is_empty() {
        let mut s = BackupSelector::new(NodeId(0), &nodes(1), SelectionPolicy::RoundRobin, 0);
        assert!(s.select(0).unwrap().is_empty());
    }

    #[test]
    fn remove_shrinks_candidates() {
        let mut s = BackupSelector::new(NodeId(0), &nodes(4), SelectionPolicy::RoundRobin, 0);
        assert_eq!(s.candidate_count(), 3);
        s.remove(NodeId(2));
        assert_eq!(s.candidate_count(), 2);
        for _ in 0..10 {
            assert!(!s.select(2).unwrap().contains(&NodeId(2)));
        }
        s.remove(NodeId(1));
        s.remove(NodeId(3));
        assert!(s.select(1).is_err());
    }
}
