//! The broker's set of virtual logs and the streamlet→log association.
//!
//! "Multiple streams' partitions are associated with multiple virtual
//! logs ... by the storage system transparently to users" (§III). The
//! association is the *replication capacity* dial:
//!
//! - [`VirtualLogPolicy::SharedPerBroker`]`(n)` — a pool of `n` logs per
//!   broker shared by **all** streams with the same replication factor;
//!   streamlets hash onto the pool. Small `n` = maximal consolidation
//!   (Figs. 8, 10, 12–16).
//! - [`VirtualLogPolicy::PerStreamlet`] — one log per hosted streamlet,
//!   the closest analogue of Kafka's log-per-partition (Fig. 9).
//! - [`VirtualLogPolicy::PerSubPartition`] — one log per (streamlet,
//!   slot): maximal replication parallelism (Figs. 11, 17–21).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use kera_common::config::{StreamConfig, VirtualLogPolicy};
use kera_common::ids::{NodeId, StreamId, StreamletId, VirtualLogId};
use kera_common::Result;
use kera_obs::NodeObs;
use parking_lot::RwLock;

use crate::selector::{BackupSelector, SelectionPolicy};
use crate::vlog::VirtualLog;

#[derive(Clone, PartialEq, Eq, Hash)]
enum LogKey {
    /// (replication factor, pool size, pool index)
    Shared(u32, u32, u32),
    /// (stream, streamlet) — factor is implied by the stream.
    Streamlet(StreamId, StreamletId),
    /// (stream, streamlet, slot)
    SubPartition(StreamId, StreamletId, u32),
}

/// All virtual logs of one broker.
pub struct VirtualLogSet {
    owner: NodeId,
    /// The backup co-located with this broker (excluded from selection:
    /// a copy on the same machine would die with the broker).
    colocated_backup: NodeId,
    /// Every backup service in the cluster.
    cluster_backups: Vec<NodeId>,
    selection: SelectionPolicy,
    logs: RwLock<HashMap<LogKey, Arc<VirtualLog>>>,
    next_id: AtomicU64,
    /// Handed to every created log (inert by default).
    obs: Arc<NodeObs>,
}

impl VirtualLogSet {
    pub fn new(
        owner: NodeId,
        colocated_backup: NodeId,
        cluster_backups: Vec<NodeId>,
        selection: SelectionPolicy,
    ) -> Self {
        Self::new_with_obs(
            owner,
            colocated_backup,
            cluster_backups,
            selection,
            NodeObs::disabled(owner.raw()),
        )
    }

    pub fn new_with_obs(
        owner: NodeId,
        colocated_backup: NodeId,
        cluster_backups: Vec<NodeId>,
        selection: SelectionPolicy,
        obs: Arc<NodeObs>,
    ) -> Self {
        Self {
            owner,
            colocated_backup,
            cluster_backups,
            selection,
            logs: RwLock::named("vlogset.logs", HashMap::new()),
            next_id: AtomicU64::new(0),
            obs,
        }
    }

    /// The virtual log that replicates chunks of `(stream, streamlet,
    /// slot)` under `config`'s policy, creating it on first use.
    pub fn log_for(
        &self,
        config: &StreamConfig,
        streamlet: StreamletId,
        slot: u32,
    ) -> Result<Arc<VirtualLog>> {
        let key = match config.replication.policy {
            VirtualLogPolicy::SharedPerBroker(n) => {
                let h = Self::mix(config.id, streamlet);
                LogKey::Shared(config.replication.factor, n, (h % u64::from(n)) as u32)
            }
            VirtualLogPolicy::PerStreamlet => LogKey::Streamlet(config.id, streamlet),
            VirtualLogPolicy::PerSubPartition => {
                LogKey::SubPartition(config.id, streamlet, slot)
            }
        };
        if let Some(log) = self.logs.read().get(&key) {
            return Ok(Arc::clone(log));
        }
        let mut guard = self.logs.write();
        if let Some(log) = guard.get(&key) {
            return Ok(Arc::clone(log));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let selector = BackupSelector::new(
            self.colocated_backup,
            &self.cluster_backups,
            self.selection,
            // Seed by owner and log id: deterministic, but distinct logs
            // start their round-robin at different backups.
            (u64::from(self.owner.raw()) << 32) | id,
        );
        let log = VirtualLog::new_with_obs(
            VirtualLogId(id as u32),
            self.owner,
            config.replication.vseg_size,
            config.replication.backup_copies() as usize,
            selector,
            Arc::clone(&self.obs),
        )?;
        guard.insert(key, Arc::clone(&log));
        Ok(log)
    }

    /// Streamlet-to-pool hash (SplitMix64 finalizer; stable across runs).
    fn mix(stream: StreamId, streamlet: StreamletId) -> u64 {
        let x = (u64::from(stream.raw()) << 32) | u64::from(streamlet.raw());
        let mut z = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Every backup node in the cluster (for freeing replicated
    /// segments on stream deletion).
    pub fn cluster_backups(&self) -> &[NodeId] {
        &self.cluster_backups
    }

    /// Removes (and returns) the *dedicated* virtual logs of `stream`
    /// (per-streamlet and per-sub-partition policies). Shared-pool logs
    /// interleave chunks of many streams and stay: reclaiming their
    /// backup space requires log cleaning, which the paper leaves to
    /// future work.
    pub fn remove_stream(&self, stream: StreamId) -> Vec<Arc<VirtualLog>> {
        let mut guard = self.logs.write();
        let keys: Vec<LogKey> = guard
            .keys()
            .filter(|k| match k {
                LogKey::Streamlet(s, _) => *s == stream,
                LogKey::SubPartition(s, _, _) => *s == stream,
                LogKey::Shared(_, _, _) => false,
            })
            .cloned()
            .collect();
        keys.into_iter().filter_map(|k| guard.remove(&k)).collect()
    }

    /// Number of logs created so far.
    pub fn log_count(&self) -> usize {
        self.logs.read().len()
    }

    /// Snapshot of every log (stats, draining at shutdown).
    pub fn all_logs(&self) -> Vec<Arc<VirtualLog>> {
        self.logs.read().values().cloned().collect()
    }

    /// Aggregate replication statistics: (batches, chunks, bytes).
    pub fn replication_stats(&self) -> (u64, u64, u64) {
        let logs = self.logs.read();
        let mut b = 0;
        let mut c = 0;
        let mut by = 0;
        for log in logs.values() {
            b += log.batches_sent.get();
            c += log.chunks_replicated.get();
            by += log.bytes_replicated.get();
        }
        (b, c, by)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kera_common::config::ReplicationConfig;
    use std::collections::HashSet;

    fn fleet(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn config(stream: u32, policy: VirtualLogPolicy) -> StreamConfig {
        StreamConfig {
            id: StreamId(stream),
            streamlets: 8,
            active_groups: 4,
            segments_per_group: 4,
            segment_size: 1 << 16,
            replication: ReplicationConfig { factor: 3, policy, vseg_size: 1 << 16 },
        }
    }

    #[test]
    fn shared_pool_bounds_log_count() {
        let set = VirtualLogSet::new(NodeId(0), NodeId(0), fleet(4), SelectionPolicy::RoundRobin);
        let cfg = config(1, VirtualLogPolicy::SharedPerBroker(4));
        // Many streams and streamlets, but at most 4 logs.
        for stream in 0..32 {
            let cfg = config(stream, VirtualLogPolicy::SharedPerBroker(4));
            for sl in 0..8 {
                set.log_for(&cfg, StreamletId(sl), 0).unwrap();
            }
        }
        assert_eq!(set.log_count(), 4);
        // Stable assignment: same key -> same log.
        let a = set.log_for(&cfg, StreamletId(3), 0).unwrap();
        let b = set.log_for(&cfg, StreamletId(3), 1).unwrap(); // slot ignored
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn shared_pool_uses_all_entries() {
        let set = VirtualLogSet::new(NodeId(0), NodeId(0), fleet(4), SelectionPolicy::RoundRobin);
        let mut seen = HashSet::new();
        for stream in 0..64 {
            let cfg = config(stream, VirtualLogPolicy::SharedPerBroker(4));
            for sl in 0..4 {
                seen.insert(set.log_for(&cfg, StreamletId(sl), 0).unwrap().id());
            }
        }
        assert_eq!(seen.len(), 4, "hash should reach every pool entry");
    }

    #[test]
    fn per_streamlet_policy_dedicates_logs() {
        let set = VirtualLogSet::new(NodeId(0), NodeId(0), fleet(4), SelectionPolicy::RoundRobin);
        let cfg = config(1, VirtualLogPolicy::PerStreamlet);
        let a = set.log_for(&cfg, StreamletId(0), 0).unwrap();
        let b = set.log_for(&cfg, StreamletId(1), 0).unwrap();
        let a2 = set.log_for(&cfg, StreamletId(0), 3).unwrap(); // slot ignored
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(Arc::ptr_eq(&a, &a2));
        assert_eq!(set.log_count(), 2);
    }

    #[test]
    fn per_subpartition_policy_splits_slots() {
        let set = VirtualLogSet::new(NodeId(0), NodeId(0), fleet(4), SelectionPolicy::RoundRobin);
        let cfg = config(1, VirtualLogPolicy::PerSubPartition);
        let a = set.log_for(&cfg, StreamletId(0), 0).unwrap();
        let b = set.log_for(&cfg, StreamletId(0), 1).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(set.log_count(), 2);
    }

    #[test]
    fn pools_are_separate_per_factor() {
        let set = VirtualLogSet::new(NodeId(0), NodeId(0), fleet(4), SelectionPolicy::RoundRobin);
        let mut cfg2 = config(1, VirtualLogPolicy::SharedPerBroker(2));
        cfg2.replication.factor = 2;
        let mut cfg3 = config(1, VirtualLogPolicy::SharedPerBroker(2));
        cfg3.replication.factor = 3;
        let a = set.log_for(&cfg2, StreamletId(0), 0).unwrap();
        let b = set.log_for(&cfg3, StreamletId(0), 0).unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "different factors must not share logs");
    }

    #[test]
    fn insufficient_backups_error_propagates() {
        // Fleet of 2 -> only 1 candidate backup, but factor 3 needs 2.
        let set = VirtualLogSet::new(NodeId(0), NodeId(0), fleet(2), SelectionPolicy::RoundRobin);
        let cfg = config(1, VirtualLogPolicy::PerStreamlet);
        assert!(set.log_for(&cfg, StreamletId(0), 0).is_err());
    }

    #[test]
    fn concurrent_log_for_creates_once() {
        let set =
            Arc::new(VirtualLogSet::new(NodeId(0), NodeId(0), fleet(4), SelectionPolicy::RoundRobin));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let set = Arc::clone(&set);
                std::thread::spawn(move || {
                    let cfg = config(1, VirtualLogPolicy::PerStreamlet);
                    set.log_for(&cfg, StreamletId(0), 0).unwrap().id()
                })
            })
            .collect();
        let ids: HashSet<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(ids.len(), 1);
        assert_eq!(set.log_count(), 1);
    }
}
