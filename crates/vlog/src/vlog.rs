//! The virtual log: one open virtual segment, ordered sealed segments,
//! and the consolidated replication protocol (paper §III–IV-B).
//!
//! ## Replication protocol
//!
//! Producers' worker threads call [`VirtualLog::append`] (under the slot
//! lock of the physical append — see
//! `kera_storage::streamlet::Streamlet::append_chunk_tracked`) and then
//! [`VirtualLog::sync`] with the returned ticket. `sync` implements group
//! commit: exactly one thread at a time becomes the *replicator*, ships
//! **every** pending chunk reference — across all waiting producers and
//! all the partitions sharing this log — as one `BackupWrite` RPC per
//! (virtual segment, backup), and acknowledges everyone whose ticket the
//! batch covered. Threads that arrive while a batch is in flight wait;
//! their chunks ride the next batch, which is exactly how the virtual log
//! "consolidates multiple replication RPCs by replacing small I/Os with
//! larger ones on backups".
//!
//! ## Failure handling
//!
//! If a backup dies mid-replication, the affected virtual segments are
//! re-replicated from offset zero onto a freshly selected backup set
//! (RAMCloud-style re-replication); producers keep waiting and succeed
//! once the new set acknowledges. Only when no replacement backups exist
//! does the log poison itself and fail its producers.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bytes::BytesMut;
use kera_common::copymode::copy_data_plane;
use kera_common::ids::{NodeId, VirtualLogId, VirtualSegmentId};
use kera_common::metrics::Counter;
use kera_common::{KeraError, Result};
use kera_obs::{NodeObs, Stage, TraceContext};
use kera_wire::messages::{backup_flags, BackupWriteRequest, EncodedBackupWrite};
use parking_lot::{Condvar, Mutex};

use crate::channel::BackupChannel;
use crate::selector::BackupSelector;
use crate::vseg::{ChunkRef, VirtualSegment};

struct VsegEntry {
    vseg: VirtualSegment,
    /// Cumulative log bytes before this virtual segment.
    base: u64,
}

struct LogState {
    /// Sealed-but-not-fully-replicated segments (front) plus the open
    /// segment (back).
    segs: VecDeque<VsegEntry>,
    selector: BackupSelector,
    next_vseg_id: u64,
    /// Total bytes appended to this log (the global header).
    appended: u64,
    /// Total bytes durable in log order (the global durable header).
    durable: u64,
    /// A replication batch is in flight.
    replicating: bool,
    /// Unrecoverable: not enough backups remain.
    poisoned: bool,
    /// Bumped on every transient replication failure so waiters can give
    /// up instead of sleeping forever.
    error_epoch: u64,
}

/// One captured replication batch for one virtual segment.
struct BatchWork {
    vseg_id: VirtualSegmentId,
    backups: Vec<NodeId>,
    vseg_offset: u32,
    refs: Vec<ChunkRef>,
    close: bool,
    checksum: u32,
}

/// A shared replicated virtual log.
pub struct VirtualLog {
    id: VirtualLogId,
    owner: NodeId,
    vseg_capacity: usize,
    /// Backup copies per virtual segment (R − 1).
    copies: usize,
    state: Mutex<LogState>,
    cv: Condvar,
    /// Set while the log sits in a [`crate::driver::ReplicationDriver`]
    /// queue (deduplicates enqueues).
    pub(crate) queued: AtomicBool,
    /// Observability handle (inert when the owning node runs without
    /// tracing); counters below live in its registry as `kera.vlog.*`.
    obs: Arc<NodeObs>,
    /// Trace context of the most recent traced rider: the producer whose
    /// `append` last touched this log. Driver-path batches — shipped on a
    /// thread with no trace of its own — adopt this context, so the span
    /// tree shows the batch a given produce rode out on.
    rider_trace: AtomicU64,
    rider_span: AtomicU64,
    /// Replication batches shipped (per backup set, not per backup).
    pub batches_sent: Arc<Counter>,
    /// Chunks replicated (before fan-out to backups).
    pub chunks_replicated: Arc<Counter>,
    /// Chunk bytes replicated (before fan-out).
    pub bytes_replicated: Arc<Counter>,
}

impl VirtualLog {
    /// Creates the log and opens its first virtual segment, with
    /// observability off (counters still work, tracing is inert).
    pub fn new(
        id: VirtualLogId,
        owner: NodeId,
        vseg_capacity: usize,
        copies: usize,
        selector: BackupSelector,
    ) -> Result<Arc<VirtualLog>> {
        Self::new_with_obs(id, owner, vseg_capacity, copies, selector, NodeObs::disabled(owner.raw()))
    }

    /// Creates the log bound to a node's observability handle: the
    /// replication counters register as `kera.vlog.*{vlog=<id>}` and
    /// shipped batches emit `vlog_ship` spans.
    pub fn new_with_obs(
        id: VirtualLogId,
        owner: NodeId,
        vseg_capacity: usize,
        copies: usize,
        mut selector: BackupSelector,
        obs: Arc<NodeObs>,
    ) -> Result<Arc<VirtualLog>> {
        let backups = selector.select(copies)?;
        let first = VirtualSegment::new(VirtualSegmentId(0), vseg_capacity, backups);
        let state = LogState {
            segs: VecDeque::from([VsegEntry { vseg: first, base: 0 }]),
            selector,
            next_vseg_id: 1,
            appended: 0,
            durable: 0,
            replicating: false,
            poisoned: false,
            error_epoch: 0,
        };
        let vl = id.raw().to_string();
        let labels: &[(&str, &str)] = &[("vlog", &vl)];
        let reg = obs.registry();
        let batches_sent = reg.counter("kera.vlog.batches_sent", labels);
        let chunks_replicated = reg.counter("kera.vlog.chunks_replicated", labels);
        let bytes_replicated = reg.counter("kera.vlog.bytes_replicated", labels);
        Ok(Arc::new(VirtualLog {
            id,
            owner,
            vseg_capacity,
            copies,
            state: Mutex::named("vlog.state", state),
            cv: Condvar::new(),
            queued: AtomicBool::new(false),
            obs,
            rider_trace: AtomicU64::new(0),
            rider_span: AtomicU64::new(0),
            batches_sent,
            chunks_replicated,
            bytes_replicated,
        }))
    }

    #[inline]
    pub fn id(&self) -> VirtualLogId {
        self.id
    }

    #[inline]
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Bytes appended so far.
    pub fn appended(&self) -> u64 {
        self.state.lock().appended
    }

    /// Bytes durable so far.
    pub fn durable(&self) -> u64 {
        self.state.lock().durable
    }

    /// Number of virtual segments not yet fully replicated (including the
    /// open one).
    pub fn live_vsegs(&self) -> usize {
        self.state.lock().segs.len()
    }

    /// Appends a chunk reference; returns the sync *ticket* (the log's
    /// header after this chunk). Rolls to a fresh virtual segment — with a
    /// freshly selected backup set — when the open one is (virtually)
    /// full.
    pub fn append(&self, r: ChunkRef) -> Result<u64> {
        let len = r.len as usize;
        if len > self.vseg_capacity {
            return Err(KeraError::ChunkTooLarge { chunk: len, segment: self.vseg_capacity });
        }
        let mut st = self.state.lock();
        if st.poisoned {
            return Err(KeraError::NoCapacity(format!("virtual log {} is poisoned", self.id)));
        }
        // A log is constructed with one open vseg; treat an (impossible)
        // empty deque as needing a roll rather than panicking mid-append.
        let needs_roll = st.segs.back().is_none_or(|e| !e.vseg.fits(len));
        if needs_roll {
            let backups = st.selector.select(self.copies)?;
            let id = VirtualSegmentId(st.next_vseg_id);
            st.next_vseg_id += 1;
            if let Some(open) = st.segs.back_mut() {
                open.vseg.seal();
            }
            let base = st.appended;
            st.segs.push_back(VsegEntry {
                vseg: VirtualSegment::new(id, self.vseg_capacity, backups),
                base,
            });
        }
        let Some(entry) = st.segs.back_mut() else {
            // Unreachable: the roll above pushed an open vseg.
            return Err(KeraError::NoCapacity(format!(
                "virtual log {} has no open segment",
                self.id
            )));
        };
        entry.vseg.append(r);
        st.appended += len as u64;
        let ticket = st.appended;
        drop(st);
        if self.obs.enabled() {
            // Batches adopt the context of the latest traced rider (see
            // the `rider_trace` field).
            let ctx = kera_obs::current();
            if ctx.is_some() {
                self.rider_trace.store(ctx.trace_id, Ordering::Relaxed);
                self.rider_span.store(ctx.span_id, Ordering::Relaxed);
            }
        }
        Ok(ticket)
    }

    /// Blocks until every byte up to `ticket` is durable on all backups
    /// (group commit: one replicator ships everyone's chunks at once).
    ///
    /// With `copies == 0` (replication factor 1) this is a no-op; callers
    /// should instead mark physical segments durable directly.
    pub fn sync(&self, channel: &dyn BackupChannel, ticket: u64) -> Result<()> {
        if self.copies == 0 {
            return Ok(());
        }
        let mut st = self.state.lock();
        loop {
            if st.durable >= ticket {
                return Ok(());
            }
            if st.poisoned {
                return Err(KeraError::NoCapacity(format!(
                    "virtual log {} is poisoned",
                    self.id
                )));
            }
            if st.replicating {
                self.cv.wait(&mut st);
                continue;
            }
            // Become the replicator.
            st.replicating = true;
            let work = Self::gather(&mut st);
            drop(st);

            let outcome = self.traced_execute(channel, &work);

            st = self.state.lock();
            st.replicating = false;
            match outcome {
                Ok(()) => {
                    self.apply_acks(&mut st, &work);
                    Self::recompute_durable(&mut st);
                    self.cv.notify_all();
                }
                Err(KeraError::Disconnected(dead)) => {
                    // Backup crash: reselect and re-replicate affected
                    // virtual segments from scratch.
                    self.handle_backup_failure(&mut st, dead);
                    self.cv.notify_all();
                    // loop: retry (or observe poison)
                }
                Err(e) => {
                    // Transient failure (e.g. timeout): surface to this
                    // caller; waiters retry with their own rounds.
                    self.cv.notify_all();
                    return Err(e);
                }
            }
        }
    }

    /// One asynchronous replication round (driver path): if no round is
    /// in flight, gathers and ships everything pending. Returns
    /// `Ok(true)` when more work remains (or another round is in
    /// flight), `Ok(false)` when the log is fully durable.
    pub fn ship_once(&self, channel: &dyn BackupChannel) -> Result<bool> {
        let mut st = self.state.lock();
        if st.poisoned {
            return Err(KeraError::NoCapacity(format!("virtual log {} is poisoned", self.id)));
        }
        if st.replicating {
            // Someone else is shipping: nothing for this caller to do.
            // No wakeup is lost — the in-flight shipper re-enqueues when
            // work remains, and every new append enqueues the log.
            return Ok(false);
        }
        let work = Self::gather(&mut st);
        if work.is_empty() {
            return Ok(false);
        }
        st.replicating = true;
        drop(st);

        let outcome = self.traced_execute(channel, &work);

        let mut st = self.state.lock();
        st.replicating = false;
        match outcome {
            Ok(()) => {
                self.apply_acks(&mut st, &work);
                Self::recompute_durable(&mut st);
                self.cv.notify_all();
                Ok(st.durable < st.appended
                    || st.segs.iter().any(|e| e.vseg.needs_replication()))
            }
            Err(KeraError::Disconnected(dead)) => {
                self.handle_backup_failure(&mut st, dead);
                self.cv.notify_all();
                if st.poisoned {
                    Err(KeraError::NoCapacity(format!(
                        "virtual log {} is poisoned",
                        self.id
                    )))
                } else {
                    Ok(true) // re-replicate onto the new backup set
                }
            }
            Err(e) => {
                st.error_epoch += 1;
                self.cv.notify_all();
                Err(e)
            }
        }
    }

    /// Driver path: blocks until `ticket` is durable, a transient
    /// replication failure occurs, the log is poisoned, or `timeout`
    /// elapses. Shipping itself is done by the replication driver.
    pub fn wait_durable(&self, ticket: u64, timeout: std::time::Duration) -> Result<()> {
        if self.copies == 0 {
            return Ok(());
        }
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.state.lock();
        let epoch = st.error_epoch;
        loop {
            if st.durable >= ticket {
                return Ok(());
            }
            if st.poisoned {
                return Err(KeraError::NoCapacity(format!(
                    "virtual log {} is poisoned",
                    self.id
                )));
            }
            if st.error_epoch != epoch {
                return Err(KeraError::Timeout { op: "replication (transient failure)" });
            }
            // lint: allow(no-time-under-lock) — condvar timed wait must re-read
            // the clock after every wakeup while still holding the state lock
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(KeraError::Timeout { op: "replication wait" });
            }
            self.cv.wait_for(&mut st, deadline - now);
        }
    }

    /// Collects, in log order, every unreplicated chunk reference.
    fn gather(st: &mut LogState) -> Vec<BatchWork> {
        let mut work = Vec::new();
        for entry in st.segs.iter() {
            if !entry.vseg.needs_replication() {
                continue;
            }
            let refs = entry.vseg.unreplicated().to_vec();
            let close = entry.vseg.is_sealed();
            work.push(BatchWork {
                vseg_id: entry.vseg.id(),
                backups: entry.vseg.backups().to_vec(),
                vseg_offset: entry.vseg.durable_header() as u32,
                refs,
                close,
                checksum: if close { entry.vseg.checksum() } else { 0 },
            });
        }
        work
    }

    /// [`Self::execute`] under a `vlog_ship` span. The span parents to
    /// the calling thread's context when one exists (the `sync` path:
    /// the replicator is a producer's own worker thread), else to the
    /// latest rider (the driver path), and is installed as the thread's
    /// current context so the replicate RPCs nest under it.
    fn traced_execute(&self, channel: &dyn BackupChannel, work: &[BatchWork]) -> Result<()> {
        let cur = kera_obs::current();
        let parent = if cur.is_some() {
            cur
        } else {
            TraceContext {
                trace_id: self.rider_trace.load(Ordering::Relaxed),
                span_id: self.rider_span.load(Ordering::Relaxed),
            }
        };
        let mut span = self.obs.span(Stage::VlogShip, parent);
        span.set_aux(work.iter().map(|w| w.refs.len() as u64).sum());
        let guard = if span.is_recording() {
            Some(kera_obs::enter(span.context()))
        } else {
            None
        };
        let outcome = self.execute(channel, work);
        drop(guard);
        span.finish();
        outcome
    }

    /// Ships the captured batches. Chunk bytes are copied out of the
    /// physical segments exactly once, straight into the wire-format
    /// request body for each virtual segment, then fanned out to that
    /// segment's backups (the channel shares the one body).
    fn execute(&self, channel: &dyn BackupChannel, work: &[BatchWork]) -> Result<()> {
        for w in work {
            let total: usize = w.refs.iter().map(|r| r.len as usize).sum();
            let mut flags = 0u8;
            if w.vseg_offset == 0 {
                flags |= backup_flags::OPEN;
            }
            if w.close {
                flags |= backup_flags::CLOSE;
            }
            let req = if copy_data_plane() {
                // lint: allow(no-hot-copy) — the seed's double copy
                // (gather buffer, then struct encode), kept reachable
                // behind KERA_COPY_DATA_PLANE=1 for the bench
                // trajectory.
                let mut buf = BytesMut::with_capacity(total);
                for r in &w.refs {
                    buf.extend_from_slice(r.bytes());
                }
                EncodedBackupWrite::from_request(&BackupWriteRequest {
                    source_broker: self.owner,
                    vlog: self.id,
                    vseg: w.vseg_id,
                    vseg_offset: w.vseg_offset,
                    flags,
                    vseg_checksum: w.checksum,
                    chunk_count: w.refs.len() as u32,
                    chunks: buf.freeze(),
                })
            } else {
                EncodedBackupWrite::pack(
                    self.owner,
                    self.id,
                    w.vseg_id,
                    w.vseg_offset,
                    flags,
                    w.checksum,
                    w.refs.len() as u32,
                    total,
                    w.refs.iter().map(|r| r.bytes()),
                )
            };
            channel.replicate(&w.backups, &req)?;
            self.batches_sent.inc();
            self.chunks_replicated.add(w.refs.len() as u64);
            self.bytes_replicated.add(total as u64);
        }
        Ok(())
    }

    /// Marks the shipped references durable and advances the physical
    /// segments' durable heads (in ref order — contiguous per segment).
    fn apply_acks(&self, st: &mut LogState, work: &[BatchWork]) {
        for w in work {
            if let Some(entry) = st.segs.iter_mut().find(|e| e.vseg.id() == w.vseg_id) {
                let made = entry.vseg.mark_replicated(w.refs.len(), w.close);
                for r in made {
                    r.segment.advance_durable(r.end());
                }
            }
        }
        // Drop fully-replicated sealed segments from the front.
        while st
            .segs
            .front()
            .map(|e| e.vseg.is_fully_replicated())
            .unwrap_or(false)
        {
            st.segs.pop_front();
        }
    }

    fn recompute_durable(st: &mut LogState) {
        let mut durable = st.appended;
        for e in &st.segs {
            if e.vseg.durable_header() < e.vseg.header() {
                durable = e.base + e.vseg.durable_header() as u64;
                break;
            }
        }
        st.durable = durable;
    }

    fn handle_backup_failure(&self, st: &mut LogState, dead: NodeId) {
        st.selector.remove(dead);
        let copies = self.copies;
        // Preserve `segs` intact; only rewrite backup sets that include
        // the dead node and rewind their replication progress. If the
        // selector runs out of backups mid-way the log is poisoned, so
        // partially rewritten sets are harmless — every waiter fails.
        let affected: Vec<VirtualSegmentId> = st
            .segs
            .iter()
            .filter(|e| e.vseg.backups().contains(&dead))
            .map(|e| e.vseg.id())
            .collect();
        for id in affected {
            let set = match st.selector.select(copies) {
                Ok(set) => set,
                Err(_) => {
                    st.poisoned = true;
                    return;
                }
            };
            if let Some(entry) = st.segs.iter_mut().find(|e| e.vseg.id() == id) {
                entry.vseg.reset_replication(set);
            }
        }
        Self::recompute_durable(st);
    }
}

impl std::fmt::Debug for VirtualLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("VirtualLog")
            .field("id", &self.id)
            .field("owner", &self.owner)
            .field("appended", &st.appended)
            .field("durable", &st.durable)
            .field("live_vsegs", &st.segs.len())
            .field("poisoned", &st.poisoned)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::MockChannel;
    use crate::selector::{BackupSelector, SelectionPolicy};
    use kera_common::ids::{GroupId, GroupRef, ProducerId, SegmentId, StreamId, StreamletId};
    use kera_storage::segment::Segment;
    use kera_wire::chunk::{ChunkBuilder, ChunkIter, ChunkView};
    use kera_wire::record::Record;

    fn selector(local: u32, fleet: u32) -> BackupSelector {
        let nodes: Vec<NodeId> = (0..fleet).map(NodeId).collect();
        BackupSelector::new(NodeId(local), &nodes, SelectionPolicy::RoundRobin, 42)
    }

    struct Phys {
        seg: Arc<Segment>,
        next_off: u64,
    }

    impl Phys {
        fn new() -> Self {
            let gref = GroupRef::new(StreamId(1), StreamletId(0), GroupId(0));
            Self { seg: Arc::new(Segment::new(gref, SegmentId(0), 1 << 20)), next_off: 0 }
        }

        fn chunk(&mut self, payload_len: usize) -> ChunkRef {
            let mut b =
                ChunkBuilder::new(8192, ProducerId(0), StreamId(1), StreamletId(0));
            let payload = vec![0xcd; payload_len];
            b.append(&Record::value_only(&payload));
            let bytes = b.seal();
            let at = self.seg.append_chunk(&bytes, self.next_off).unwrap();
            self.next_off += 1;
            let view =
                ChunkView::parse(self.seg.read(at.offset as usize, at.len as usize)).unwrap();
            ChunkRef {
                segment: Arc::clone(&self.seg),
                offset: at.offset,
                len: at.len,
                checksum: view.header().checksum,
                gref: self.seg.group(),
            }
        }
    }

    #[test]
    fn append_sync_makes_chunks_durable() {
        let vlog =
            VirtualLog::new(VirtualLogId(0), NodeId(0), 1 << 20, 2, selector(0, 4)).unwrap();
        let ch = MockChannel::new();
        let mut phys = Phys::new();
        let r = phys.chunk(100);
        let len = r.len as u64;
        let ticket = vlog.append(r).unwrap();
        assert_eq!(ticket, len);
        assert_eq!(vlog.durable(), 0);
        vlog.sync(&ch, ticket).unwrap();
        assert_eq!(vlog.durable(), len);
        // Physical durable head advanced.
        assert_eq!(phys.seg.durable_head(), len as usize);
        // One batch to one backup set of 2.
        assert_eq!(ch.batch_count(), 1);
        let batches = ch.batches.lock();
        assert_eq!(batches[0].0.len(), 2);
        let chunks: Vec<_> =
            ChunkIter::new(&batches[0].1.chunks).collect::<Result<_>>().unwrap();
        assert_eq!(chunks.len(), 1);
        chunks[0].verify().unwrap();
    }

    #[test]
    fn batching_consolidates_multiple_appends_into_one_rpc() {
        let vlog =
            VirtualLog::new(VirtualLogId(0), NodeId(0), 1 << 20, 1, selector(0, 2)).unwrap();
        let ch = MockChannel::new();
        let mut phys = Phys::new();
        let mut last = 0;
        for _ in 0..10 {
            last = vlog.append(phys.chunk(50)).unwrap();
        }
        vlog.sync(&ch, last).unwrap();
        // All ten chunks left in a single consolidated batch.
        assert_eq!(ch.batch_count(), 1);
        assert_eq!(ch.batches.lock()[0].1.chunk_count, 10);
        assert_eq!(vlog.chunks_replicated.get(), 10);
    }

    #[test]
    fn sync_with_factor_one_is_noop() {
        let vlog =
            VirtualLog::new(VirtualLogId(0), NodeId(0), 1 << 20, 0, selector(0, 1)).unwrap();
        let ch = MockChannel::new();
        let mut phys = Phys::new();
        let t = vlog.append(phys.chunk(10)).unwrap();
        vlog.sync(&ch, t).unwrap();
        assert_eq!(ch.batch_count(), 0);
    }

    #[test]
    fn vsegs_roll_and_rotate_backups() {
        let mut phys = Phys::new();
        let probe = phys.chunk(100);
        let chunk_len = probe.len as usize;
        // Capacity of exactly 2 chunks per vseg; 3 backups in fleet.
        let vlog = VirtualLog::new(
            VirtualLogId(0),
            NodeId(0),
            chunk_len * 2,
            1,
            selector(0, 4),
        )
        .unwrap();
        let ch = MockChannel::new();
        let mut last = vlog.append(probe).unwrap();
        for _ in 0..5 {
            last = vlog.append(phys.chunk(100)).unwrap();
        }
        vlog.sync(&ch, last).unwrap();
        // 6 chunks / 2 per vseg = 3 vsegs = 3 batches.
        assert_eq!(ch.batch_count(), 3);
        let batches = ch.batches.lock();
        // Backup sets rotate round-robin over 3 candidates.
        let sets: Vec<_> = batches.iter().map(|(b, _)| b[0]).collect();
        assert_eq!(sets.len(), 3);
        assert_ne!(sets[0], sets[1]);
        // Sealed vsegs carry OPEN+CLOSE (single batch each here).
        assert_eq!(batches[0].1.flags, backup_flags::OPEN | backup_flags::CLOSE);
        assert_ne!(batches[0].1.vseg_checksum, 0);
        // The still-open final vseg: OPEN only.
        assert_eq!(batches[2].1.flags, backup_flags::OPEN);
        drop(batches);
        // Fully replicated sealed vsegs were dropped.
        assert_eq!(vlog.live_vsegs(), 1);
    }

    #[test]
    fn oversized_chunk_rejected() {
        let vlog = VirtualLog::new(VirtualLogId(0), NodeId(0), 64, 1, selector(0, 2)).unwrap();
        let mut phys = Phys::new();
        let err = vlog.append(phys.chunk(500)).unwrap_err();
        assert!(matches!(err, KeraError::ChunkTooLarge { .. }));
    }

    /// Adds wire latency to the mock so batches overlap with appends —
    /// the condition under which group commit consolidates.
    struct SlowChannel(MockChannel);

    impl BackupChannel for SlowChannel {
        fn replicate(
            &self,
            backups: &[NodeId],
            req: &EncodedBackupWrite,
        ) -> Result<kera_wire::messages::BackupWriteResponse> {
            std::thread::sleep(std::time::Duration::from_micros(300));
            self.0.replicate(backups, req)
        }
    }

    #[test]
    fn concurrent_syncs_group_commit() {
        let vlog = Arc::new(
            VirtualLog::new(VirtualLogId(0), NodeId(0), 1 << 20, 2, selector(0, 4)).unwrap(),
        );
        let ch = Arc::new(SlowChannel(MockChannel::new()));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let vlog = Arc::clone(&vlog);
                let ch = Arc::clone(&ch);
                std::thread::spawn(move || {
                    let mut phys = Phys::new();
                    for _ in 0..50 {
                        let t = vlog.append(phys.chunk(40)).unwrap();
                        vlog.sync(&*ch, t).unwrap();
                    }
                    // Every byte this thread appended is durable.
                    assert!(phys.seg.durable_head() == phys.seg.head());
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(vlog.chunks_replicated.get(), 400);
        // Group commit must have consolidated: 400 chunks in strictly
        // fewer than 400 RPCs (overwhelmingly fewer in practice).
        assert!(
            ch.0.batch_count() < 400,
            "no consolidation happened: {} batches",
            ch.0.batch_count()
        );
        assert_eq!(vlog.durable(), vlog.appended());
    }

    #[test]
    fn transient_failure_surfaces_and_recovers() {
        let vlog =
            VirtualLog::new(VirtualLogId(0), NodeId(0), 1 << 20, 1, selector(0, 2)).unwrap();
        let ch = MockChannel::new();
        let mut phys = Phys::new();
        let t = vlog.append(phys.chunk(10)).unwrap();
        ch.fail.store(true, std::sync::atomic::Ordering::Relaxed);
        assert!(vlog.sync(&ch, t).is_err());
        assert_eq!(vlog.durable(), 0);
        // The failure is transient: once the channel heals, sync succeeds.
        ch.fail.store(false, std::sync::atomic::Ordering::Relaxed);
        vlog.sync(&ch, t).unwrap();
        assert_eq!(vlog.durable(), vlog.appended());
    }

    /// A channel that reports one backup as crashed until told otherwise.
    struct FlakyChannel {
        dead: Mutex<Option<NodeId>>,
        inner: MockChannel,
    }

    impl BackupChannel for FlakyChannel {
        fn replicate(
            &self,
            backups: &[NodeId],
            req: &EncodedBackupWrite,
        ) -> Result<kera_wire::messages::BackupWriteResponse> {
            if let Some(dead) = *self.dead.lock() {
                if backups.contains(&dead) {
                    return Err(KeraError::Disconnected(dead));
                }
            }
            self.inner.replicate(backups, req)
        }
    }

    #[test]
    fn backup_crash_triggers_rereplication() {
        // Fleet: local 0 + backups 1, 2, 3; 2 copies per vseg. Round-robin
        // starts with {1, 2}; declare 1 dead.
        let vlog =
            VirtualLog::new(VirtualLogId(0), NodeId(0), 1 << 20, 2, selector(0, 4)).unwrap();
        let ch = FlakyChannel { dead: Mutex::new(Some(NodeId(1))), inner: MockChannel::new() };
        let mut phys = Phys::new();
        let t = vlog.append(phys.chunk(25)).unwrap();
        // sync must succeed by reselecting {2, 3}.
        vlog.sync(&ch, t).unwrap();
        assert_eq!(vlog.durable(), vlog.appended());
        let batches = ch.inner.batches.lock();
        assert_eq!(batches.len(), 1);
        assert!(!batches[0].0.contains(&NodeId(1)));
        assert_eq!(batches[0].0.len(), 2);
    }

    #[test]
    fn log_poisons_when_no_backups_remain() {
        // Fleet: local 0 + backups 1, 2; need 2 copies. Kill 1 -> only
        // backup 2 remains -> poison.
        let vlog =
            VirtualLog::new(VirtualLogId(0), NodeId(0), 1 << 20, 2, selector(0, 3)).unwrap();
        let ch = FlakyChannel { dead: Mutex::new(Some(NodeId(1))), inner: MockChannel::new() };
        let mut phys = Phys::new();
        let t = vlog.append(phys.chunk(25)).unwrap();
        let err = vlog.sync(&ch, t).unwrap_err();
        assert!(matches!(err, KeraError::NoCapacity(_)));
        // Subsequent appends fail fast.
        assert!(vlog.append(phys.chunk(25)).is_err());
    }
}
