//! The replication channel abstraction.
//!
//! The virtual log is transport-agnostic: it hands fully-formed
//! [`BackupWriteRequest`]s to a [`BackupChannel`], which `kera-broker`
//! implements over the RPC stack (fanning one request out to all the
//! virtual segment's backups in parallel). Tests use [`MockChannel`].

use kera_common::ids::NodeId;
use kera_common::Result;
use kera_wire::messages::{BackupWriteRequest, BackupWriteResponse};

/// Ships replication batches to backups.
pub trait BackupChannel: Send + Sync + 'static {
    /// Sends `req` to every node in `backups` **in parallel** and waits
    /// for all acknowledgements. Returns the response of the slowest
    /// backup (they must agree on `durable_offset` in a correct run).
    fn replicate(&self, backups: &[NodeId], req: &BackupWriteRequest)
        -> Result<BackupWriteResponse>;
}

/// Test double recording every batch it is asked to replicate.
#[derive(Default)]
pub struct MockChannel {
    pub batches: parking_lot::Mutex<Vec<(Vec<NodeId>, BackupWriteRequest)>>,
    /// When set, `replicate` fails with this error constructor.
    pub fail: std::sync::atomic::AtomicBool,
}

impl MockChannel {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn batch_count(&self) -> usize {
        self.batches.lock().len()
    }

    /// Total chunk bytes shipped.
    pub fn bytes_shipped(&self) -> usize {
        self.batches.lock().iter().map(|(_, r)| r.chunks.len()).sum()
    }
}

impl BackupChannel for MockChannel {
    fn replicate(
        &self,
        backups: &[NodeId],
        req: &BackupWriteRequest,
    ) -> Result<BackupWriteResponse> {
        if self.fail.load(std::sync::atomic::Ordering::Relaxed) {
            return Err(kera_common::KeraError::Timeout { op: "mock replicate" });
        }
        let durable = req.vseg_offset + req.chunks.len() as u32;
        self.batches.lock().push((backups.to_vec(), req.clone()));
        Ok(BackupWriteResponse { durable_offset: durable })
    }
}
