//! The replication channel abstraction.
//!
//! The virtual log is transport-agnostic: it hands fully-formed
//! [`BackupWriteRequest`]s to a [`BackupChannel`], which `kera-broker`
//! implements over the RPC stack (fanning one request out to all the
//! virtual segment's backups in parallel). Tests use [`MockChannel`].

use kera_common::ids::NodeId;
use kera_common::Result;
use kera_wire::messages::{BackupWriteRequest, BackupWriteResponse, EncodedBackupWrite};

/// Ships replication batches to backups.
///
/// The request arrives already on the wire format
/// ([`EncodedBackupWrite`]): the virtual log packs header and chunk
/// bytes exactly once, and a transport implementation just hands the
/// shared body to each fan-out send.
pub trait BackupChannel: Send + Sync + 'static {
    /// Sends `req` to every node in `backups` **in parallel** and waits
    /// for all acknowledgements. Returns the response of the slowest
    /// backup (they must agree on `durable_offset` in a correct run).
    fn replicate(&self, backups: &[NodeId], req: &EncodedBackupWrite)
        -> Result<BackupWriteResponse>;
}

/// Test double recording every batch it is asked to replicate.
#[derive(Default)]
pub struct MockChannel {
    pub batches: parking_lot::Mutex<Vec<(Vec<NodeId>, BackupWriteRequest)>>,
    /// When set, `replicate` fails with this error constructor.
    pub fail: std::sync::atomic::AtomicBool,
}

impl MockChannel {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn batch_count(&self) -> usize {
        self.batches.lock().len()
    }

    /// Total chunk bytes shipped.
    pub fn bytes_shipped(&self) -> usize {
        self.batches.lock().iter().map(|(_, r)| r.chunks.len()).sum()
    }
}

impl BackupChannel for MockChannel {
    fn replicate(
        &self,
        backups: &[NodeId],
        req: &EncodedBackupWrite,
    ) -> Result<BackupWriteResponse> {
        if self.fail.load(std::sync::atomic::Ordering::Relaxed) {
            return Err(kera_common::KeraError::Timeout { op: "mock replicate" });
        }
        // Decode the shared body back into a struct (sliced, not
        // copied) so tests can assert on fields.
        let req = req.request()?;
        let durable = req.vseg_offset + req.chunks.len() as u32;
        self.batches.lock().push((backups.to_vec(), req));
        Ok(BackupWriteResponse { durable_offset: durable })
    }
}
