//! The **virtual log** — the paper's core contribution (§III, §IV-B).
//!
//! A virtual log is a shared replicated log that *decouples replication
//! from partitioning*: stream partitions (streamlets) keep ordering, while
//! virtual logs consolidate the chunks of many partitions into few, large
//! replication RPCs. Each virtual log is an ordered sequence of *virtual
//! segments*; a virtual segment holds only **references** to chunks that
//! physically live in the streamlets' segments, plus the metadata needed
//! to replicate them and to verify integrity at recovery.
//!
//! Crate layout:
//!
//! - [`vseg`] — virtual segments: chunk references, the header /
//!   durable-header pair, the checksum-of-checksums, per-vseg backup sets;
//! - [`vlog`] — the virtual log: one open virtual segment, rolling,
//!   replication batching and the sync protocol producers wait on;
//! - [`set`] — [`set::VirtualLogSet`]: maps streamlets (or sub-partitions)
//!   onto virtual logs according to the configured
//!   [`kera_common::config::VirtualLogPolicy`] — the *replication
//!   capacity* dial;
//! - [`selector`] — per-virtual-segment backup selection ("a set of
//!   distinct backups is chosen, potentially different from the ones
//!   associated to the previous virtual segment");
//! - [`channel`] — the [`channel::BackupChannel`] abstraction the
//!   replication engine drives (implemented over real RPC by
//!   `kera-broker`, mocked in tests).

pub mod channel;
pub mod driver;
pub mod selector;
pub mod set;
pub mod vlog;
pub mod vseg;

pub use channel::BackupChannel;
pub use driver::ReplicationDriver;
pub use set::VirtualLogSet;
pub use vlog::VirtualLog;
pub use vseg::{ChunkRef, VirtualSegment};
