//! Virtual segments: append-only metadata buffers of chunk references
//! (paper §IV-B).
//!
//! "The virtual segment only keeps chunk metadata and calculates its
//! remaining virtual space based on the accumulated chunk lengths. [...]
//! The virtual segment has a header with a checksum that covers the
//! chunks' checksums. The virtual segment also keeps two attributes: one
//! to denote the next available/free offset (the header) and another that
//! points to what was already durably replicated (the durable header)."

use std::sync::Arc;

use kera_common::checksum::Crc32c;
use kera_common::ids::{GroupRef, NodeId, VirtualSegmentId};
use kera_storage::segment::Segment;

/// A reference to a chunk physically stored in a streamlet's segment.
#[derive(Clone)]
pub struct ChunkRef {
    /// The physical segment holding the chunk bytes.
    pub segment: Arc<Segment>,
    /// Byte offset of the chunk within the segment.
    pub offset: u32,
    /// Chunk length in bytes.
    pub len: u32,
    /// Payload checksum (copied from the chunk header; folded into the
    /// virtual segment's checksum-of-checksums).
    pub checksum: u32,
    /// Which group the chunk belongs to (for debugging/recovery).
    pub gref: GroupRef,
}

impl std::fmt::Debug for ChunkRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChunkRef({} seg{} +{} len{})", self.gref, self.segment.id(), self.offset, self.len)
    }
}

impl ChunkRef {
    /// Reads the chunk's bytes out of its physical segment. Replication
    /// path: reads published (not necessarily durable) bytes.
    pub fn bytes(&self) -> &[u8] {
        self.segment.read(self.offset as usize, self.len as usize)
    }

    /// End of the chunk within its segment (`offset + len`).
    #[inline]
    pub fn end(&self) -> usize {
        self.offset as usize + self.len as usize
    }
}

/// State of a virtual segment. Mutated only under the owning virtual
/// log's state lock.
pub struct VirtualSegment {
    id: VirtualSegmentId,
    capacity: usize,
    /// Backups replicating this virtual segment (one replicated segment
    /// each). Chosen at open time; immutable afterwards.
    backups: Vec<NodeId>,
    /// Ordered chunk references.
    refs: Vec<ChunkRef>,
    /// The *header*: accumulated virtual size in bytes (Σ ref lens).
    virt_size: usize,
    /// The *durable header*: bytes acknowledged by all backups. Always a
    /// chunk boundary — chunks replicate atomically.
    durable: usize,
    /// Index of the first unreplicated ref (`refs[..replicated]` are
    /// durable).
    replicated: usize,
    /// Sealed: no further appends.
    sealed: bool,
    /// Whether the CLOSE batch (carrying the final checksum) has been
    /// acknowledged by the backups.
    close_acked: bool,
    /// Running checksum over the chunk checksums, in append order.
    checksum: Crc32c,
}

impl VirtualSegment {
    pub fn new(id: VirtualSegmentId, capacity: usize, backups: Vec<NodeId>) -> Self {
        Self {
            id,
            capacity,
            backups,
            refs: Vec::new(),
            virt_size: 0,
            durable: 0,
            replicated: 0,
            sealed: false,
            close_acked: false,
            checksum: Crc32c::new(),
        }
    }

    #[inline]
    pub fn id(&self) -> VirtualSegmentId {
        self.id
    }

    #[inline]
    pub fn backups(&self) -> &[NodeId] {
        &self.backups
    }

    /// The header: bytes (virtually) appended.
    #[inline]
    pub fn header(&self) -> usize {
        self.virt_size
    }

    /// The durable header: bytes replicated on all backups.
    #[inline]
    pub fn durable_header(&self) -> usize {
        self.durable
    }

    #[inline]
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    #[inline]
    pub fn is_fully_replicated(&self) -> bool {
        self.sealed && self.durable == self.virt_size && self.close_acked
    }

    #[inline]
    pub fn ref_count(&self) -> usize {
        self.refs.len()
    }

    /// True if a chunk of `len` bytes fits in the remaining virtual space.
    #[inline]
    pub fn fits(&self, len: usize) -> bool {
        !self.sealed && self.virt_size + len <= self.capacity
    }

    /// Appends a chunk reference. Caller must have checked [`fits`] (the
    /// virtual log rolls to a fresh virtual segment otherwise).
    ///
    /// [`fits`]: VirtualSegment::fits
    pub fn append(&mut self, r: ChunkRef) {
        debug_assert!(self.fits(r.len as usize));
        self.virt_size += r.len as usize;
        self.checksum.update_u32(r.checksum);
        self.refs.push(r);
    }

    /// Seals the virtual segment (it became full, or the log is shutting
    /// down).
    pub fn seal(&mut self) {
        self.sealed = true;
    }

    /// The checksum-of-chunk-checksums accumulated so far; final once
    /// sealed.
    pub fn checksum(&self) -> u32 {
        self.checksum.finish()
    }

    /// Unreplicated references (the next replication batch).
    pub fn unreplicated(&self) -> &[ChunkRef] {
        &self.refs[self.replicated..]
    }

    /// True when a replication round is needed: data to ship, or a sealed
    /// segment whose CLOSE has not been acknowledged.
    pub fn needs_replication(&self) -> bool {
        self.replicated < self.refs.len() || (self.sealed && !self.close_acked)
    }

    /// Rewinds replication after a backup crash: the virtual segment will
    /// be re-replicated from offset zero onto `new_backups`. Physical
    /// durable heads are *not* rewound — data already exposed to
    /// consumers stays exposed (it survives on the broker and the
    /// remaining backups); this only restores the replication factor.
    pub fn reset_replication(&mut self, new_backups: Vec<NodeId>) {
        self.backups = new_backups;
        self.durable = 0;
        self.replicated = 0;
        self.close_acked = false;
    }

    /// Marks the next `n` references replicated (acked by all backups) and
    /// advances the durable header; `close_acked` records that a CLOSE
    /// flag was carried and acknowledged. Returns the references just made
    /// durable so the caller can advance the physical segments' durable
    /// heads in order.
    pub fn mark_replicated(&mut self, n: usize, close_acked: bool) -> &[ChunkRef] {
        let start = self.replicated;
        let end = start + n;
        debug_assert!(end <= self.refs.len());
        for r in &self.refs[start..end] {
            self.durable += r.len as usize;
        }
        self.replicated = end;
        if close_acked {
            debug_assert!(self.sealed);
            self.close_acked = true;
        }
        &self.refs[start..end]
    }
}

impl std::fmt::Debug for VirtualSegment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualSegment")
            .field("id", &self.id)
            .field("header", &self.virt_size)
            .field("durable", &self.durable)
            .field("refs", &self.refs.len())
            .field("sealed", &self.sealed)
            .field("backups", &self.backups)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kera_common::checksum::Crc32c;
    use kera_common::ids::{GroupId, ProducerId, SegmentId, StreamId, StreamletId};
    use kera_wire::chunk::{ChunkBuilder, ChunkView};
    use kera_wire::record::Record;

    fn physical_chunk(payload: &[u8]) -> (Arc<Segment>, ChunkRef) {
        let gref = GroupRef::new(StreamId(1), StreamletId(0), GroupId(0));
        let seg = Arc::new(Segment::new(gref, SegmentId(0), 1 << 16));
        let mut b = ChunkBuilder::new(4096, ProducerId(0), StreamId(1), StreamletId(0));
        b.append(&Record::value_only(payload));
        let bytes = b.seal();
        let at = seg.append_chunk(&bytes, 0).unwrap();
        let view = ChunkView::parse(seg.read(at.offset as usize, at.len as usize)).unwrap();
        let checksum = view.header().checksum;
        let r = ChunkRef { segment: Arc::clone(&seg), offset: at.offset, len: at.len, checksum, gref };
        (seg, r)
    }

    #[test]
    fn append_tracks_header_and_space() {
        let (_s, r) = physical_chunk(b"0123456789");
        let len = r.len as usize;
        let mut v = VirtualSegment::new(VirtualSegmentId(1), len * 2, vec![NodeId(5)]);
        assert!(v.fits(len));
        v.append(r.clone());
        assert_eq!(v.header(), len);
        assert_eq!(v.durable_header(), 0);
        assert!(v.fits(len));
        v.append(r.clone());
        assert!(!v.fits(1));
        assert_eq!(v.ref_count(), 2);
        assert!(v.needs_replication());
    }

    #[test]
    fn chunk_ref_reads_physical_bytes() {
        let (_s, r) = physical_chunk(b"payload!");
        let view = ChunkView::parse(r.bytes()).unwrap();
        view.verify().unwrap();
        assert!(view.header().is_assigned());
    }

    #[test]
    fn mark_replicated_advances_durable_header() {
        let (_s, r) = physical_chunk(b"abc");
        let len = r.len as usize;
        let mut v = VirtualSegment::new(VirtualSegmentId(0), len * 4, vec![]);
        for _ in 0..4 {
            v.append(r.clone());
        }
        let made = v.mark_replicated(2, false);
        assert_eq!(made.len(), 2);
        assert_eq!(v.durable_header(), 2 * len);
        assert_eq!(v.unreplicated().len(), 2);
        v.mark_replicated(2, false);
        assert_eq!(v.durable_header(), v.header());
        assert!(!v.needs_replication());
        assert!(!v.is_fully_replicated(), "not sealed yet");
    }

    #[test]
    fn sealed_segment_needs_close_ack() {
        let (_s, r) = physical_chunk(b"abc");
        let len = r.len as usize;
        let mut v = VirtualSegment::new(VirtualSegmentId(0), len * 2, vec![]);
        v.append(r.clone());
        v.seal();
        assert!(v.is_sealed());
        assert!(!v.fits(1));
        assert!(v.needs_replication());
        v.mark_replicated(1, true);
        assert!(v.is_fully_replicated());
        assert!(!v.needs_replication());
    }

    #[test]
    fn checksum_matches_manual_accumulation() {
        let (_s, r1) = physical_chunk(b"one");
        let (_s2, r2) = physical_chunk(b"two");
        let mut v = VirtualSegment::new(VirtualSegmentId(0), 1 << 20, vec![]);
        v.append(r1.clone());
        v.append(r2.clone());
        let mut expect = Crc32c::new();
        expect.update_u32(r1.checksum);
        expect.update_u32(r2.checksum);
        assert_eq!(v.checksum(), expect.finish());
    }

    #[test]
    fn durable_header_never_exceeds_header() {
        let (_s, r) = physical_chunk(b"xyz");
        let mut v = VirtualSegment::new(VirtualSegmentId(0), 1 << 20, vec![]);
        v.append(r.clone());
        v.append(r.clone());
        v.mark_replicated(1, false);
        assert!(v.durable_header() <= v.header());
        v.mark_replicated(1, false);
        assert_eq!(v.durable_header(), v.header());
    }
}
