//! The replication driver: background threads that ship virtual-log
//! batches, decoupling replication from the produce workers.
//!
//! This mirrors RAMCloud's `ReplicaManager`: appends enqueue their
//! virtual log; a small pool of driver threads gathers and ships
//! consolidated batches; produce workers merely *wait* for their ticket
//! to become durable. Multiple virtual logs replicate concurrently (one
//! in-flight batch each) without any per-request thread fan-out, and
//! group commit across producers is preserved — whatever accumulated
//! while a batch was in flight rides the next one.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{self, Receiver, Sender};

use crate::channel::BackupChannel;
use crate::vlog::VirtualLog;

/// Backoff after a transient replication failure before retrying a log.
const RETRY_BACKOFF: Duration = Duration::from_millis(10);

/// Background replication executor shared by all virtual logs of one
/// broker.
pub struct ReplicationDriver {
    tx: Sender<Arc<VirtualLog>>,
    shutdown: Arc<AtomicBool>,
    threads: parking_lot::Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ReplicationDriver {
    /// Starts `threads` shipping threads over `channel`.
    ///
    /// The shipping threads deliberately do NOT hold an `Arc` to the
    /// driver (that would be a self-referential cycle keeping the driver
    /// — and everything its queue pins — alive forever); they share only
    /// the queue endpoints and the shutdown flag.
    pub fn start(channel: Arc<dyn BackupChannel>, threads: usize) -> Arc<ReplicationDriver> {
        let (tx, rx) = channel::unbounded::<Arc<VirtualLog>>();
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::with_capacity(threads.max(1));
        for i in 0..threads.max(1) {
            let rx = rx.clone();
            let tx = tx.clone();
            let channel = Arc::clone(&channel);
            let shutdown = Arc::clone(&shutdown);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("repl-driver-{i}"))
                    .spawn(move || run(channel, rx, tx, shutdown))
                    // lint: allow(no-panic) — spawn failure at driver startup
                    // is fatal by design; no broker can run without it.
                    .expect("spawn replication driver"),
            );
        }
        Arc::new(ReplicationDriver {
            tx,
            shutdown,
            threads: parking_lot::Mutex::new(handles),
        })
    }

    /// Schedules `vlog` for shipping (deduplicated: a log already queued
    /// is not queued twice).
    pub fn enqueue(&self, vlog: &Arc<VirtualLog>) {
        enqueue_on(&self.tx, vlog);
    }

    /// Stops the driver threads.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ReplicationDriver {
    fn drop(&mut self) {
        self.stop();
    }
}

fn enqueue_on(tx: &Sender<Arc<VirtualLog>>, vlog: &Arc<VirtualLog>) {
    if !vlog.queued.swap(true, Ordering::AcqRel) {
        let _ = tx.send(Arc::clone(vlog));
    }
}

fn run(
    channel: Arc<dyn BackupChannel>,
    rx: Receiver<Arc<VirtualLog>>,
    tx: Sender<Arc<VirtualLog>>,
    shutdown: Arc<AtomicBool>,
) {
    while !shutdown.load(Ordering::SeqCst) {
        let vlog = match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(v) => v,
            Err(channel::RecvTimeoutError::Timeout) => continue,
            Err(channel::RecvTimeoutError::Disconnected) => return,
        };
        vlog.queued.store(false, Ordering::Release);
        match vlog.ship_once(&*channel) {
            Ok(true) => {
                // More work remains (or appends landed while shipping):
                // requeue at the tail — fair across logs.
                enqueue_on(&tx, &vlog);
            }
            Ok(false) => {}
            Err(_) => {
                // Poisoned logs stop here (waiters already failed);
                // transient failures retry after a short backoff.
                if !shutdown.load(Ordering::SeqCst) && vlog.durable() < vlog.appended() {
                    std::thread::sleep(RETRY_BACKOFF);
                    enqueue_on(&tx, &vlog);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::MockChannel;
    use crate::selector::{BackupSelector, SelectionPolicy};
    use crate::vseg::ChunkRef;
    use kera_common::ids::*;
    use kera_storage::segment::Segment;
    use kera_wire::chunk::{ChunkBuilder, ChunkView};
    use kera_wire::record::Record;

    fn make_vlog(copies: usize) -> Arc<VirtualLog> {
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let selector = BackupSelector::new(NodeId(0), &nodes, SelectionPolicy::RoundRobin, 7);
        VirtualLog::new(VirtualLogId(0), NodeId(0), 1 << 20, copies, selector).unwrap()
    }

    fn append_one(vlog: &Arc<VirtualLog>, seg: &Arc<Segment>) -> u64 {
        let mut b = ChunkBuilder::new(512, ProducerId(0), StreamId(1), StreamletId(0));
        b.append(&Record::value_only(&[9u8; 40]));
        let bytes = b.seal();
        let at = seg.append_chunk(&bytes, 0).unwrap();
        vlog.append(ChunkRef {
            segment: Arc::clone(seg),
            offset: at.offset,
            len: at.len,
            checksum: ChunkView::parse(&bytes).unwrap().header().checksum,
            gref: seg.group(),
        })
        .unwrap()
    }

    fn segment() -> Arc<Segment> {
        Arc::new(Segment::new(
            GroupRef::new(StreamId(1), StreamletId(0), GroupId(0)),
            SegmentId(0),
            1 << 20,
        ))
    }

    #[test]
    fn driver_ships_and_wakes_waiters() {
        let channel = Arc::new(MockChannel::new());
        let driver = ReplicationDriver::start(channel.clone(), 2);
        let vlog = make_vlog(2);
        let seg = segment();
        let ticket = append_one(&vlog, &seg);
        driver.enqueue(&vlog);
        vlog.wait_durable(ticket, Duration::from_secs(2)).unwrap();
        assert_eq!(vlog.durable(), vlog.appended());
        assert_eq!(seg.durable_head(), seg.head());
        assert!(channel.batch_count() >= 1);
        driver.stop();
    }

    #[test]
    fn many_logs_make_progress_concurrently() {
        let channel = Arc::new(MockChannel::new());
        let driver = ReplicationDriver::start(channel.clone(), 2);
        let logs: Vec<_> = (0..16).map(|_| make_vlog(1)).collect();
        let seg = segment();
        let tickets: Vec<u64> = logs
            .iter()
            .map(|l| {
                let t = append_one(l, &seg);
                driver.enqueue(l);
                t
            })
            .collect();
        for (l, t) in logs.iter().zip(tickets) {
            l.wait_durable(t, Duration::from_secs(2)).unwrap();
        }
        driver.stop();
    }

    #[test]
    fn waiters_time_out_without_a_driver() {
        let vlog = make_vlog(1);
        let seg = segment();
        let ticket = append_one(&vlog, &seg);
        let err = vlog.wait_durable(ticket, Duration::from_millis(50)).unwrap_err();
        assert!(matches!(err, kera_common::KeraError::Timeout { .. }));
    }

    #[test]
    fn factor_one_wait_is_noop() {
        let vlog = make_vlog(0);
        vlog.wait_durable(123, Duration::from_millis(1)).unwrap();
    }

    #[test]
    fn enqueue_is_deduplicated() {
        let channel = Arc::new(MockChannel::new());
        let driver = ReplicationDriver::start(channel.clone(), 1);
        let vlog = make_vlog(1);
        // Many enqueues of an idle (empty) log: harmless, no batches.
        for _ in 0..100 {
            driver.enqueue(&vlog);
        }
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(channel.batch_count(), 0);
        driver.stop();
    }

    #[test]
    fn transient_failures_retry_until_success() {
        let channel = Arc::new(MockChannel::new());
        channel.fail.store(true, Ordering::Relaxed);
        let driver = ReplicationDriver::start(channel.clone(), 1);
        let vlog = make_vlog(1);
        let seg = segment();
        let ticket = append_one(&vlog, &seg);
        driver.enqueue(&vlog);
        // While failing, waiters bail out with a transient error...
        let err = vlog.wait_durable(ticket, Duration::from_millis(200)).unwrap_err();
        assert!(matches!(err, kera_common::KeraError::Timeout { .. }));
        // ...and once the channel heals, the driver's retry loop lands it.
        channel.fail.store(false, Ordering::Relaxed);
        vlog.wait_durable(ticket, Duration::from_secs(2)).unwrap();
        driver.stop();
    }
}
