//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel`: multi-producer **multi-consumer**
//! channels (std's mpsc receivers are not clonable, which the RPC worker
//! pool requires). Implemented as a mutex-protected deque with condvars;
//! correctness over throughput — the workspace's hot paths batch work,
//! so per-message overhead here is not the bottleneck.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: Option<usize>,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// A bounded MPMC channel; `send` blocks while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        // A zero-capacity rendezvous degenerates to capacity 1 here: the
        // workspace only uses small positive bounds as backpressure.
        with_cap(Some(cap.max(1)))
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel is empty"),
                TryRecvError::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// The sending half; clonable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while a bounded channel is full. Fails
        /// only when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.chan.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self
                            .chan
                            .not_full
                            .wait(st)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        pub fn len(&self) -> usize {
            self.chan.lock().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.chan.lock().queue.is_empty()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.chan.lock().senders += 1;
            Sender { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.lock();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.chan.not_empty.notify_all();
            }
        }
    }

    /// The receiving half; clonable (MPMC).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.lock();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .chan
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.lock();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .chan
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.lock();
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        pub fn len(&self) -> usize {
            self.chan.lock().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.chan.lock().queue.is_empty()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.chan.lock().receivers += 1;
            Receiver { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.lock();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.chan.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = channel::unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = channel::unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        tx.send(1).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
    }

    #[test]
    fn disconnect_propagates_both_ways() {
        let (tx, rx) = channel::unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());

        let (tx, rx) = channel::unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(channel::RecvError));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cloned_receivers_share_the_queue() {
        let (tx, rx) = channel::unbounded();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let a = rx.recv().unwrap();
        let b = rx2.recv().unwrap();
        let mut got = [a, b];
        got.sort_unstable();
        assert_eq!(got, [1, 2]);
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = channel::bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        t.join().unwrap();
    }
}
