//! Dynamic lock-order checking ("lockdep"), compiled only under the
//! `deadlock-detect` feature.
//!
//! Every shimmed [`Mutex`](crate::Mutex) / [`RwLock`](crate::RwLock)
//! carries a [`LockDep`] identity: an optional lock-class *name* (set
//! via the `named` constructors, matching the classes declared in
//! `lint/lock-order.toml`) and a lazily-assigned instance id. On each
//! acquisition the checker, *before* blocking on the real lock:
//!
//! 1. rejects re-acquisition of a lock already held by this thread
//!    (guaranteed self-deadlock with `std::sync` primitives),
//! 2. rejects acquisitions that contradict the declared hierarchy in
//!    `lint/lock-order.toml` (found by walking up from the current
//!    directory),
//! 3. rejects acquisitions that would close a cycle in the global
//!    graph of observed acquisition edges — i.e. a potential deadlock
//!    even if this particular run would have survived it.
//!
//! All rejections panic with the names of **both** locks involved so
//! the report is actionable without a debugger.

use std::cell::RefCell;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex as StdMutex, OnceLock};

/// Identity attached to every shimmed lock.
pub(crate) struct LockDep {
    name: Option<&'static str>,
    /// Lazily-assigned instance id (0 = unassigned).
    id: AtomicU32,
}

impl LockDep {
    pub(crate) const fn new(name: Option<&'static str>) -> LockDep {
        LockDep { name, id: AtomicU32::new(0) }
    }

    fn instance(&self) -> u32 {
        let id = self.id.load(Ordering::Relaxed);
        if id != 0 {
            return id;
        }
        static NEXT: AtomicU32 = AtomicU32::new(1);
        let fresh = NEXT.fetch_add(1, Ordering::Relaxed);
        match self.id.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => fresh,
            Err(current) => current,
        }
    }

    /// Runs every lockdep check and records the acquisition. Called
    /// before blocking on the real lock so violations panic instead of
    /// deadlocking.
    pub(crate) fn acquire(&self, shared: bool) -> Acquired {
        let instance = self.instance();
        on_acquire(self.name, instance, shared);
        Acquired { name: self.name, instance, shared }
    }
}

/// Token stored in a guard; removes the held-set entry on drop (via the
/// guard's `Drop`) and supports condvar release/reacquire round-trips.
#[derive(Clone, Copy)]
pub(crate) struct Acquired {
    name: Option<&'static str>,
    instance: u32,
    shared: bool,
}

impl Acquired {
    pub(crate) fn release(&self) {
        on_release(self.instance);
    }

    pub(crate) fn reacquire(&self) {
        on_acquire(self.name, self.instance, self.shared);
    }
}

/// Lock classes: named locks share a class per name (so ordering is
/// checked across all instances, e.g. every `streamlet.slot`); unnamed
/// locks each get their own class keyed by instance id.
#[derive(PartialEq, Eq, Hash, Clone, Copy)]
enum ClassKey {
    Named(&'static str),
    Anon(u32),
}

#[derive(Clone, Copy)]
struct HeldLock {
    class: usize,
    instance: u32,
    name: Option<&'static str>,
    shared: bool,
}

thread_local! {
    static HELD: RefCell<Vec<HeldLock>> = const { RefCell::new(Vec::new()) };
}

#[derive(Default)]
struct Registry {
    ids: HashMap<ClassKey, usize>,
    labels: Vec<String>,
    /// Observed acquisition edges: `edges[a]` holds classes acquired
    /// while `a` was held.
    edges: HashMap<usize, Vec<usize>>,
}

impl Registry {
    fn class(&mut self, key: ClassKey) -> usize {
        if let Some(&id) = self.ids.get(&key) {
            return id;
        }
        let id = self.labels.len();
        self.labels.push(match key {
            ClassKey::Named(n) => n.to_string(),
            ClassKey::Anon(i) => format!("<unnamed lock #{i}>"),
        });
        self.ids.insert(key, id);
        id
    }

    fn add_edge(&mut self, from: usize, to: usize) {
        let outs = self.edges.entry(from).or_default();
        if !outs.contains(&to) {
            outs.push(to);
        }
    }

    /// Is `to` reachable from `from` via observed acquisition edges?
    fn reaches(&self, from: usize, to: usize) -> bool {
        if from == to {
            return true;
        }
        let mut visited = vec![false; self.labels.len()];
        let mut stack = vec![from];
        while let Some(node) = stack.pop() {
            if node == to {
                return true;
            }
            if std::mem::replace(&mut visited[node], true) {
                continue;
            }
            if let Some(outs) = self.edges.get(&node) {
                stack.extend(outs.iter().copied());
            }
        }
        false
    }
}

fn registry() -> &'static StdMutex<Registry> {
    static REGISTRY: OnceLock<StdMutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(Default::default)
}

/// Rank of a named class in the `[hierarchy] order` list of
/// `lint/lock-order.toml`, or `None` when the class is undeclared (or
/// the file was not found — cycle detection still applies then).
fn declared_rank(name: &str) -> Option<usize> {
    static DECLARED: OnceLock<HashMap<String, usize>> = OnceLock::new();
    DECLARED.get_or_init(load_declared_order).get(name).copied()
}

fn load_declared_order() -> HashMap<String, usize> {
    let mut dir = std::env::current_dir().ok();
    while let Some(d) = dir {
        let candidate = d.join("lint").join("lock-order.toml");
        if let Ok(text) = std::fs::read_to_string(&candidate) {
            return parse_order(&text);
        }
        dir = d.parent().map(PathBuf::from);
    }
    HashMap::new()
}

/// Minimal extraction of the `[hierarchy] order = [...]` string array.
/// Class names contain no `#` or escapes, so comment stripping and
/// plain quote scanning suffice.
fn parse_order(text: &str) -> HashMap<String, usize> {
    let mut out = HashMap::new();
    let mut in_hierarchy = false;
    let mut in_order = false;
    let mut rank = 0usize;
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            in_hierarchy = line == "[hierarchy]";
            in_order = false;
            continue;
        }
        if !in_hierarchy {
            continue;
        }
        let rest = if let Some(idx) = line.find('=') {
            in_order = line[..idx].trim() == "order";
            &line[idx + 1..]
        } else {
            line
        };
        if !in_order {
            continue;
        }
        let mut chars = rest.chars();
        while chars.by_ref().any(|c| c == '"') {
            let name: String = chars.by_ref().take_while(|&c| c != '"').collect();
            out.insert(name, rank);
            rank += 1;
        }
        if rest.contains(']') {
            in_order = false;
        }
    }
    out
}

fn label_of(name: Option<&'static str>, instance: u32) -> String {
    match name {
        Some(n) => format!("\"{n}\""),
        None => format!("<unnamed lock #{instance}>"),
    }
}

fn on_acquire(name: Option<&'static str>, instance: u32, shared: bool) {
    let held_snapshot: Vec<HeldLock> = HELD.with(|h| h.borrow().clone());
    if held_snapshot
        .iter()
        .any(|h| h.instance == instance && !(h.shared && shared))
    {
        panic!(
            "lockdep: recursive acquisition of {} on one thread would deadlock",
            label_of(name, instance)
        );
    }
    let key = match name {
        Some(n) => ClassKey::Named(n),
        None => ClassKey::Anon(instance),
    };
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    let class = reg.class(key);
    for h in &held_snapshot {
        if h.class == class {
            if h.instance == instance {
                continue; // shared re-read of the same RwLock
            }
            panic!(
                "lockdep: nested acquisition of two \"{}\" locks on one thread; \
                 same-class nesting has no defined order and can deadlock",
                reg.labels[class]
            );
        }
        if let (Some(new_name), Some(held_name)) = (name, h.name) {
            if let (Some(rn), Some(rh)) = (declared_rank(new_name), declared_rank(held_name)) {
                if rn < rh {
                    panic!(
                        "lockdep: lock order violation: acquiring \"{new_name}\" while \
                         holding \"{held_name}\", but lint/lock-order.toml declares \
                         \"{new_name}\" before \"{held_name}\""
                    );
                }
            }
        }
        if reg.reaches(class, h.class) {
            panic!(
                "lockdep: lock-order cycle: acquiring {new} while holding {held} \
                 contradicts the previously observed order {new} -> {held}",
                new = format_args!("\"{}\"", reg.labels[class]),
                held = format_args!("\"{}\"", reg.labels[h.class]),
            );
        }
        reg.add_edge(h.class, class);
    }
    drop(reg);
    HELD.with(|h| h.borrow_mut().push(HeldLock { class, instance, name, shared }));
}

fn on_release(instance: u32) {
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(pos) = held.iter().rposition(|l| l.instance == instance) {
            held.remove(pos);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::parse_order;

    #[test]
    fn parses_multi_line_order_array() {
        let toml = r#"
# comment
[hierarchy]
order = [
    "a.first", # trailing comment
    "b.second",
    "c.third",
]

[rules]
other = ["x"]
"#;
        let ranks = parse_order(toml);
        assert_eq!(ranks.get("a.first"), Some(&0));
        assert_eq!(ranks.get("b.second"), Some(&1));
        assert_eq!(ranks.get("c.third"), Some(&2));
        assert_eq!(ranks.get("x"), None);
    }

    #[test]
    fn parses_single_line_order_array() {
        let ranks = parse_order("[hierarchy]\norder = [\"p\", \"q\"]\n");
        assert_eq!(ranks.get("p"), Some(&0));
        assert_eq!(ranks.get("q"), Some(&1));
    }
}
