//! Per-lock-class wait-time accounting.
//!
//! Named locks ([`crate::Mutex::named`] / [`crate::RwLock::named`]) can
//! record how long threads *block* on them: the lock methods try a
//! non-blocking acquire first and only start a timer when that fails, so
//! the uncontended fast path never reads the clock. Disabled (the
//! default) the whole plane costs one relaxed load and one branch per
//! acquisition; `kera-obs` flips it on when observability is enabled.
//!
//! Stats live in a global fixed-size table keyed by the class name's
//! `&'static str` pointer — allocation-free, lock-free, and safe to read
//! from any thread at any time. Each lock instance caches its table slot
//! in an `AtomicU32` so steady-state recording is two indexed atomic
//! adds. Buckets follow `kera-common`'s `LatencyHistogram` convention
//! (bucket *i* counts waits whose nanosecond value has its highest set
//! bit at position *i*), so scrapers can lift a slot straight into a
//! histogram snapshot.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Number of distinct lock classes the table can hold. The workspace
/// declares ~30 classes in `lint/lock-order.toml`; overflowing classes
/// are silently untimed rather than evicting earlier ones.
const MAX_CLASSES: usize = 64;

/// Buckets per class; matches `LatencyHistogram`'s 64 log₂ buckets.
const BUCKETS: usize = 64;

/// Sentinel for "slot not resolved yet" in per-lock caches.
pub(crate) const UNRESOLVED: u32 = u32::MAX;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Arms or disarms contention timing process-wide.
pub fn set_contention_timing(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether contention timing is armed (one relaxed load).
#[inline]
pub fn contention_timing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

struct ClassSlot {
    /// Pointer half of the class name's `&'static str`; 0 = free.
    name_ptr: AtomicUsize,
    name_len: AtomicUsize,
    contended: AtomicU64,
    wait_sum_ns: AtomicU64,
    wait_max_ns: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl ClassSlot {
    const fn new() -> ClassSlot {
        // `[const { ... }; N]` array-of-atomics initialization.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        ClassSlot {
            name_ptr: AtomicUsize::new(0),
            name_len: AtomicUsize::new(0),
            contended: AtomicU64::new(0),
            wait_sum_ns: AtomicU64::new(0),
            wait_max_ns: AtomicU64::new(0),
            buckets: [ZERO; BUCKETS],
        }
    }

    /// SAFETY of the reconstruction: `name_ptr`/`name_len` are only ever
    /// stored from a `&'static str`, which lives for the process.
    fn name(&self) -> Option<&'static str> {
        let ptr = self.name_ptr.load(Ordering::Acquire);
        if ptr == 0 {
            return None;
        }
        let len = self.name_len.load(Ordering::Acquire);
        // SAFETY: (ptr, len) came from a 'static str (see claim_slot);
        // the Acquire load pairs with the Release store of name_len,
        // which happens after name_ptr is claimed.
        unsafe {
            let bytes = std::slice::from_raw_parts(ptr as *const u8, len);
            Some(std::str::from_utf8_unchecked(bytes))
        }
    }
}

static TABLE: [ClassSlot; MAX_CLASSES] = {
    #[allow(clippy::declare_interior_mutable_const)]
    const SLOT: ClassSlot = ClassSlot::new();
    [SLOT; MAX_CLASSES]
};

/// Finds or claims the table slot for `name`, returning its index or
/// `UNRESOLVED` when the table is full. Comparison is by pointer first
/// (all `named()` call sites pass literals, so one class is usually one
/// pointer), falling back to a byte comparison so two crates naming the
/// same class string still share a slot.
fn resolve_slot(name: &'static str) -> u32 {
    let want_ptr = name.as_ptr() as usize;
    for (i, slot) in TABLE.iter().enumerate() {
        let ptr = slot.name_ptr.load(Ordering::Acquire);
        if ptr == 0 {
            // Try to claim the first free slot.
            if slot
                .name_ptr
                .compare_exchange(0, want_ptr, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                slot.name_len.store(name.len(), Ordering::Release);
                return i as u32;
            }
            // Lost the race; re-check what the winner stored.
        }
        let ptr = slot.name_ptr.load(Ordering::Acquire);
        if ptr == want_ptr {
            return i as u32;
        }
        if let Some(existing) = slot.name() {
            if existing == name {
                return i as u32;
            }
        }
    }
    UNRESOLVED
}

/// A wait-timing in progress: created *after* a failed non-blocking
/// acquire, finished once the blocking acquire returns.
pub(crate) struct WaitTimer {
    start: Instant,
    slot: u32,
}

impl WaitTimer {
    /// Starts timing one contended acquisition of `name`'s class.
    /// `cache` is the lock instance's slot cache. Returns `None` when
    /// timing is disarmed (checked by the caller too, but cheap) or the
    /// class table is full.
    #[inline]
    pub(crate) fn start(name: &'static str, cache: &AtomicU32) -> Option<WaitTimer> {
        if !contention_timing_enabled() {
            return None;
        }
        let mut slot = cache.load(Ordering::Relaxed);
        if slot == UNRESOLVED {
            slot = resolve_slot(name);
            if slot == UNRESOLVED {
                return None; // table full; stay untimed
            }
            cache.store(slot, Ordering::Relaxed);
        }
        Some(WaitTimer { start: Instant::now(), slot })
    }

    /// Records the elapsed wait into the class slot.
    pub(crate) fn finish(self) {
        let ns = self.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let slot = &TABLE[self.slot as usize];
        let bucket = 63 - ns.max(1).leading_zeros() as usize;
        slot.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        slot.contended.fetch_add(1, Ordering::Relaxed);
        slot.wait_sum_ns.fetch_add(ns, Ordering::Relaxed);
        slot.wait_max_ns.fetch_max(ns, Ordering::Relaxed);
    }
}

/// One class's accumulated wait stats (process lifetime totals).
#[derive(Clone, Debug)]
pub struct LockContention {
    /// Lock-class name as declared at the `named()` call site.
    pub class: &'static str,
    /// Acquisitions that found the lock held and had to block.
    pub contended: u64,
    pub wait_sum_ns: u64,
    pub wait_max_ns: u64,
    /// Log₂ wait-time buckets (`LatencyHistogram` convention).
    pub buckets: [u64; BUCKETS],
}

/// Snapshot of every class that has recorded at least one contended
/// acquisition since the process started.
pub fn contention_snapshot() -> Vec<LockContention> {
    let mut out = Vec::new();
    for slot in TABLE.iter() {
        let Some(class) = slot.name() else { continue };
        let contended = slot.contended.load(Ordering::Relaxed);
        if contended == 0 {
            continue;
        }
        out.push(LockContention {
            class,
            contended,
            wait_sum_ns: slot.wait_sum_ns.load(Ordering::Relaxed),
            wait_max_ns: slot.wait_max_ns.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| slot.buckets[i].load(Ordering::Relaxed)),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn contended_lock_records_wait_when_armed() {
        set_contention_timing(true);
        let m = Arc::new(crate::Mutex::named("lockdep-test.contention", 0u32));
        let m2 = Arc::clone(&m);
        let g = m.lock();
        let t = std::thread::spawn(move || {
            let _g = m2.lock(); // blocks until the holder releases
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(g);
        t.join().unwrap();
        set_contention_timing(false);

        let snap = contention_snapshot();
        let entry = snap
            .iter()
            .find(|c| c.class == "lockdep-test.contention")
            .expect("contended class recorded");
        assert!(entry.contended >= 1);
        assert!(
            entry.wait_sum_ns >= 10_000_000,
            "blocked ~20ms, recorded {}ns",
            entry.wait_sum_ns
        );
        assert_eq!(entry.buckets.iter().sum::<u64>(), entry.contended);
    }

    #[test]
    fn uncontended_and_disarmed_locks_record_nothing() {
        // Disarmed: even a contended acquisition stays untimed.
        set_contention_timing(false);
        let m = crate::Mutex::named("lockdep-test.quiet", ());
        drop(m.lock());

        // Armed but uncontended: the try-lock fast path never times.
        set_contention_timing(true);
        drop(m.lock());
        set_contention_timing(false);

        assert!(
            !contention_snapshot().iter().any(|c| c.class == "lockdep-test.quiet"),
            "uncontended lock must not appear in the snapshot"
        );
    }

    #[test]
    fn same_class_name_shares_one_slot() {
        set_contention_timing(true);
        let cache_a = AtomicU32::new(UNRESOLVED);
        let cache_b = AtomicU32::new(UNRESOLVED);
        let t1 = WaitTimer::start("lockdep-test.shared-slot", &cache_a).unwrap();
        t1.finish();
        let t2 = WaitTimer::start("lockdep-test.shared-slot", &cache_b).unwrap();
        t2.finish();
        set_contention_timing(false);
        assert_eq!(cache_a.load(Ordering::Relaxed), cache_b.load(Ordering::Relaxed));
        let snap = contention_snapshot();
        let entry = snap.iter().find(|c| c.class == "lockdep-test.shared-slot").unwrap();
        assert_eq!(entry.contended, 2);
    }
}
