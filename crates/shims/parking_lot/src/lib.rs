//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()`/`read()`/`write()` return guards directly (a panicked holder
//! does not poison for later callers), and [`Condvar`] operates on the
//! crate's own [`MutexGuard`] so waits can hand the inner std guard back
//! and forth.
//!
//! With the `deadlock-detect` feature enabled every lock additionally
//! feeds a dynamic lock-order checker (see [`lockdep`]): acquisitions
//! record edges into a global lock-order graph keyed by lock class, and
//! a cycle, a re-acquisition on the same thread, or an edge that
//! contradicts the hierarchy declared in `lint/lock-order.toml` panics
//! with the names of both locks involved. Locks join a named class via
//! [`Mutex::named`] / [`RwLock::named`]; plain `new` locks are checked
//! per-instance. The feature is off by default and adds zero fields and
//! zero work when disabled.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::AtomicU32;
use std::time::Duration;

mod contention;
#[cfg(feature = "deadlock-detect")]
mod lockdep;

pub use contention::{
    contention_snapshot, contention_timing_enabled, set_contention_timing, LockContention,
};

/// A mutual-exclusion lock without poisoning.
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "deadlock-detect")]
    dep: lockdep::LockDep,
    /// Lock-class name from [`Mutex::named`]; contention timing and
    /// lockdep both key off it. `None` for anonymous locks (untimed).
    name: Option<&'static str>,
    /// Cached contention-table slot for `name` (lazy; see
    /// [`contention`]).
    slot: AtomicU32,
    inner: std::sync::Mutex<T>,
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            #[cfg(feature = "deadlock-detect")]
            dep: lockdep::LockDep::new(None),
            name: None,
            slot: AtomicU32::new(contention::UNRESOLVED),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Like [`Mutex::new`], but tags the lock with a lock-class name.
    /// Use the class names declared in `lint/lock-order.toml`: the
    /// dynamic lock-order checker (`deadlock-detect` builds) enforces
    /// the declared hierarchy by it, and contention timing (when armed
    /// via [`set_contention_timing`]) accounts blocked-wait time per
    /// class under it.
    pub const fn named(name: &'static str, value: T) -> Mutex<T> {
        Mutex {
            #[cfg(feature = "deadlock-detect")]
            dep: lockdep::LockDep::new(Some(name)),
            name: Some(name),
            slot: AtomicU32::new(contention::UNRESOLVED),
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "deadlock-detect")]
        let dep = self.dep.acquire(false);
        let guard = self.lock_timed();
        MutexGuard {
            #[cfg(feature = "deadlock-detect")]
            dep,
            inner: Some(guard),
        }
    }

    /// The blocking acquire, with contention timing when armed: a
    /// non-blocking try first (the uncontended path never reads the
    /// clock), the wall clock only once the lock is known held.
    fn lock_timed(&self) -> std::sync::MutexGuard<'_, T> {
        if let Some(name) = self.name {
            if contention::contention_timing_enabled() {
                match self.inner.try_lock() {
                    Ok(g) => return g,
                    Err(std::sync::TryLockError::Poisoned(e)) => return e.into_inner(),
                    Err(std::sync::TryLockError::WouldBlock) => {
                        let timer = contention::WaitTimer::start(name, &self.slot);
                        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
                        if let Some(t) = timer {
                            t.finish();
                        }
                        return g;
                    }
                }
            }
        }
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts the lock without blocking; `None` if it is already held
    /// (including by the current thread). `deadlock-detect` builds record
    /// the acquisition only on success — a failed try never blocks, so it
    /// cannot contribute to a deadlock.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let guard = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        Some(MutexGuard {
            #[cfg(feature = "deadlock-detect")]
            dep: self.dep.acquire(false),
            inner: Some(guard),
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Mutex { .. }")
    }
}

/// RAII guard for [`Mutex`]. The inner std guard lives in an `Option`
/// so [`Condvar::wait`] can take it out and put the re-acquired one
/// back; it is always `Some` outside of that exchange.
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(feature = "deadlock-detect")]
    dep: lockdep::Acquired,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

#[cfg(feature = "deadlock-detect")]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.dep.release();
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during condvar wait")
    }
}

/// A reader-writer lock without poisoning.
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "deadlock-detect")]
    dep: lockdep::LockDep,
    /// Lock-class name from [`RwLock::named`] (see [`Mutex::named`]).
    name: Option<&'static str>,
    /// Cached contention-table slot for `name`.
    slot: AtomicU32,
    inner: std::sync::RwLock<T>,
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            #[cfg(feature = "deadlock-detect")]
            dep: lockdep::LockDep::new(None),
            name: None,
            slot: AtomicU32::new(contention::UNRESOLVED),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Like [`RwLock::new`], but tags the lock with a lock-class name
    /// (see [`Mutex::named`]).
    pub const fn named(name: &'static str, value: T) -> RwLock<T> {
        RwLock {
            #[cfg(feature = "deadlock-detect")]
            dep: lockdep::LockDep::new(Some(name)),
            name: Some(name),
            slot: AtomicU32::new(contention::UNRESOLVED),
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "deadlock-detect")]
        let dep = self.dep.acquire(true);
        let guard = self.read_timed();
        RwLockReadGuard {
            #[cfg(feature = "deadlock-detect")]
            dep,
            inner: guard,
        }
    }

    fn read_timed(&self) -> std::sync::RwLockReadGuard<'_, T> {
        if let Some(name) = self.name {
            if contention::contention_timing_enabled() {
                match self.inner.try_read() {
                    Ok(g) => return g,
                    Err(std::sync::TryLockError::Poisoned(e)) => return e.into_inner(),
                    Err(std::sync::TryLockError::WouldBlock) => {
                        let timer = contention::WaitTimer::start(name, &self.slot);
                        let g = self.inner.read().unwrap_or_else(|e| e.into_inner());
                        if let Some(t) = timer {
                            t.finish();
                        }
                        return g;
                    }
                }
            }
        }
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "deadlock-detect")]
        let dep = self.dep.acquire(false);
        let guard = self.write_timed();
        RwLockWriteGuard {
            #[cfg(feature = "deadlock-detect")]
            dep,
            inner: guard,
        }
    }

    fn write_timed(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        if let Some(name) = self.name {
            if contention::contention_timing_enabled() {
                match self.inner.try_write() {
                    Ok(g) => return g,
                    Err(std::sync::TryLockError::Poisoned(e)) => return e.into_inner(),
                    Err(std::sync::TryLockError::WouldBlock) => {
                        let timer = contention::WaitTimer::start(name, &self.slot);
                        let g = self.inner.write().unwrap_or_else(|e| e.into_inner());
                        if let Some(t) = timer {
                            t.finish();
                        }
                        return g;
                    }
                }
            }
        }
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "deadlock-detect")]
    dep: lockdep::Acquired,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

#[cfg(feature = "deadlock-detect")]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.dep.release();
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "deadlock-detect")]
    dep: lockdep::Acquired,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

#[cfg(feature = "deadlock-detect")]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.dep.release();
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable operating on this crate's [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Atomically releases the guard's lock and waits for a
    /// notification; the lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken during condvar wait");
        #[cfg(feature = "deadlock-detect")]
        guard.dep.release();
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "deadlock-detect")]
        guard.dep.reacquire();
        guard.inner = Some(inner);
    }

    /// Like [`Condvar::wait`] with an upper bound on the wait time.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken during condvar wait");
        #[cfg(feature = "deadlock-detect")]
        guard.dep.release();
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "deadlock-detect")]
        guard.dep.reacquire();
        guard.inner = Some(inner);
        WaitTimeoutResult { timed_out: result.timed_out() }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended_and_free() {
        let m = Mutex::new(3);
        {
            let g = m.lock();
            assert!(m.try_lock().is_none(), "held lock must not be re-entered");
            drop(g);
        }
        let mut g = m.try_lock().expect("free lock");
        *g += 1;
        drop(g);
        assert_eq!(*m.lock(), 4);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*shared;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        assert!(*g);
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let r = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(r.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}

#[cfg(all(test, feature = "deadlock-detect"))]
mod lockdep_tests {
    use super::*;

    fn panic_message(r: std::thread::Result<()>) -> String {
        match r {
            Ok(()) => panic!("expected the thread to panic"),
            Err(e) => {
                if let Some(s) = e.downcast_ref::<String>() {
                    s.clone()
                } else if let Some(s) = e.downcast_ref::<&'static str>() {
                    (*s).to_string()
                } else {
                    String::from("<non-string panic payload>")
                }
            }
        }
    }

    #[test]
    fn inverted_acquisition_is_detected() {
        let msg = panic_message(
            std::thread::spawn(|| {
                let a = Mutex::named("lockdep-test.alpha", 0u32);
                let b = Mutex::named("lockdep-test.beta", 0u32);
                {
                    let _ga = a.lock();
                    let _gb = b.lock(); // records alpha -> beta
                }
                let _gb = b.lock();
                let _ga = a.lock(); // beta -> alpha closes the cycle
            })
            .join(),
        );
        assert!(msg.contains("lockdep-test.alpha"), "message: {msg}");
        assert!(msg.contains("lockdep-test.beta"), "message: {msg}");
    }

    #[test]
    fn declared_hierarchy_violation_is_detected() {
        // lint/lock-order.toml declares streamlet.slot before vlog.state,
        // so taking a slot while holding vlog state must be rejected even
        // on the first (cycle-free) occurrence.
        let msg = panic_message(
            std::thread::spawn(|| {
                let state = Mutex::named("vlog.state", ());
                let slot = Mutex::named("streamlet.slot", ());
                let _gs = state.lock();
                let _gv = slot.lock();
            })
            .join(),
        );
        assert!(msg.contains("vlog.state"), "message: {msg}");
        assert!(msg.contains("streamlet.slot"), "message: {msg}");
    }

    #[test]
    fn recursive_acquisition_is_detected() {
        let msg = panic_message(
            std::thread::spawn(|| {
                let m = Mutex::named("lockdep-test.recursive", ());
                let _g1 = m.lock();
                let _g2 = m.lock();
            })
            .join(),
        );
        assert!(msg.contains("recursive"), "message: {msg}");
        assert!(msg.contains("lockdep-test.recursive"), "message: {msg}");
    }

    #[test]
    fn consistent_order_is_quiet() {
        let a = Mutex::named("lockdep-test.outer", ());
        let b = Mutex::named("lockdep-test.inner", ());
        for _ in 0..2 {
            let _ga = a.lock();
            let _gb = b.lock();
        }
    }

    #[test]
    fn shared_reads_of_one_rwlock_are_allowed() {
        let l = RwLock::named("lockdep-test.shared", 7);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 14);
    }

    #[test]
    fn condvar_wait_releases_and_reacquires_tracking() {
        // While a thread is parked in wait() the lock must not count as
        // held: the notifier takes it, flips the flag, and notifies.
        let shared = std::sync::Arc::new((
            Mutex::named("lockdep-test.cv", false),
            Condvar::new(),
        ));
        let s2 = std::sync::Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*shared;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        drop(g);
        t.join().unwrap();
        // The guard is gone; a fresh acquisition must succeed.
        let _g = m.lock();
    }
}
