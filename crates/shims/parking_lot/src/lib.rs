//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()`/`read()`/`write()` return guards directly (a panicked holder
//! does not poison for later callers), and [`Condvar`] operates on the
//! crate's own [`MutexGuard`] so waits can hand the inner std guard back
//! and forth.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Mutex { .. }")
    }
}

/// RAII guard for [`Mutex`]. The inner std guard lives in an `Option`
/// so [`Condvar::wait`] can take it out and put the re-acquired one
/// back; it is always `Some` outside of that exchange.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during condvar wait")
    }
}

/// A reader-writer lock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable operating on this crate's [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Atomically releases the guard's lock and waits for a
    /// notification; the lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken during condvar wait");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Like [`Condvar::wait`] with an upper bound on the wait time.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken during condvar wait");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        WaitTimeoutResult { timed_out: result.timed_out() }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*shared;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        assert!(*g);
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let r = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(r.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
