//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors minimal, API-compatible implementations of the
//! handful of external crates it depends on. This one covers the subset
//! of `bytes` the workspace uses: cheaply clonable immutable [`Bytes`],
//! a growable [`BytesMut`] builder, and the [`BufMut`] write methods.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Bytes {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// A buffer over a static slice (copied once; the real crate is
    /// zero-copy here, which callers cannot observe).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes { data: Arc::from(data) }
    }

    /// A buffer holding a copy of `data`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: Arc::from(data) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Bytes {
        Bytes { data: Arc::from(&v[..]) }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes { data: Arc::from(self.data) }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Little-endian write methods, mirroring `bytes::BufMut`.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u16_le(&mut self, v: u16);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        let c = b.clone();
        assert_eq!(b, c);
        assert!(Bytes::new().is_empty());
        assert_eq!(&Bytes::from_static(b"hi")[..], b"hi");
        assert_eq!(&Bytes::copy_from_slice(&[9])[..], &[9]);
    }

    #[test]
    fn bytes_mut_builds_and_freezes() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(1);
        m.put_u16_le(0x0203);
        m.put_u32_le(0x04050607);
        m.put_u64_le(0x08090a0b0c0d0e0f);
        m.put_slice(&[0xff]);
        m.extend_from_slice(&[0xee]);
        let b = m.freeze();
        assert_eq!(
            &b[..],
            &[1, 3, 2, 7, 6, 5, 4, 0xf, 0xe, 0xd, 0xc, 0xb, 0xa, 9, 8, 0xff, 0xee]
        );
    }
}
