//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors minimal, API-compatible implementations of the
//! handful of external crates it depends on. This one covers the subset
//! of `bytes` the workspace uses: cheaply clonable immutable [`Bytes`]
//! with zero-copy [`Bytes::slice`] windows, a growable [`BytesMut`]
//! builder whose [`BytesMut::freeze`]/[`BytesMut::split`] hand the
//! allocation over without copying the payload, and the [`BufMut`]
//! write methods.
//!
//! Representation: a `Bytes` is an `Arc<Vec<u8>>` plus an `(off, len)`
//! window, so slices taken from a decoded frame share the frame's
//! allocation — this is what makes the workspace's zero-copy data plane
//! possible (a chunk flowing producer → broker → backup is one
//! allocation with several windows onto it).

use std::fmt;
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, immutable byte buffer: a shared allocation plus
/// an `(off, len)` view window.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes { data: Arc::new(Vec::new()), off: 0, len: 0 }
    }

    /// A buffer over a static slice (copied once; the real crate is
    /// zero-copy here, which callers cannot observe).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// A buffer holding a copy of `data`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { len: data.len(), data: Arc::new(data.to_vec()), off: 0 }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A zero-copy sub-window sharing this buffer's allocation.
    ///
    /// Panics when the range is out of bounds (same contract as the
    /// real crate) — decoders must bounds-check *before* slicing.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds of {}",
            self.len
        );
        Bytes { data: Arc::clone(&self.data), off: self.off + start, len: end - start }
    }

    /// Reclaims the allocation for reuse when this is the only handle
    /// to it and the view covers the whole allocation; otherwise hands
    /// `self` back. This is the buffer-pool recycling hook: a producer
    /// that has seen the last ack for a chunk can turn it back into a
    /// `BytesMut` without allocating.
    pub fn try_into_mut(self) -> Result<BytesMut, Bytes> {
        if self.off != 0 || self.len != self.data.len() {
            return Err(self);
        }
        match Arc::try_unwrap(self.data) {
            Ok(vec) => Ok(BytesMut { data: vec }),
            Err(data) => Err(Bytes { off: self.off, len: self.len, data }),
        }
    }
}

impl From<Vec<u8>> for Bytes {
    /// Zero-copy: the vector's allocation is moved behind the `Arc`.
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { len: v.len(), data: Arc::new(v), off: 0 }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Bytes {
        Bytes::copy_from_slice(&v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Reserves room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }

    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(new_len, value);
    }

    /// Takes the accumulated contents, leaving `self` empty (and ready
    /// to accumulate the next frame after a [`BytesMut::reserve`]).
    /// The real crate splits within one allocation; here the allocation
    /// moves out whole and the builder starts a fresh one — either way
    /// the payload bytes are never copied.
    pub fn split(&mut self) -> BytesMut {
        BytesMut { data: std::mem::take(&mut self.data) }
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes { len: self.data.len(), data: Arc::new(self.data), off: 0 }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Little-endian write methods, mirroring `bytes::BufMut`.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u16_le(&mut self, v: u16);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        let c = b.clone();
        assert_eq!(b, c);
        assert!(Bytes::new().is_empty());
        assert_eq!(&Bytes::from_static(b"hi")[..], b"hi");
        assert_eq!(&Bytes::copy_from_slice(&[9])[..], &[9]);
    }

    #[test]
    fn bytes_mut_builds_and_freezes() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(1);
        m.put_u16_le(0x0203);
        m.put_u32_le(0x04050607);
        m.put_u64_le(0x08090a0b0c0d0e0f);
        m.put_slice(&[0xff]);
        m.extend_from_slice(&[0xee]);
        let b = m.freeze();
        assert_eq!(
            &b[..],
            &[1, 3, 2, 7, 6, 5, 4, 0xf, 0xe, 0xd, 0xc, 0xb, 0xa, 9, 8, 0xff, 0xee]
        );
    }

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let s = b.slice(2..6);
        assert_eq!(&s[..], &[2, 3, 4, 5]);
        let ss = s.slice(1..=2);
        assert_eq!(&ss[..], &[3, 4]);
        assert_eq!(&s.slice(..)[..], &s[..]);
        assert_eq!(s.slice(4..4).len(), 0);
        // Same backing allocation: the Arc is shared, not copied.
        assert!(std::ptr::eq(b.as_ref().as_ptr(), s.as_ref().as_ptr().wrapping_sub(2)));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![1, 2, 3]);
        let _ = b.slice(1..5);
    }

    #[test]
    fn split_and_freeze_do_not_copy() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(b"abcdef");
        let ptr = m.as_ref().as_ptr();
        let frozen = m.split().freeze();
        assert_eq!(&frozen[..], b"abcdef");
        assert_eq!(frozen.as_ref().as_ptr(), ptr);
        assert!(m.is_empty());
        m.reserve(8);
        m.extend_from_slice(b"next");
        assert_eq!(&m[..], b"next");
    }

    #[test]
    fn try_into_mut_reclaims_sole_owner() {
        let b = Bytes::from(vec![1, 2, 3]);
        let ptr = b.as_ref().as_ptr();
        let m = b.try_into_mut().unwrap();
        assert_eq!(m.as_ref().as_ptr(), ptr);
        assert_eq!(&m[..], &[1, 2, 3]);

        // A second handle blocks reclaim.
        let b = Bytes::from(vec![4, 5]);
        let held = b.clone();
        assert!(b.try_into_mut().is_err());
        drop(held);

        // A window that does not cover the allocation blocks reclaim.
        let b = Bytes::from(vec![6, 7, 8]);
        assert!(b.slice(1..).try_into_mut().is_err());
    }

    #[test]
    fn from_vec_is_zero_copy() {
        let v = vec![9u8; 32];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_ref().as_ptr(), ptr);
    }

    #[test]
    fn mutable_access_patches_in_place() {
        let mut m = BytesMut::new();
        m.extend_from_slice(&[0u8; 8]);
        m[4..8].copy_from_slice(&0xdead_beefu32.to_le_bytes());
        assert_eq!(&m[4..8], &0xdead_beefu32.to_le_bytes());
        m.truncate(6);
        assert_eq!(m.len(), 6);
        m.resize(10, 0xaa);
        assert_eq!(&m[6..], &[0xaa; 4]);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn vec_bufmut_matches_bytesmut() {
        let mut v: Vec<u8> = Vec::new();
        let mut m = BytesMut::new();
        for out in [&mut v as &mut dyn BufMut, &mut m as &mut dyn BufMut] {
            out.put_u8(7);
            out.put_u16_le(513);
            out.put_u32_le(1);
            out.put_u64_le(2);
            out.put_slice(b"xy");
        }
        assert_eq!(&v[..], &m[..]);
    }
}
