//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] for integer ranges / `any::<T>()` /
//! tuples, `collection::vec`, `option::of`, `ProptestConfig`, and the
//! `prop_assert*` macros. Generation is *deterministic*: each test's
//! RNG is seeded from its module path and name, so failures reproduce
//! exactly. No shrinking — a failing case panics with the generated
//! inputs visible via the assertion message.

/// Deterministic generator handed to strategies (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary byte string (e.g. the test's full name).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift reduction; bias is negligible for test sizes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value generator. Mirrors `proptest::strategy::Strategy` minus
/// shrinking: `generate` produces one value from the RNG.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start() as u64, *self.end() as u64);
                assert!(start <= end, "empty range strategy");
                let span = end.wrapping_sub(start).wrapping_add(1);
                if span == 0 {
                    // Full-domain u64 inclusive range.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Generates an arbitrary value of `T` (uniform over the domain).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any { _marker: std::marker::PhantomData }
}

macro_rules! any_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for a `Vec` whose length is drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec`: vectors of `element`, length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for an `Option` that is `Some` three times out of four.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Per-block configuration, set with `#![proptest_config(...)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::proptest!( @cases ($cfg).cases; $($rest)* );
    };
    ( @cases $cases:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let cases: u32 = $cases;
            let mut rng = $crate::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..cases {
                let _ = case;
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
    ( $($rest:tt)* ) => {
        $crate::proptest!( @cases $crate::ProptestConfig::default().cases; $($rest)* );
    };
}

/// `prop_assert!`: plain `assert!` (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `prop_assert_ne!`: plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Any, ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (0usize..512).generate(&mut rng);
            assert!(w < 512);
        }
    }

    proptest! {
        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn tuples_and_options_generate(
            (a, b) in (any::<u8>(), crate::option::of(any::<u64>())),
            flag in any::<bool>(),
        ) {
            let _ = (a, b, flag);
        }
    }
}
