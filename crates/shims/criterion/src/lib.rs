//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the bench crate uses — groups, throughput
//! annotation, `bench_function` / `bench_with_input`, `iter` /
//! `iter_custom`, and the `criterion_group!` / `criterion_main!`
//! macros. Instead of statistical sampling it runs a small fixed
//! iteration count and prints the mean, which keeps `cargo bench`
//! functional (smoke-level numbers) without any external deps.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark (per-iteration work).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> BenchmarkId {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything `bench_function` accepts as a name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

impl IntoBenchmarkId for &String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.clone() }
    }
}

/// Passed to the closure given to `bench_function`; runs the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Lets the routine time itself: it receives the iteration count and
    /// returns the total elapsed time.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        self.elapsed = routine(self.iters);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<I, R>(&mut self, id: I, mut routine: R) -> &mut Self
    where
        I: IntoBenchmarkId,
        R: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher { iters: self.criterion.iters, elapsed: Duration::ZERO };
        routine(&mut b);
        self.report(&id, &b);
        self
    }

    pub fn bench_with_input<I, T, R>(&mut self, id: I, input: &T, mut routine: R) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        R: FnMut(&mut Bencher, &T),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher { iters: self.criterion.iters, elapsed: Duration::ZERO };
        routine(&mut b, input);
        self.report(&id, &b);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let per_iter = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("  {:>10.1} MiB/s", n as f64 * 1e9 / per_iter / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:>10.0} elem/s", n as f64 * 1e9 / per_iter)
            }
            _ => String::new(),
        };
        println!("bench {:<50} {:>12.0} ns/iter{}", format!("{}/{}", self.name, id.id), per_iter, rate);
    }
}

/// Entry point handed to benchmark functions.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Small fixed count: smoke-level timing, bounded runtime.
        Criterion { iters: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(1));
        g.bench_function("iter", |b| b.iter(|| 1 + 1));
        g.bench_function(BenchmarkId::new("custom", 7), |b| {
            b.iter_custom(|iters| Duration::from_nanos(iters))
        });
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
