//! The broker-side stream store: every stream (and streamlet) hosted on
//! one broker.

use std::collections::HashMap;
use std::sync::Arc;

use kera_common::config::StreamConfig;
use kera_common::ids::{ProducerId, StreamId, StreamletId};
use kera_common::{KeraError, Result};
use kera_wire::cursor::SlotCursor;
use kera_wire::messages::StreamMetadata;
use parking_lot::RwLock;

use crate::streamlet::{Streamlet, StreamletAppend};

/// A stream as seen by one broker: its metadata plus the streamlets this
/// broker leads.
pub struct HostedStream {
    pub metadata: StreamMetadata,
    streamlets: RwLock<HashMap<StreamletId, Arc<Streamlet>>>,
}

impl HostedStream {
    pub fn new(metadata: StreamMetadata) -> Self {
        Self { metadata, streamlets: RwLock::named("store.streamlets", HashMap::new()) }
    }

    pub fn config(&self) -> &StreamConfig {
        &self.metadata.config
    }

    pub fn host_streamlet(&self, id: StreamletId) -> Arc<Streamlet> {
        let mut guard = self.streamlets.write();
        Arc::clone(
            guard
                .entry(id)
                .or_insert_with(|| Arc::new(Streamlet::new(self.metadata.config.id, id, &self.metadata.config))),
        )
    }

    pub fn streamlet(&self, id: StreamletId) -> Option<Arc<Streamlet>> {
        self.streamlets.read().get(&id).cloned()
    }

    pub fn streamlet_ids(&self) -> Vec<StreamletId> {
        let mut ids: Vec<_> = self.streamlets.read().keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

/// All streams hosted on one broker.
pub struct StreamStore {
    streams: RwLock<HashMap<StreamId, Arc<HostedStream>>>,
}

impl Default for StreamStore {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamStore {
    pub fn new() -> Self {
        Self { streams: RwLock::named("store.streams", HashMap::new()) }
    }

    /// Registers a stream on this broker and hosts the given streamlets.
    /// Idempotent per streamlet (re-hosting is a no-op).
    pub fn host(&self, metadata: StreamMetadata, streamlets: &[StreamletId]) -> Arc<HostedStream> {
        let stream_id = metadata.config.id;
        let hosted = {
            let mut guard = self.streams.write();
            Arc::clone(guard.entry(stream_id).or_insert_with(|| Arc::new(HostedStream::new(metadata))))
        };
        for &sid in streamlets {
            hosted.host_streamlet(sid);
        }
        hosted
    }

    pub fn stream(&self, id: StreamId) -> Result<Arc<HostedStream>> {
        self.streams.read().get(&id).cloned().ok_or(KeraError::UnknownStream(id))
    }

    pub fn streamlet(&self, stream: StreamId, streamlet: StreamletId) -> Result<Arc<Streamlet>> {
        self.stream(stream)?
            .streamlet(streamlet)
            .ok_or(KeraError::UnknownStreamlet(stream, streamlet))
    }

    /// Removes a stream from this broker, closing every group so
    /// concurrent appends fail cleanly. Returns whether it was hosted.
    pub fn remove(&self, id: StreamId) -> bool {
        let removed = self.streams.write().remove(&id);
        match removed {
            Some(hosted) => {
                for sid in hosted.streamlet_ids() {
                    if let Some(sl) = hosted.streamlet(sid) {
                        sl.close_all_groups();
                    }
                }
                true
            }
            None => false,
        }
    }

    pub fn stream_ids(&self) -> Vec<StreamId> {
        let mut ids: Vec<_> = self.streams.read().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Produce-path append: route a serialized chunk to its streamlet.
    pub fn append_chunk(
        &self,
        producer: ProducerId,
        stream: StreamId,
        streamlet: StreamletId,
        chunk: &[u8],
        records: u32,
    ) -> Result<(Arc<Streamlet>, StreamletAppend)> {
        let s = self.streamlet(stream, streamlet)?;
        let a = s.append_chunk(producer, chunk, records)?;
        Ok((s, a))
    }

    /// Fetch-path read.
    pub fn read_slot(
        &self,
        stream: StreamId,
        streamlet: StreamletId,
        slot: u32,
        cursor: SlotCursor,
        max_bytes: usize,
    ) -> Result<(Vec<u8>, SlotCursor)> {
        let s = self.streamlet(stream, streamlet)?;
        Ok(s.read_slot(slot, cursor, max_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kera_common::config::ReplicationConfig;
    use kera_common::ids::NodeId;
    use kera_wire::chunk::ChunkBuilder;
    use kera_wire::messages::StreamletPlacement;
    use kera_wire::record::Record;

    fn metadata(stream: u32, streamlets: u32) -> StreamMetadata {
        StreamMetadata {
            config: StreamConfig {
                id: StreamId(stream),
                streamlets,
                active_groups: 2,
                segments_per_group: 4,
                segment_size: 1 << 16,
                replication: ReplicationConfig::default(),
            },
            placements: (0..streamlets)
                .map(|i| StreamletPlacement {
                    streamlet: StreamletId(i),
                    broker: NodeId(1 + i % 2),
                })
                .collect(),
        }
    }

    fn chunk(stream: u32, streamlet: u32) -> bytes::Bytes {
        let mut b =
            ChunkBuilder::new(4096, ProducerId(3), StreamId(stream), StreamletId(streamlet));
        b.append(&Record::value_only(b"data"));
        b.seal()
    }

    #[test]
    fn host_and_lookup() {
        let store = StreamStore::new();
        store.host(metadata(1, 4), &[StreamletId(0), StreamletId(2)]);
        assert!(store.stream(StreamId(1)).is_ok());
        assert!(store.streamlet(StreamId(1), StreamletId(0)).is_ok());
        assert!(store.streamlet(StreamId(1), StreamletId(2)).is_ok());
        // Not hosted here:
        assert!(matches!(
            store.streamlet(StreamId(1), StreamletId(1)),
            Err(KeraError::UnknownStreamlet(_, _))
        ));
        assert!(matches!(store.stream(StreamId(9)), Err(KeraError::UnknownStream(_))));
    }

    #[test]
    fn hosting_is_idempotent() {
        let store = StreamStore::new();
        let h1 = store.host(metadata(1, 2), &[StreamletId(0)]);
        let s1 = h1.streamlet(StreamletId(0)).unwrap();
        let h2 = store.host(metadata(1, 2), &[StreamletId(0), StreamletId(1)]);
        let s2 = h2.streamlet(StreamletId(0)).unwrap();
        assert!(Arc::ptr_eq(&s1, &s2), "re-hosting must not reset a streamlet");
        assert_eq!(store.stream_ids(), vec![StreamId(1)]);
        assert_eq!(h2.streamlet_ids(), vec![StreamletId(0), StreamletId(1)]);
    }

    #[test]
    fn append_routes_to_streamlet() {
        let store = StreamStore::new();
        store.host(metadata(1, 2), &[StreamletId(1)]);
        let c = chunk(1, 1);
        let (_s, a) = store
            .append_chunk(ProducerId(3), StreamId(1), StreamletId(1), &c, 1)
            .unwrap();
        assert_eq!(a.gref.stream, StreamId(1));
        assert_eq!(a.gref.streamlet, StreamletId(1));
        assert_eq!(a.records, 1);
        // Wrong streamlet errors.
        assert!(store
            .append_chunk(ProducerId(3), StreamId(1), StreamletId(0), &c, 1)
            .is_err());
    }

    #[test]
    fn read_after_durable_append() {
        let store = StreamStore::new();
        store.host(metadata(1, 1), &[StreamletId(0)]);
        let c = chunk(1, 0);
        let (s, a) = store
            .append_chunk(ProducerId(3), StreamId(1), StreamletId(0), &c, 1)
            .unwrap();
        a.segment.make_all_durable();
        let slot = s.slot_of(ProducerId(3));
        let (data, _) = store
            .read_slot(StreamId(1), StreamletId(0), slot, SlotCursor::START, usize::MAX)
            .unwrap();
        assert_eq!(data.len(), c.len());
    }
}
