//! Physical segments: fixed-size in-memory buffers holding appended
//! chunks (paper §IV-A).
//!
//! A segment carries two watermarks, mirroring the paper's virtual
//! segment attributes ("similar attributes are kept for each physical
//! segment"):
//!
//! - the **head** — bytes appended and published (inside
//!   [`AppendBuffer`]);
//! - the **durable head** — bytes whose chunks have been acknowledged by
//!   all backups. Consumers may only read below it, so "consumers only
//!   pull durably replicated data".
//!
//! With replication factor 1 the append path advances the durable head
//! immediately.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use kera_common::ids::{GroupRef, SegmentId};
use kera_wire::chunk::{self, CHUNK_HEADER};

use crate::buffer::AppendBuffer;

/// A fixed-size in-memory segment of one group.
pub struct Segment {
    group: GroupRef,
    id: SegmentId,
    buf: AppendBuffer,
    /// Bytes acknowledged by all backups (≤ head, monotone).
    durable: AtomicUsize,
    /// No further appends accepted once sealed.
    sealed: AtomicBool,
}

/// Result of appending one chunk to a segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentAppend {
    /// Byte offset of the chunk within the segment.
    pub offset: u32,
    /// Chunk length in bytes.
    pub len: u32,
}

impl Segment {
    pub fn new(group: GroupRef, id: SegmentId, capacity: usize) -> Self {
        Self {
            group,
            id,
            buf: AppendBuffer::new(capacity),
            durable: AtomicUsize::new(0),
            sealed: AtomicBool::new(false),
        }
    }

    #[inline]
    pub fn group(&self) -> GroupRef {
        self.group
    }

    #[inline]
    pub fn id(&self) -> SegmentId {
        self.id
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Published bytes (the head).
    #[inline]
    pub fn head(&self) -> usize {
        self.buf.len()
    }

    /// Bytes consumers may read.
    #[inline]
    pub fn durable_head(&self) -> usize {
        self.durable.load(Ordering::Acquire)
    }

    #[inline]
    pub fn is_sealed(&self) -> bool {
        self.sealed.load(Ordering::Acquire)
    }

    /// Seals the segment; no further appends will succeed.
    pub fn seal(&self) {
        self.sealed.store(true, Ordering::Release);
    }

    /// True if a chunk of `len` bytes fits.
    #[inline]
    pub fn fits(&self, len: usize) -> bool {
        !self.is_sealed() && self.buf.remaining() >= len
    }

    /// Appends a serialized chunk, patching its `[group, segment,
    /// base_offset]` header fields in place ("attributes ... updated at
    /// append time", §IV-B).
    ///
    /// Must be called under the owning slot's lock (single writer). Fails
    /// (returns `None`) if sealed or out of space.
    pub fn append_chunk(&self, chunk_bytes: &[u8], base_offset: u64) -> Option<SegmentAppend> {
        debug_assert!(chunk_bytes.len() >= CHUNK_HEADER);
        if self.is_sealed() {
            return None;
        }
        let group = self.group.group;
        let id = self.id;
        let offset = self.buf.append_with(chunk_bytes.len(), |dst| {
            dst.copy_from_slice(chunk_bytes);
            chunk::assign_in_place(dst, group, id, base_offset);
        })?;
        Some(SegmentAppend { offset: offset as u32, len: chunk_bytes.len() as u32 })
    }

    /// Advances the durable head to `new_durable` bytes. Monotone: calls
    /// with smaller values are ignored (replication acks can complete out
    /// of order across virtual logs).
    pub fn advance_durable(&self, new_durable: usize) {
        debug_assert!(new_durable <= self.head());
        self.durable.fetch_max(new_durable, Ordering::AcqRel);
    }

    /// Marks everything currently published as durable (replication
    /// factor 1 path).
    pub fn make_all_durable(&self) {
        self.advance_durable(self.head());
    }

    /// Reads the published range `[offset, offset+len)` — replication path
    /// (may read above the durable head but never above the head).
    pub fn read(&self, offset: usize, len: usize) -> &[u8] {
        self.buf.read(offset, len)
    }

    /// Reads as many *whole chunks* as fit in `max_bytes`, starting at
    /// `offset`, bounded by the durable head — the consumer fetch path.
    /// Returns the byte range read (possibly empty). Always returns at
    /// least one chunk if one is fully durable at `offset`, even if it
    /// exceeds `max_bytes`.
    pub fn read_durable_chunks(&self, offset: usize, max_bytes: usize) -> &[u8] {
        let durable = self.durable_head();
        if offset >= durable {
            return &[];
        }
        let window = self.buf.read(offset, durable - offset);
        let mut end = 0usize;
        while end + CHUNK_HEADER <= window.len() {
            // In bounds: the loop condition keeps end + CHUNK_HEADER
            // within the window and CHUNK_LEN + 4 <= CHUNK_HEADER.
            let p = end + chunk::field::CHUNK_LEN;
            let chunk_len =
                u32::from_le_bytes([window[p], window[p + 1], window[p + 2], window[p + 3]])
                    as usize;
            debug_assert!(chunk_len >= CHUNK_HEADER, "corrupt chunk length in segment");
            if end + chunk_len > window.len() {
                break; // partially durable chunk cannot happen, but be safe
            }
            if end > 0 && end + chunk_len > max_bytes {
                break;
            }
            end += chunk_len;
            if end >= max_bytes {
                break;
            }
        }
        &window[..end]
    }
}

impl std::fmt::Debug for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Segment")
            .field("group", &self.group)
            .field("id", &self.id)
            .field("head", &self.head())
            .field("durable", &self.durable_head())
            .field("sealed", &self.is_sealed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kera_common::ids::{GroupId, ProducerId, StreamId, StreamletId};
    use kera_wire::chunk::{ChunkBuilder, ChunkIter, ChunkView};
    use kera_wire::record::Record;

    fn gref() -> GroupRef {
        GroupRef::new(StreamId(1), StreamletId(2), GroupId(3))
    }

    fn chunk(records: usize, rec_size: usize) -> bytes::Bytes {
        let mut b = ChunkBuilder::new(64 * 1024, ProducerId(7), StreamId(1), StreamletId(2));
        let payload = vec![0x5a; rec_size];
        for _ in 0..records {
            assert!(b.append(&Record::value_only(&payload)));
        }
        b.seal()
    }

    #[test]
    fn append_assigns_headers() {
        let seg = Segment::new(gref(), SegmentId(3), 8192);
        let c = chunk(4, 100);
        let a = seg.append_chunk(&c, 1000).unwrap();
        assert_eq!(a.offset, 0);
        assert_eq!(a.len as usize, c.len());

        let stored = seg.read(0, c.len());
        let view = ChunkView::parse(stored).unwrap();
        view.verify().unwrap(); // payload checksum survives assignment
        let h = view.header();
        assert_eq!(h.group_id(), GroupId(3));
        assert_eq!(h.segment_id(), SegmentId(3));
        assert_eq!(h.base_offset, 1000);
        assert!(h.is_assigned());
    }

    #[test]
    fn durable_head_gates_consumers() {
        let seg = Segment::new(gref(), SegmentId(0), 8192);
        let c = chunk(2, 50);
        seg.append_chunk(&c, 0).unwrap();
        // Not yet durable: consumers see nothing.
        assert!(seg.read_durable_chunks(0, 1 << 20).is_empty());
        seg.advance_durable(c.len());
        let visible = seg.read_durable_chunks(0, 1 << 20);
        assert_eq!(visible.len(), c.len());
    }

    #[test]
    fn durable_head_is_monotone() {
        let seg = Segment::new(gref(), SegmentId(0), 8192);
        let c = chunk(1, 10);
        seg.append_chunk(&c, 0).unwrap();
        seg.append_chunk(&c, 1).unwrap();
        seg.advance_durable(2 * c.len());
        seg.advance_durable(c.len()); // late, smaller ack
        assert_eq!(seg.durable_head(), 2 * c.len());
    }

    #[test]
    fn sealed_segment_rejects_appends() {
        let seg = Segment::new(gref(), SegmentId(0), 8192);
        let c = chunk(1, 10);
        seg.append_chunk(&c, 0).unwrap();
        seg.seal();
        assert!(seg.is_sealed());
        assert!(!seg.fits(c.len()));
        assert!(seg.append_chunk(&c, 1).is_none());
        assert_eq!(seg.head(), c.len());
    }

    #[test]
    fn full_segment_rejects_appends() {
        let c = chunk(1, 10);
        let seg = Segment::new(gref(), SegmentId(0), c.len() + 10);
        assert!(seg.append_chunk(&c, 0).is_some());
        assert!(seg.append_chunk(&c, 1).is_none());
    }

    #[test]
    fn read_durable_chunks_respects_max_bytes_on_boundaries() {
        let seg = Segment::new(gref(), SegmentId(0), 1 << 20);
        let c = chunk(1, 100);
        for i in 0..10 {
            seg.append_chunk(&c, i).unwrap();
        }
        seg.make_all_durable();
        // Cap below one chunk: still returns exactly one whole chunk.
        let one = seg.read_durable_chunks(0, 1);
        assert_eq!(one.len(), c.len());
        // Cap at 2.5 chunks: returns two whole chunks.
        let two = seg.read_durable_chunks(0, c.len() * 5 / 2);
        assert_eq!(two.len(), 2 * c.len());
        // All chunks parse.
        let parsed: Vec<_> = ChunkIter::new(two).collect::<kera_common::Result<_>>().unwrap();
        assert_eq!(parsed.len(), 2);
        // Offsets beyond durable yield nothing.
        assert!(seg.read_durable_chunks(10 * c.len(), 1024).is_empty());
    }

    #[test]
    fn base_offsets_increase_across_appends() {
        let seg = Segment::new(gref(), SegmentId(0), 1 << 20);
        let c = chunk(3, 10);
        let mut off = 0u64;
        let mut pos = 0usize;
        for _ in 0..5 {
            seg.append_chunk(&c, off).unwrap();
            off += 3;
            pos += c.len();
        }
        seg.make_all_durable();
        let data = seg.read_durable_chunks(0, usize::MAX);
        assert_eq!(data.len(), pos);
        let mut expect = 0u64;
        for cv in ChunkIter::new(data) {
            let cv = cv.unwrap();
            assert_eq!(cv.header().base_offset, expect);
            expect += 3;
        }
    }
}
