//! Lightweight offset indexing (paper §IV: KerA's second core idea,
//! "lightweight offset indexing (i.e., reduced stream offset management
//! overhead) optimized for sequential record access").
//!
//! One entry per *chunk* (not per record): the chunk's base record
//! offset and its physical coordinates within the slot's group chain.
//! Appends push one 24-byte entry under the slot lock; offset lookups
//! binary-search to the covering chunk and return a [`SlotCursor`] at
//! its boundary — the consumer then skips records inside the chunk
//! client-side. This is exactly the "reduced offset management" the
//! paper describes: no per-record index, sequential reads never consult
//! the index at all.

use kera_wire::cursor::SlotCursor;

/// One chunk's index entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexEntry {
    /// Logical offset of the chunk's first record within the slot.
    pub base_offset: u64,
    /// Chain index of the group holding the chunk.
    pub chain: u32,
    /// Segment index within the group.
    pub segment: u32,
    /// Byte offset of the chunk within the segment.
    pub byte_offset: u32,
}

impl IndexEntry {
    pub fn cursor(&self) -> SlotCursor {
        SlotCursor { chain: self.chain, segment: self.segment, offset: self.byte_offset }
    }
}

/// Per-slot chunk index: append-only, ordered by `base_offset`.
#[derive(Debug, Default)]
pub struct OffsetIndex {
    entries: Vec<IndexEntry>,
}

impl OffsetIndex {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Index memory in bytes (the "lightweight" claim, testable).
    pub fn memory_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<IndexEntry>()
    }

    /// Records a chunk append. `base_offset` must be non-decreasing
    /// (appends are serialized by the slot lock).
    pub fn push(&mut self, entry: IndexEntry) {
        debug_assert!(
            self.entries.last().map(|e| e.base_offset <= entry.base_offset).unwrap_or(true),
            "offset index must be appended in order"
        );
        self.entries.push(entry);
    }

    /// Cursor of the chunk covering `record_offset`: the last entry with
    /// `base_offset <= record_offset`. Returns `None` when the offset
    /// precedes all data (empty index) — the caller starts at
    /// [`SlotCursor::START`] — and clamps beyond-the-end offsets to the
    /// final chunk (the consumer then reads to the tail and waits).
    pub fn seek(&self, record_offset: u64) -> Option<IndexEntry> {
        if self.entries.is_empty() {
            return None;
        }
        // partition_point: first entry with base_offset > record_offset.
        let idx = self.entries.partition_point(|e| e.base_offset <= record_offset);
        if idx == 0 {
            // Offset precedes the first chunk: start at the beginning.
            return Some(self.entries[0]);
        }
        Some(self.entries[idx - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(base: u64, chain: u32, segment: u32, byte: u32) -> IndexEntry {
        IndexEntry { base_offset: base, chain, segment, byte_offset: byte }
    }

    #[test]
    fn seek_finds_covering_chunk() {
        let mut ix = OffsetIndex::new();
        ix.push(entry(0, 0, 0, 0));
        ix.push(entry(10, 0, 0, 500));
        ix.push(entry(20, 0, 1, 0));
        ix.push(entry(30, 1, 0, 0));

        assert_eq!(ix.seek(0).unwrap().base_offset, 0);
        assert_eq!(ix.seek(9).unwrap().base_offset, 0);
        assert_eq!(ix.seek(10).unwrap().base_offset, 10);
        assert_eq!(ix.seek(19).unwrap().base_offset, 10);
        assert_eq!(ix.seek(25).unwrap().cursor(), SlotCursor { chain: 0, segment: 1, offset: 0 });
        assert_eq!(ix.seek(35).unwrap().cursor(), SlotCursor { chain: 1, segment: 0, offset: 0 });
        // Beyond the end clamps to the last chunk.
        assert_eq!(ix.seek(1_000_000).unwrap().base_offset, 30);
    }

    #[test]
    fn empty_index_returns_none() {
        assert!(OffsetIndex::new().seek(0).is_none());
    }

    #[test]
    fn memory_is_one_small_entry_per_chunk() {
        let mut ix = OffsetIndex::new();
        for i in 0..1000 {
            ix.push(entry(i * 10, 0, 0, (i * 100) as u32));
        }
        assert_eq!(ix.len(), 1000);
        // One entry per chunk, 24 bytes each (u64 + 3×u32, padded): a
        // 16 KB chunk carries 0.15% index overhead.
        assert_eq!(ix.memory_bytes(), 1000 * std::mem::size_of::<IndexEntry>());
        assert_eq!(std::mem::size_of::<IndexEntry>(), 24);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "appended in order")]
    fn out_of_order_push_is_rejected_in_debug() {
        let mut ix = OffsetIndex::new();
        ix.push(entry(10, 0, 0, 0));
        ix.push(entry(5, 0, 0, 100));
    }
}
