//! Asynchronous secondary-storage flusher.
//!
//! "To ensure durability, backups asynchronously write buffered chunks to
//! secondary storage. Therefore, the producer request is not impacted by
//! secondary storage latency" (paper §II-B). Segments keep the same format
//! on disk and in memory, so a flushed file is just the segment's
//! published bytes.
//!
//! The flusher is one background thread draining a queue of flush tasks;
//! enqueueing never blocks on I/O.

use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::{self, Receiver, Sender};
use kera_common::metrics::{Counter, LatencyHistogram};
use kera_common::Result;

/// One unit of flushing: raw bytes destined for a named file.
pub struct FlushTask {
    /// File name relative to the flush directory (slashes allowed).
    pub name: String,
    pub data: Bytes,
}

struct FlusherShared {
    bytes_written: Counter,
    files_written: Counter,
    errors: Counter,
    /// Wall time of each file write (create + write + sync). Callers can
    /// supply a registry-owned histogram (`kera.storage.flush`) via
    /// [`DiskFlusher::start_with_histogram`].
    write_latency: Arc<LatencyHistogram>,
}

/// Handle for enqueueing flush work. Dropping all handles stops the
/// flusher after it drains its queue.
pub struct DiskFlusher {
    tx: Sender<FlushTask>,
    shared: Arc<FlusherShared>,
    thread: Option<std::thread::JoinHandle<()>>,
    dir: PathBuf,
}

impl DiskFlusher {
    /// Starts a flusher writing under `dir` (created if missing).
    pub fn start(dir: PathBuf) -> Result<DiskFlusher> {
        Self::start_with_histogram(dir, Arc::new(LatencyHistogram::new()))
    }

    /// Like [`DiskFlusher::start`], recording per-file write latency
    /// into a caller-owned histogram.
    pub fn start_with_histogram(
        dir: PathBuf,
        write_latency: Arc<LatencyHistogram>,
    ) -> Result<DiskFlusher> {
        fs::create_dir_all(&dir)?;
        let (tx, rx) = channel::unbounded::<FlushTask>();
        let shared = Arc::new(FlusherShared {
            bytes_written: Counter::new(),
            files_written: Counter::new(),
            errors: Counter::new(),
            write_latency,
        });
        let thread = {
            let dir = dir.clone();
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("disk-flusher".into())
                .spawn(move || flush_loop(dir, rx, shared))
                // lint: allow(no-panic) — spawn failure at flusher startup is
                // fatal by design: there is no runtime to degrade into yet.
                .expect("spawn flusher")
        };
        Ok(DiskFlusher { tx, shared, thread: Some(thread), dir })
    }

    /// Enqueues a flush; returns immediately.
    pub fn flush(&self, name: String, data: Bytes) {
        let _ = self.tx.send(FlushTask { name, data });
    }

    pub fn dir(&self) -> &PathBuf {
        &self.dir
    }

    pub fn bytes_written(&self) -> u64 {
        self.shared.bytes_written.get()
    }

    pub fn files_written(&self) -> u64 {
        self.shared.files_written.get()
    }

    pub fn errors(&self) -> u64 {
        self.shared.errors.get()
    }

    /// Latency histogram of completed file writes.
    pub fn write_latency(&self) -> &Arc<LatencyHistogram> {
        &self.shared.write_latency
    }

    /// Drains the queue and stops the thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // Replacing the sender closes the channel once in-flight tasks
        // drain; then join.
        let (dummy_tx, _) = channel::unbounded();
        let real_tx = std::mem::replace(&mut self.tx, dummy_tx);
        drop(real_tx);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for DiskFlusher {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn flush_loop(dir: PathBuf, rx: Receiver<FlushTask>, shared: Arc<FlusherShared>) {
    while let Ok(task) = rx.recv() {
        let path = dir.join(&task.name);
        let start = std::time::Instant::now();
        let result = (|| -> std::io::Result<()> {
            if let Some(parent) = path.parent() {
                fs::create_dir_all(parent)?;
            }
            let mut f = fs::File::create(&path)?;
            f.write_all(&task.data)?;
            f.sync_data()
        })();
        match result {
            Ok(()) => {
                shared.write_latency.record(start.elapsed());
                shared.bytes_written.add(task.data.len() as u64);
                shared.files_written.inc();
            }
            Err(_) => shared.errors.inc(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("kera-flush-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn flushes_files_with_exact_contents() {
        let dir = tmpdir("basic");
        let f = DiskFlusher::start(dir.clone()).unwrap();
        f.flush("a.seg".into(), Bytes::from_static(b"segment-a"));
        f.flush("sub/b.seg".into(), Bytes::from_static(b"segment-b"));
        f.shutdown();
        assert_eq!(fs::read(dir.join("a.seg")).unwrap(), b"segment-a");
        assert_eq!(fs::read(dir.join("sub/b.seg")).unwrap(), b"segment-b");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn counters_track_work() {
        let dir = tmpdir("counters");
        let f = DiskFlusher::start(dir.clone()).unwrap();
        for i in 0..10 {
            f.flush(format!("{i}.seg"), Bytes::from(vec![0u8; 100]));
        }
        let files = f.files_written(); // may not have drained yet
        assert!(files <= 10);
        f.shutdown();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_drains_pending_tasks() {
        let dir = tmpdir("drain");
        let f = DiskFlusher::start(dir.clone()).unwrap();
        for i in 0..50 {
            f.flush(format!("{i}.seg"), Bytes::from(vec![1u8; 1000]));
        }
        f.shutdown(); // must block until everything hit the disk
        let count = fs::read_dir(&dir).unwrap().count();
        assert_eq!(count, 50);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn enqueue_is_nonblocking() {
        let dir = tmpdir("nonblock");
        let f = DiskFlusher::start(dir.clone()).unwrap();
        let t0 = std::time::Instant::now();
        for i in 0..100 {
            f.flush(format!("{i}.seg"), Bytes::from(vec![2u8; 64 * 1024]));
        }
        // 100 enqueues of 64 KB must not wait for 6.4 MB of fsyncs.
        assert!(t0.elapsed() < std::time::Duration::from_millis(100));
        f.shutdown();
        let _ = fs::remove_dir_all(&dir);
    }
}
