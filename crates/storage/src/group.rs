//! Groups of segments — KerA's fixed-size sub-partitions (paper §IV-A,
//! Fig. 4).
//!
//! "To reduce the metadata necessary to describe the unbounded set of
//! segments of a stream, we further logically assemble a configurable
//! number of segments into a group." A group owns a bounded chain of
//! segments; exactly one segment is open for appends, previous ones are
//! sealed. Once the group holds its configured number of full segments it
//! is *closed* and a new group continues the slot's chain.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use kera_common::ids::{GroupRef, SegmentId};
use parking_lot::RwLock;

use crate::segment::{Segment, SegmentAppend};

/// A bounded chain of segments.
pub struct Group {
    gref: GroupRef,
    segment_size: usize,
    max_segments: u32,
    segments: RwLock<Vec<Arc<Segment>>>,
    closed: AtomicBool,
}

/// Where a chunk landed inside a group.
#[derive(Clone, Debug)]
pub struct GroupAppend {
    pub segment: Arc<Segment>,
    /// Index of the segment within the group (== its [`SegmentId`] raw).
    pub segment_index: u32,
    pub at: SegmentAppend,
}

impl Group {
    pub fn new(gref: GroupRef, segment_size: usize, max_segments: u32) -> Self {
        assert!(max_segments >= 1);
        let first = Arc::new(Segment::new(gref, SegmentId(0), segment_size));
        Self {
            gref,
            segment_size,
            max_segments,
            segments: RwLock::named("group.segments", vec![first]),
            closed: AtomicBool::new(false),
        }
    }

    #[inline]
    pub fn gref(&self) -> GroupRef {
        self.gref
    }

    #[inline]
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Number of segments created so far.
    pub fn segment_count(&self) -> u32 {
        self.segments.read().len() as u32
    }

    /// Segment at `index`, if it exists.
    pub fn segment(&self, index: u32) -> Option<Arc<Segment>> {
        self.segments.read().get(index as usize).cloned()
    }

    /// The currently open (last) segment.
    pub fn open_segment(&self) -> Arc<Segment> {
        // lint: allow(no-panic) — a group is constructed with one segment and
        // segments are never removed, so `last()` cannot be empty.
        self.segments.read().last().cloned().expect("group always has a segment")
    }

    /// Appends a chunk, rolling to a new segment if the open one is full.
    /// Returns `None` when the group is closed or becomes closed because
    /// its last segment cannot take the chunk (caller then moves to the
    /// next group in the chain).
    ///
    /// Must be called under the owning slot's lock (single writer per
    /// group).
    pub fn append_chunk(&self, chunk: &[u8], base_offset: u64) -> Option<GroupAppend> {
        if self.is_closed() {
            return None;
        }
        loop {
            let (segment, index) = {
                let guard = self.segments.read();
                let Some(last) = guard.last() else {
                    return None; // unreachable: a group always has >= 1 segment
                };
                (Arc::clone(last), guard.len() as u32 - 1)
            };
            if let Some(at) = segment.append_chunk(chunk, base_offset) {
                return Some(GroupAppend { segment, segment_index: index, at });
            }
            // The open segment is full (or was sealed): roll or close.
            segment.seal();
            let mut guard = self.segments.write();
            if self.is_closed() {
                return None; // closed concurrently (deletion/recovery)
            }
            if guard.len() as u32 >= self.max_segments {
                self.closed.store(true, Ordering::Release);
                return None;
            }
            let id = SegmentId(guard.len() as u32);
            guard.push(Arc::new(Segment::new(self.gref, id, self.segment_size)));
        }
    }

    /// Force-closes the group (stream deletion, recovery cut-over).
    pub fn close(&self) {
        self.open_segment().seal();
        self.closed.store(true, Ordering::Release);
    }

    /// Total published bytes across segments.
    pub fn total_bytes(&self) -> usize {
        self.segments.read().iter().map(|s| s.head()).sum()
    }

    /// Total durable bytes across segments.
    pub fn durable_bytes(&self) -> usize {
        self.segments.read().iter().map(|s| s.durable_head()).sum()
    }
}

impl std::fmt::Debug for Group {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Group")
            .field("gref", &self.gref)
            .field("segments", &self.segment_count())
            .field("closed", &self.is_closed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kera_common::ids::{GroupId, ProducerId, StreamId, StreamletId};
    use kera_wire::chunk::ChunkBuilder;
    use kera_wire::record::Record;

    fn gref() -> GroupRef {
        GroupRef::new(StreamId(1), StreamletId(0), GroupId(0))
    }

    fn chunk_of(len_payload: usize) -> bytes::Bytes {
        let mut b = ChunkBuilder::new(64 * 1024, ProducerId(0), StreamId(1), StreamletId(0));
        let payload = vec![1u8; len_payload];
        b.append(&Record::value_only(&payload));
        b.seal()
    }

    #[test]
    fn appends_roll_segments() {
        let c = chunk_of(100);
        // Room for exactly 2 chunks per segment.
        let g = Group::new(gref(), c.len() * 2, 4);
        let mut seg_indices = Vec::new();
        for i in 0..8 {
            let a = g.append_chunk(&c, i).unwrap();
            seg_indices.push(a.segment_index);
        }
        assert_eq!(seg_indices, vec![0, 0, 1, 1, 2, 2, 3, 3]);
        assert_eq!(g.segment_count(), 4);
        assert!(!g.is_closed());
        // Ninth chunk closes the group.
        assert!(g.append_chunk(&c, 8).is_none());
        assert!(g.is_closed());
    }

    #[test]
    fn closed_group_rejects_appends() {
        let c = chunk_of(10);
        let g = Group::new(gref(), 1 << 16, 2);
        g.append_chunk(&c, 0).unwrap();
        g.close();
        assert!(g.append_chunk(&c, 1).is_none());
        assert!(g.open_segment().is_sealed());
    }

    #[test]
    fn sealed_previous_segments() {
        let c = chunk_of(200);
        let g = Group::new(gref(), c.len(), 3);
        g.append_chunk(&c, 0).unwrap();
        g.append_chunk(&c, 1).unwrap();
        assert!(g.segment(0).unwrap().is_sealed());
        assert!(!g.segment(1).unwrap().is_sealed());
        assert!(g.segment(5).is_none());
    }

    #[test]
    fn byte_accounting() {
        let c = chunk_of(64);
        let g = Group::new(gref(), 1 << 16, 2);
        g.append_chunk(&c, 0).unwrap();
        g.append_chunk(&c, 1).unwrap();
        assert_eq!(g.total_bytes(), 2 * c.len());
        assert_eq!(g.durable_bytes(), 0);
        g.open_segment().make_all_durable();
        assert_eq!(g.durable_bytes(), 2 * c.len());
    }

    #[test]
    fn oversized_chunk_closes_group_rather_than_looping() {
        let c = chunk_of(1000);
        let g = Group::new(gref(), 256, 2); // chunk never fits a segment
        assert!(g.append_chunk(&c, 0).is_none());
        assert!(g.is_closed());
    }
}
