//! A single-writer, multi-reader publication buffer.
//!
//! This is the memory-ordering core of every segment: one writer (the
//! append path, serialized by its group's slot lock) copies bytes into the
//! unpublished tail and then *publishes* them by advancing the head with a
//! release store; any number of readers (consumers, the replication
//! batcher, the disk flusher) acquire-load the head and may read everything
//! below it without further synchronization.
//!
//! Why not `RwLock<Vec<u8>>`? Because readers would then contend with the
//! hot append path; the paper's design keeps consumers pulling "without
//! additional copies" while producers append — a classic single-writer
//! publication protocol (cf. *Rust Atomics and Locks*, ch. 3: release /
//! acquire publication).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Fixed-capacity append-only byte buffer with atomic publication.
pub struct AppendBuffer {
    data: Box<[UnsafeCell<u8>]>,
    /// Bytes published (readable). Only ever advanced by the single
    /// writer with `Release`; readers load with `Acquire`.
    head: AtomicUsize,
}

// SAFETY: concurrent access is governed by the publication protocol:
// - the (unique) writer only mutates bytes at indices >= head, which no
//   reader may touch until the subsequent release-store of `head`;
// - readers only read indices < head after an acquire-load of `head`,
//   which happens-after the writer's copies by release/acquire ordering;
// - published bytes are never mutated again (append-only).
// The *uniqueness* of the writer is a precondition of `append_with`
// (enforced by callers holding their slot/replication lock), documented
// there.
unsafe impl Send for AppendBuffer {}
unsafe impl Sync for AppendBuffer {}

impl AppendBuffer {
    pub fn new(capacity: usize) -> Self {
        let data: Box<[UnsafeCell<u8>]> =
            (0..capacity).map(|_| UnsafeCell::new(0)).collect();
        Self { data, head: AtomicUsize::new(0) }
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Bytes currently published.
    #[inline]
    pub fn len(&self) -> usize {
        self.head.load(Ordering::Acquire)
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remaining unpublished capacity.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.capacity() - self.len()
    }

    /// Appends `len` bytes produced by `fill`, which receives the
    /// zero-initialized destination slice and may both write and patch it
    /// (chunk header assignment happens here). Returns the offset of the
    /// appended region, or `None` if it does not fit.
    ///
    /// # Single-writer requirement
    ///
    /// Callers must guarantee at most one thread executes `append_with` on
    /// this buffer at a time (every call site holds the owning slot's or
    /// virtual segment's mutex). Readers are unrestricted.
    pub fn append_with(&self, len: usize, fill: impl FnOnce(&mut [u8])) -> Option<usize> {
        let offset = self.head.load(Ordering::Relaxed);
        if offset + len > self.capacity() {
            return None;
        }
        if len == 0 {
            return Some(offset);
        }
        // SAFETY: [offset, offset+len) is unpublished; per the
        // single-writer precondition no other thread writes it, and no
        // reader reads it until the release-store below.
        let dst = unsafe {
            std::slice::from_raw_parts_mut(self.data[offset].get(), len)
        };
        fill(dst);
        self.head.store(offset + len, Ordering::Release);
        Some(offset)
    }

    /// Convenience: append a byte slice.
    pub fn append(&self, bytes: &[u8]) -> Option<usize> {
        self.append_with(bytes.len(), |dst| dst.copy_from_slice(bytes))
    }

    /// Reads the published range `[offset, offset + len)`.
    ///
    /// Panics if the range is not fully published — that is a logic error
    /// (readers must derive ranges from `len()` or a durable head that is
    /// `<= len()`).
    pub fn read(&self, offset: usize, len: usize) -> &[u8] {
        let published = self.len();
        assert!(
            offset + len <= published,
            "read [{offset}, {}) beyond published head {published}",
            offset + len
        );
        if len == 0 {
            return &[];
        }
        // SAFETY: the range is fully below the acquire-loaded head, so all
        // writes to it happen-before this read and it will never be
        // mutated again.
        unsafe { std::slice::from_raw_parts(self.data[offset].get(), len) }
    }

    /// The whole published prefix.
    pub fn published(&self) -> &[u8] {
        let len = self.len();
        self.read(0, len)
    }
}

impl std::fmt::Debug for AppendBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppendBuffer")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn append_and_read() {
        let b = AppendBuffer::new(64);
        assert_eq!(b.append(b"hello"), Some(0));
        assert_eq!(b.append(b"world"), Some(5));
        assert_eq!(b.len(), 10);
        assert_eq!(b.read(0, 5), b"hello");
        assert_eq!(b.read(5, 5), b"world");
        assert_eq!(b.published(), b"helloworld");
    }

    #[test]
    fn rejects_overflow_without_partial_write() {
        let b = AppendBuffer::new(8);
        assert_eq!(b.append(b"12345678"), Some(0));
        assert_eq!(b.append(b"x"), None);
        assert_eq!(b.len(), 8);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn append_with_allows_patching() {
        let b = AppendBuffer::new(32);
        b.append_with(8, |dst| {
            dst.copy_from_slice(b"AAAABBBB");
            dst[0] = b'Z'; // patch before publication
        })
        .unwrap();
        assert_eq!(b.read(0, 8), b"ZAAABBBB");
    }

    #[test]
    #[should_panic(expected = "beyond published head")]
    fn reading_unpublished_panics() {
        let b = AppendBuffer::new(16);
        b.append(b"abc").unwrap();
        let _ = b.read(0, 4);
    }

    #[test]
    fn concurrent_readers_see_complete_appends() {
        // One writer appends 4-byte records whose bytes all equal their
        // sequence number; readers continually validate that every
        // published record is internally consistent (no torn reads).
        let b = Arc::new(AppendBuffer::new(4 * 1024));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let readers: Vec<_> = (0..4)
            .map(|_| {
                let b = Arc::clone(&b);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let len = b.len();
                        let data = b.read(0, len);
                        for (i, rec) in data.chunks_exact(4).enumerate() {
                            let expect = (i % 251) as u8;
                            assert!(
                                rec.iter().all(|&x| x == expect),
                                "torn read at record {i}: {rec:?}"
                            );
                        }
                    }
                })
            })
            .collect();

        for i in 0..1024 {
            let v = (i % 251) as u8;
            b.append(&[v; 4]).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(b.len(), 4096);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn zero_capacity_buffer() {
        let b = AppendBuffer::new(0);
        assert_eq!(b.append(b""), Some(0));
        assert_eq!(b.append(b"x"), None);
        assert!(b.is_empty());
    }
}
