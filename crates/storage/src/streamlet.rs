//! Streamlets — KerA's logical partitions (paper §IV-A, Fig. 4).
//!
//! A streamlet exposes `Q` *slots* (active-group chains). A producer's
//! chunk lands in slot `producer mod Q` ("a producer writes to the
//! streamlet's active group corresponding to the entry calculated as
//! producer identifier modulo Q"), so up to `Q` producers append to one
//! streamlet in parallel. Each slot owns an unbounded chain of groups,
//! created dynamically as data arrives; group ids are allocated as
//! `slot + chain·Q` so consumer cursors can walk the chain without a
//! directory (see [`kera_wire::cursor`]).

use std::collections::HashMap;
use std::sync::Arc;

use kera_common::config::StreamConfig;
use kera_common::ids::{GroupId, GroupRef, ProducerId, StreamId, StreamletId};
use kera_common::{KeraError, Result};
use kera_wire::chunk::CHUNK_HEADER;
use kera_wire::cursor::SlotCursor;
use kera_wire::messages::ChunkAck;
use parking_lot::{Mutex, RwLock};

use crate::group::Group;
use crate::index::{IndexEntry, OffsetIndex};
use crate::segment::Segment;

/// Where a chunk landed: everything the broker needs to ack the producer
/// and hand the chunk reference to the virtual log.
#[derive(Clone, Debug)]
pub struct StreamletAppend {
    pub gref: GroupRef,
    pub segment: Arc<Segment>,
    pub segment_index: u32,
    pub offset_in_segment: u32,
    pub len: u32,
    pub base_offset: u64,
    pub records: u32,
    pub slot: u32,
}

impl StreamletAppend {
    pub fn to_ack(&self) -> ChunkAck {
        ChunkAck {
            stream: self.gref.stream,
            streamlet: self.gref.streamlet,
            group: self.gref.group.raw(),
            segment: self.segment_index,
            base_offset: self.base_offset,
            records: self.records,
        }
    }
}

/// Outcome of a tracked (retry-safe) append.
#[derive(Clone, Debug)]
pub enum SlotAppend {
    /// The chunk was physically appended now.
    Fresh { append: StreamletAppend, token: Option<u64> },
    /// The chunk's sequence tag matched an earlier append from the same
    /// producer — a retried produce request whose response was lost. The
    /// original ack (and durability token) is replayed; nothing is
    /// appended.
    Replay { ack: ChunkAck, token: Option<u64> },
}

/// Recent (producer, sequence-tag) → ack mappings of one slot, so a
/// retried produce request replays the original ack instead of appending
/// a second copy of the chunk. Bounded FIFO per slot.
#[derive(Default)]
struct ReplayCache {
    acks: HashMap<(ProducerId, u64), (ChunkAck, Option<u64>)>,
    order: std::collections::VecDeque<(ProducerId, u64)>,
}

impl ReplayCache {
    /// Plenty for the handful of in-flight requests a producer pipelines;
    /// a retry always lands well within this window.
    const MAX_ENTRIES: usize = 1024;

    fn get(&self, producer: ProducerId, seq: u64) -> Option<(ChunkAck, Option<u64>)> {
        self.acks.get(&(producer, seq)).copied()
    }

    fn insert(&mut self, producer: ProducerId, seq: u64, ack: ChunkAck, token: Option<u64>) {
        if self.acks.insert((producer, seq), (ack, token)).is_none() {
            self.order.push_back((producer, seq));
            while self.order.len() > Self::MAX_ENTRIES {
                if let Some(old) = self.order.pop_front() {
                    self.acks.remove(&old);
                }
            }
        }
    }
}

struct Slot {
    /// Chain index of the active group.
    chain: u32,
    group: Arc<Group>,
    /// Next logical record offset in this slot (continuous across the
    /// slot's chain of groups).
    next_offset: u64,
    /// Per-chunk offset index (seek by record offset).
    index: OffsetIndex,
    /// Duplicate suppression for retried produce requests.
    replays: ReplayCache,
}

/// One hosted streamlet.
pub struct Streamlet {
    stream: StreamId,
    id: StreamletId,
    q: u32,
    segment_size: usize,
    segments_per_group: u32,
    slots: Vec<Mutex<Slot>>,
    /// Every group ever created (open and closed), for the read path.
    groups: RwLock<HashMap<GroupId, Arc<Group>>>,
}

impl Streamlet {
    pub fn new(stream: StreamId, id: StreamletId, config: &StreamConfig) -> Self {
        let q = config.active_groups;
        let mut groups = HashMap::new();
        let slots = (0..q)
            .map(|slot| {
                let gid = GroupId(slot); // chain 0
                let gref = GroupRef::new(stream, id, gid);
                let group =
                    Arc::new(Group::new(gref, config.segment_size, config.segments_per_group));
                groups.insert(gid, Arc::clone(&group));
                Mutex::named(
                    "streamlet.slot",
                    Slot {
                        chain: 0,
                        group,
                        next_offset: 0,
                        index: OffsetIndex::new(),
                        replays: ReplayCache::default(),
                    },
                )
            })
            .collect();
        Self {
            stream,
            id,
            q,
            segment_size: config.segment_size,
            segments_per_group: config.segments_per_group,
            slots,
            groups: RwLock::named("streamlet.groups", groups),
        }
    }

    #[inline]
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    #[inline]
    pub fn id(&self) -> StreamletId {
        self.id
    }

    /// `Q` — number of parallel append slots.
    #[inline]
    pub fn q(&self) -> u32 {
        self.q
    }

    /// Slot a producer appends to.
    #[inline]
    pub fn slot_of(&self, producer: ProducerId) -> u32 {
        producer.raw() % self.q
    }

    /// Appends a serialized chunk on behalf of `producer`. Rolls segments
    /// and groups as needed.
    pub fn append_chunk(
        &self,
        producer: ProducerId,
        chunk: &[u8],
        records: u32,
    ) -> Result<StreamletAppend> {
        match self.append_chunk_tracked(producer, chunk, records, None, |_| Ok(None))? {
            SlotAppend::Fresh { append, .. } => Ok(append),
            // Unreachable without a sequence tag, but keep the contract
            // total rather than panicking.
            SlotAppend::Replay { .. } => Err(KeraError::Protocol(
                "untracked append reported a replay".into(),
            )),
        }
    }

    /// Appends a chunk and runs `after` **while still holding the slot
    /// lock**. The produce path uses this to append the chunk's reference
    /// to the streamlet's virtual log atomically with the physical append:
    /// because every chunk of a slot goes to the same virtual log, chunk
    /// references then enter the virtual log in exactly the physical
    /// append order, which keeps per-segment durable heads contiguous as
    /// replication acks arrive (paper §IV-B: "the chunk is appended to the
    /// active group ... and then a chunk reference is appended to the
    /// replicated virtual log").
    ///
    /// `after` returns an opaque durability token (the broker passes the
    /// virtual-log ticket). When `seq` is given, the slot remembers
    /// (producer, seq) → (ack, token); a later append carrying the same
    /// tag is recognized as a retried request and answered with
    /// [`SlotAppend::Replay`] — the original ack — instead of a duplicate
    /// physical append. This is the exactly-once half the producer's
    /// blind retransmit relies on.
    pub fn append_chunk_tracked(
        &self,
        producer: ProducerId,
        chunk: &[u8],
        records: u32,
        seq: Option<u64>,
        after: impl FnOnce(&StreamletAppend) -> Result<Option<u64>>,
    ) -> Result<SlotAppend> {
        if chunk.len() > self.segment_size {
            return Err(KeraError::ChunkTooLarge { chunk: chunk.len(), segment: self.segment_size });
        }
        debug_assert!(chunk.len() >= CHUNK_HEADER);
        let slot_idx = self.slot_of(producer);
        let mut slot = self.slots[slot_idx as usize].lock();
        if let Some(seq) = seq {
            if let Some((ack, token)) = slot.replays.get(producer, seq) {
                return Ok(SlotAppend::Replay { ack, token });
            }
        }
        let base_offset = slot.next_offset;
        loop {
            if let Some(ga) = slot.group.append_chunk(chunk, base_offset) {
                slot.next_offset += u64::from(records);
                let append = StreamletAppend {
                    gref: slot.group.gref(),
                    segment: ga.segment,
                    segment_index: ga.segment_index,
                    offset_in_segment: ga.at.offset,
                    len: ga.at.len,
                    base_offset,
                    records,
                    slot: slot_idx,
                };
                let chain = slot.chain;
                slot.index.push(IndexEntry {
                    base_offset,
                    chain,
                    segment: ga.segment_index,
                    byte_offset: ga.at.offset,
                });
                let token = after(&append)?;
                if let Some(seq) = seq {
                    slot.replays.insert(producer, seq, append.to_ack(), token);
                }
                return Ok(SlotAppend::Fresh { append, token });
            }
            // Group closed: open the next group in this slot's chain.
            let chain = slot.chain + 1;
            let gid = GroupId(slot_idx + chain * self.q);
            let gref = GroupRef::new(self.stream, self.id, gid);
            let group = Arc::new(Group::new(gref, self.segment_size, self.segments_per_group));
            self.groups.write().insert(gid, Arc::clone(&group));
            slot.chain = chain;
            slot.group = group;
        }
    }

    /// Translates a logical record offset in `slot` to the cursor of the
    /// chunk covering it ("consumers can read at any offset", paper §I;
    /// lightweight per-chunk index, §IV). `None` = slot has no data yet
    /// (start at [`SlotCursor::START`]).
    pub fn seek(&self, slot: u32, record_offset: u64) -> Option<SlotCursor> {
        let guard = self.slots.get(slot as usize)?.lock();
        guard.index.seek(record_offset).map(|e| e.cursor())
    }

    /// Bytes of offset-index metadata held by this streamlet.
    pub fn index_memory_bytes(&self) -> usize {
        self.slots.iter().map(|s| s.lock().index.memory_bytes()).sum()
    }

    /// Closes every group (stream deletion): concurrent and future
    /// appends fail, readers can still drain what is already there.
    pub fn close_all_groups(&self) {
        for g in self.groups.read().values() {
            g.close();
        }
    }

    /// Group lookup for the read path.
    pub fn group(&self, gid: GroupId) -> Option<Arc<Group>> {
        self.groups.read().get(&gid).cloned()
    }

    /// Number of groups created so far (all slots).
    pub fn group_count(&self) -> usize {
        self.groups.read().len()
    }

    /// Reads durable chunks for a consumer positioned at `cursor` in
    /// `slot`, advancing the cursor across sealed segments and closed
    /// groups. Returns `(data, new_cursor)`; `data` is empty when the
    /// consumer is caught up.
    pub fn read_slot(
        &self,
        slot: u32,
        mut cursor: SlotCursor,
        max_bytes: usize,
    ) -> (Vec<u8>, SlotCursor) {
        let mut out = Vec::new();
        // Bound the walk: a fetch crosses at most a handful of boundaries.
        for _ in 0..64 {
            let gid = cursor.group_id(slot, self.q);
            let Some(group) = self.group(gid) else { break };
            let Some(segment) = group.segment(cursor.segment) else {
                // Segment not created yet: caught up.
                break;
            };
            let data = segment.read_durable_chunks(
                cursor.offset as usize,
                max_bytes.saturating_sub(out.len()),
            );
            if !data.is_empty() {
                out.extend_from_slice(data);
                cursor.offset += data.len() as u32;
                if out.len() >= max_bytes {
                    break;
                }
            }
            // Advance over finished segments/groups only when fully
            // consumed *and* nothing more can ever appear there.
            let consumed_all = cursor.offset as usize >= segment.head();
            if segment.is_sealed() && consumed_all {
                let has_next_segment = group.segment(cursor.segment + 1).is_some();
                if has_next_segment {
                    cursor = cursor.next_segment();
                    continue;
                }
                if group.is_closed() {
                    cursor = cursor.next_group();
                    continue;
                }
            }
            if data.is_empty() {
                break; // caught up (or waiting on durability)
            }
        }
        (out, cursor)
    }
}

impl std::fmt::Debug for Streamlet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Streamlet")
            .field("stream", &self.stream)
            .field("id", &self.id)
            .field("q", &self.q)
            .field("groups", &self.group_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kera_common::config::ReplicationConfig;
    use kera_wire::chunk::{ChunkBuilder, ChunkIter};
    use kera_wire::record::Record;

    fn config(q: u32, segment_size: usize, segs_per_group: u32) -> StreamConfig {
        StreamConfig {
            id: StreamId(1),
            streamlets: 1,
            active_groups: q,
            segments_per_group: segs_per_group,
            segment_size,
            replication: ReplicationConfig::default(),
        }
    }

    fn chunk(records: u32) -> bytes::Bytes {
        let mut b = ChunkBuilder::new(16 * 1024, ProducerId(0), StreamId(1), StreamletId(0));
        for _ in 0..records {
            b.append(&Record::value_only(&[7u8; 100]));
        }
        b.seal()
    }

    #[test]
    fn producers_map_to_slots() {
        let s = Streamlet::new(StreamId(1), StreamletId(0), &config(4, 1 << 20, 4));
        assert_eq!(s.slot_of(ProducerId(0)), 0);
        assert_eq!(s.slot_of(ProducerId(5)), 1);
        assert_eq!(s.slot_of(ProducerId(7)), 3);
    }

    #[test]
    fn offsets_are_per_slot_and_contiguous() {
        let s = Streamlet::new(StreamId(1), StreamletId(0), &config(2, 1 << 20, 4));
        let c = chunk(10);
        // Producer 0 -> slot 0, producer 1 -> slot 1.
        let a0 = s.append_chunk(ProducerId(0), &c, 10).unwrap();
        let a1 = s.append_chunk(ProducerId(1), &c, 10).unwrap();
        let a2 = s.append_chunk(ProducerId(0), &c, 10).unwrap();
        assert_eq!(a0.base_offset, 0);
        assert_eq!(a1.base_offset, 0); // independent slot
        assert_eq!(a2.base_offset, 10);
        assert_eq!(a0.gref.group, GroupId(0));
        assert_eq!(a1.gref.group, GroupId(1));
    }

    #[test]
    fn group_chain_advances_when_group_fills() {
        let c = chunk(1);
        // 1 segment per group, each fitting exactly 2 chunks -> a group
        // closes every 2 appends.
        let s = Streamlet::new(StreamId(1), StreamletId(0), &config(1, c.len() * 2, 1));
        let mut groups = Vec::new();
        for i in 0..6 {
            let a = s.append_chunk(ProducerId(0), &c, 1).unwrap();
            assert_eq!(a.base_offset, i as u64);
            groups.push(a.gref.group.raw());
        }
        assert_eq!(groups, vec![0, 0, 1, 1, 2, 2]);
        assert_eq!(s.group_count(), 3);
    }

    #[test]
    fn q_slots_chain_group_ids_disjointly() {
        let c = chunk(1);
        let q = 2;
        let s = Streamlet::new(StreamId(1), StreamletId(0), &config(q, c.len(), 1));
        // Slot 0: groups 0, 2, 4...; slot 1: groups 1, 3, 5...
        let mut slot0 = Vec::new();
        let mut slot1 = Vec::new();
        for _ in 0..3 {
            slot0.push(s.append_chunk(ProducerId(0), &c, 1).unwrap().gref.group.raw());
            slot1.push(s.append_chunk(ProducerId(1), &c, 1).unwrap().gref.group.raw());
        }
        assert_eq!(slot0, vec![0, 2, 4]);
        assert_eq!(slot1, vec![1, 3, 5]);
    }

    #[test]
    fn oversized_chunk_is_an_error() {
        let s = Streamlet::new(StreamId(1), StreamletId(0), &config(1, 128, 1));
        let c = chunk(10);
        let err = s.append_chunk(ProducerId(0), &c, 10).unwrap_err();
        assert!(matches!(err, KeraError::ChunkTooLarge { .. }));
    }

    #[test]
    fn read_slot_walks_segments_and_groups() {
        let c = chunk(2);
        // 2 chunks per segment, 2 segments per group.
        let s = Streamlet::new(StreamId(1), StreamletId(0), &config(1, c.len() * 2, 2));
        let n = 10;
        for _ in 0..n {
            let a = s.append_chunk(ProducerId(0), &c, 2).unwrap();
            a.segment.make_all_durable();
        }
        // Read everything in one big fetch.
        let (data, cursor) = s.read_slot(0, SlotCursor::START, usize::MAX);
        assert_eq!(data.len(), n * c.len());
        let chunks: Vec<_> = ChunkIter::new(&data).collect::<Result<_>>().unwrap();
        assert_eq!(chunks.len(), n);
        let offsets: Vec<u64> = chunks.iter().map(|c| c.header().base_offset).collect();
        assert_eq!(offsets, (0..n as u64).map(|i| i * 2).collect::<Vec<_>>());
        // Cursor rests in the open tail; further reads return nothing.
        let (more, cursor2) = s.read_slot(0, cursor, usize::MAX);
        assert!(more.is_empty());
        assert_eq!(cursor, cursor2);
    }

    #[test]
    fn read_slot_in_small_increments_sees_everything_once() {
        let c = chunk(1);
        let s = Streamlet::new(StreamId(1), StreamletId(0), &config(1, c.len() * 2, 2));
        let n = 12;
        for _ in 0..n {
            let a = s.append_chunk(ProducerId(0), &c, 1).unwrap();
            a.segment.make_all_durable();
        }
        let mut cursor = SlotCursor::START;
        let mut seen = 0;
        loop {
            let (data, next) = s.read_slot(0, cursor, 1); // one chunk at a time
            if data.is_empty() {
                break;
            }
            seen += ChunkIter::new(&data).count();
            cursor = next;
        }
        assert_eq!(seen, n);
    }

    #[test]
    fn read_slot_blocks_on_durability() {
        let c = chunk(1);
        let s = Streamlet::new(StreamId(1), StreamletId(0), &config(1, 1 << 20, 4));
        let a = s.append_chunk(ProducerId(0), &c, 1).unwrap();
        let (data, _) = s.read_slot(0, SlotCursor::START, usize::MAX);
        assert!(data.is_empty(), "non-durable data must be invisible");
        a.segment.make_all_durable();
        let (data, _) = s.read_slot(0, SlotCursor::START, usize::MAX);
        assert_eq!(data.len(), c.len());
    }

    #[test]
    fn tagged_retry_replays_original_ack() {
        let s = Streamlet::new(StreamId(1), StreamletId(0), &config(1, 1 << 20, 4));
        let c = chunk(5);
        let first = s
            .append_chunk_tracked(ProducerId(0), &c, 5, Some(42), |_| Ok(Some(7)))
            .unwrap();
        let SlotAppend::Fresh { append, token } = first else {
            panic!("first append must be fresh")
        };
        assert_eq!(token, Some(7));
        // Same tag again — the retried request. No second copy; the
        // original ack and durability token come back.
        let retry = s
            .append_chunk_tracked(ProducerId(0), &c, 5, Some(42), |_| {
                panic!("a replayed chunk must not re-append")
            })
            .unwrap();
        let SlotAppend::Replay { ack, token } = retry else {
            panic!("retry must be recognized as a replay")
        };
        assert_eq!(ack, append.to_ack());
        assert_eq!(token, Some(7));
        // Exactly one physical copy exists.
        assert_eq!(s.group(GroupId(0)).unwrap().total_bytes(), c.len());
        // A different tag is fresh and lands after the first chunk.
        let next = s
            .append_chunk_tracked(ProducerId(0), &c, 5, Some(43), |_| Ok(None))
            .unwrap();
        let SlotAppend::Fresh { append: a2, .. } = next else {
            panic!("new tag must append")
        };
        assert_eq!(a2.base_offset, 5);
    }

    #[test]
    fn replay_cache_is_per_producer() {
        // Producers 0 and 2 share slot 0 of a Q=2 streamlet; the same tag
        // value from different producers must not collide.
        let s = Streamlet::new(StreamId(1), StreamletId(0), &config(2, 1 << 20, 4));
        let c = chunk(1);
        let a = s.append_chunk_tracked(ProducerId(0), &c, 1, Some(9), |_| Ok(None)).unwrap();
        assert!(matches!(a, SlotAppend::Fresh { .. }));
        let b = s.append_chunk_tracked(ProducerId(2), &c, 1, Some(9), |_| Ok(None)).unwrap();
        assert!(matches!(b, SlotAppend::Fresh { .. }), "same tag, other producer: fresh");
    }

    #[test]
    fn untagged_appends_never_dedup() {
        let s = Streamlet::new(StreamId(1), StreamletId(0), &config(1, 1 << 20, 4));
        let c = chunk(1);
        // The storage-level API without tags keeps append-always semantics
        // (recovery replays identical bytes legitimately).
        let a0 = s.append_chunk(ProducerId(0), &c, 1).unwrap();
        let a1 = s.append_chunk(ProducerId(0), &c, 1).unwrap();
        assert_eq!(a0.base_offset, 0);
        assert_eq!(a1.base_offset, 1);
    }

    #[test]
    fn replay_cache_evicts_oldest() {
        let s = Streamlet::new(StreamId(1), StreamletId(0), &config(1, 1 << 24, 64));
        let c = chunk(1);
        let n = super::ReplayCache::MAX_ENTRIES as u64 + 8;
        for seq in 0..n {
            s.append_chunk_tracked(ProducerId(0), &c, 1, Some(seq), |_| Ok(None)).unwrap();
        }
        // Tag 0 fell out of the window: the retry re-appends (duplicate),
        // which is the documented bound of the cache.
        let old = s.append_chunk_tracked(ProducerId(0), &c, 1, Some(0), |_| Ok(None)).unwrap();
        assert!(matches!(old, SlotAppend::Fresh { .. }));
        // A recent tag is still replayed.
        let recent =
            s.append_chunk_tracked(ProducerId(0), &c, 1, Some(n - 1), |_| Ok(None)).unwrap();
        assert!(matches!(recent, SlotAppend::Replay { .. }));
    }

    #[test]
    fn concurrent_appends_across_slots() {
        let c = chunk(1);
        let s = Arc::new(Streamlet::new(
            StreamId(1),
            StreamletId(0),
            &config(4, 1 << 16, 4),
        ));
        let handles: Vec<_> = (0..4u32)
            .map(|p| {
                let s = Arc::clone(&s);
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        s.append_chunk(ProducerId(p), &c, 1).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Each slot must have exactly 200 records' worth of offsets.
        for p in 0..4u32 {
            let a = s.append_chunk(ProducerId(p), &c, 1).unwrap();
            assert_eq!(a.base_offset, 200);
        }
    }
}
