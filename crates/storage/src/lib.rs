//! Log-structured storage: the physical side of KerA's data model
//! (paper §IV-A, Figs. 3–4).
//!
//! - [`buffer`] — a single-writer, multi-reader *publication buffer*: the
//!   lock-free core that segments are built on;
//! - [`segment`] — fixed-size in-memory segments with a published head and
//!   a durable head (what consumers may read);
//! - [`group`] — bounded chains of segments ("groups of segments", the
//!   fixed-size sub-partitions);
//! - [`index`] — lightweight per-chunk offset indexing (seek a slot by
//!   logical record offset — KerA's second core idea);
//! - [`streamlet`] — KerA's logical partition: `Q` active group slots for
//!   parallel appends plus the closed-group history;
//! - [`store`] — the broker-side stream store mapping stream ids to hosted
//!   streamlets, with the produce-path append and the fetch-path read;
//! - [`flush`] — the asynchronous secondary-storage flusher (same format
//!   on disk and in memory, as the paper requires).

pub mod buffer;
pub mod flush;
pub mod group;
pub mod index;
pub mod segment;
pub mod store;
pub mod streamlet;
