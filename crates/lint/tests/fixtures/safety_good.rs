// Fixture: unsafe with its justification.

fn raw(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid for reads.
    unsafe { *p }
}

// SAFETY: the type owns no thread-affine state.
unsafe impl Send for Holder {}
