// Fixture: panicking constructs in hot-path crate code.

fn take(v: Option<u32>) -> u32 {
    v.unwrap()
}

fn take_expect(v: Option<u32>) -> u32 {
    v.expect("always set")
}

fn boom() {
    panic!("boom");
}
