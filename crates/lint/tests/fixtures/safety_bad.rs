// Fixture: unsafe without a SAFETY comment.

fn raw(p: *const u8) -> u8 {
    unsafe { *p }
}
