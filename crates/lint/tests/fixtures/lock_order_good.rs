// Fixture: hierarchy-respecting and non-overlapping acquisitions.

fn ordered(outer: &Lock, inner: &Lock) {
    let _o = outer.lock();
    let _i = inner.lock();
}

fn sequential(outer: &Lock, inner: &Lock) {
    {
        let _i = inner.lock();
    }
    let _o = outer.lock();
}
