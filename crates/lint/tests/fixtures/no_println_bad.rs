// Fixture: raw stdio diagnostics in non-test hot-path code. Three
// findings expected: println!, eprintln!, dbg!.

fn handle(x: u64) -> u64 {
    println!("handling {x}");
    eprintln!("warn: {x}");
    let y = dbg!(x + 1);
    y
}
