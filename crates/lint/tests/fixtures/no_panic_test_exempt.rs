// Fixture: panics inside #[cfg(test)] regions are exempt even in
// hot-path crates.

fn safe() -> u32 {
    0
}

#[cfg(test)]
mod tests {
    #[test]
    fn check() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        v.expect("present");
    }
}
