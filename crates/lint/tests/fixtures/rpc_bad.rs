// Fixture: a lock guard held across an RPC call.

fn held_across(state: &Lock, rpc: &Client) {
    let _g = state.lock();
    rpc.call(1);
}

fn held_across_async(state: &Lock, rpc: &Client) {
    let _g = state.read();
    rpc.call_async(2);
}
