// Fixture: the sanctioned escapes from the no-println-hot-path rule —
// test code, a reasoned allow annotation, and non-macro identifiers.

fn operator_notice(n: usize) {
    // lint: allow(no-println-hot-path) — operator-facing failure notice
    eprintln!("flight recorder dumped: {n} file(s)");
}

fn not_a_macro(printer: &Printer) {
    printer.println("method call, not the macro");
    let dbg = 1;
    let _ = dbg + 1;
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print() {
        println!("fine here");
        dbg!(42);
    }
}
