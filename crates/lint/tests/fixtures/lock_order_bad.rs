// Fixture: acquiring `outer` (rank 0) while holding `inner` (rank 1)
// inverts the declared hierarchy. Never compiled, only lexed.

fn inverted(outer: &Lock, inner: &Lock) {
    let _i = inner.lock();
    let _o = outer.lock();
}
