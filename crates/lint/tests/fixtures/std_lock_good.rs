// Fixture: the sanctioned imports.

use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
