// Fixture: one properly annotated allow, one missing its reason.

fn startup(v: Option<u32>) -> u32 {
    // lint: allow(no-panic) — config is validated before we get here
    v.unwrap()
}

fn missing_reason(v: Option<u32>) -> u32 {
    // lint: allow(no-panic)
    v.unwrap()
}
