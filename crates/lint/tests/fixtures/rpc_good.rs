// Fixture: guards released before the RPC boundary.

fn drop_first(state: &Lock, rpc: &Client) {
    let g = state.lock();
    drop(g);
    rpc.call(1);
}

fn scoped(state: &Lock, rpc: &Client) {
    {
        let _g = state.lock();
    }
    rpc.call(1);
}
