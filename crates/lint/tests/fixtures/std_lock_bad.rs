// Fixture: raw std locks, banned outside crates/shims.

use std::sync::Mutex;
use std::sync::{Arc, RwLock};
