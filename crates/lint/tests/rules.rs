//! Per-rule fixture tests for the analyzer, plus a workspace-wide
//! cleanliness gate: the real tree must lint clean at all times.

use std::path::Path;

use kera_lint::analyze::{
    analyze, RULE_LOCK_ACROSS_RPC, RULE_LOCK_ORDER, RULE_NO_PANIC, RULE_NO_PRINTLN, RULE_SAFETY,
    RULE_STD_LOCK,
};
use kera_lint::config::LintConfig;
use kera_lint::{find_workspace_root, load_config, run_workspace, Finding};

/// Self-contained hierarchy/aliases for the fixtures: `outer` outranks
/// `inner`, and only the `hot` crate is panic-restricted.
const CONFIG: &str = r#"
[hierarchy]
order = ["a.outer", "b.inner"]

[rules]
hot_path_crates = ["hot"]
println_crates = ["hot"]

[aliases]
outer = "a.outer"
inner = "b.inner"
"#;

fn cfg() -> LintConfig {
    LintConfig::parse(CONFIG).expect("fixture config parses")
}

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Runs the analyzer over one fixture as non-test code of `krate`.
fn run(name: &str, krate: &str) -> (Vec<Finding>, usize) {
    analyze(name, krate, &fixture(name), false, &cfg())
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn lock_order_inversion_is_flagged() {
    let (findings, suppressed) = run("lock_order_bad.rs", "fixture");
    assert_eq!(rules_of(&findings), vec![RULE_LOCK_ORDER], "{findings:?}");
    assert_eq!(suppressed, 0);
    assert!(findings[0].message.contains("a.outer"), "{}", findings[0]);
    assert!(findings[0].message.contains("b.inner"), "{}", findings[0]);
}

#[test]
fn lock_order_respecting_code_is_clean() {
    let (findings, _) = run("lock_order_good.rs", "fixture");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn guard_across_rpc_is_flagged() {
    let (findings, _) = run("rpc_bad.rs", "fixture");
    assert_eq!(
        rules_of(&findings),
        vec![RULE_LOCK_ACROSS_RPC, RULE_LOCK_ACROSS_RPC],
        "{findings:?}"
    );
}

#[test]
fn guard_released_before_rpc_is_clean() {
    let (findings, _) = run("rpc_good.rs", "fixture");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn std_locks_are_flagged() {
    let (findings, _) = run("std_lock_bad.rs", "fixture");
    assert_eq!(rules_of(&findings), vec![RULE_STD_LOCK, RULE_STD_LOCK], "{findings:?}");
}

#[test]
fn sanctioned_sync_imports_are_clean() {
    let (findings, _) = run("std_lock_good.rs", "fixture");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn panics_in_hot_path_crates_are_flagged() {
    let (findings, _) = run("no_panic_bad.rs", "hot");
    assert_eq!(
        rules_of(&findings),
        vec![RULE_NO_PANIC, RULE_NO_PANIC, RULE_NO_PANIC],
        "{findings:?}"
    );
}

#[test]
fn panics_outside_hot_path_crates_are_ignored() {
    let (findings, _) = run("no_panic_bad.rs", "coldpath");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn allow_with_reason_suppresses_and_without_reason_does_not() {
    let (findings, suppressed) = run("no_panic_allowed.rs", "hot");
    assert_eq!(suppressed, 1, "the reasoned allow suppresses one finding");
    assert_eq!(rules_of(&findings), vec![RULE_NO_PANIC], "{findings:?}");
    assert!(
        findings[0].message.contains("missing a reason"),
        "{}",
        findings[0]
    );
}

#[test]
fn cfg_test_regions_are_exempt_from_no_panic() {
    let (findings, _) = run("no_panic_test_exempt.rs", "hot");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn test_files_are_exempt_from_no_panic() {
    let (findings, _) =
        analyze("no_panic_bad.rs", "hot", &fixture("no_panic_bad.rs"), true, &cfg());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn println_in_hot_path_crates_is_flagged() {
    let (findings, _) = run("no_println_bad.rs", "hot");
    assert_eq!(
        rules_of(&findings),
        vec![RULE_NO_PRINTLN, RULE_NO_PRINTLN, RULE_NO_PRINTLN],
        "{findings:?}"
    );
    assert!(findings[0].message.contains("println!"), "{}", findings[0]);
    assert!(findings[2].message.contains("dbg!"), "{}", findings[2]);
}

#[test]
fn println_outside_listed_crates_is_ignored() {
    let (findings, _) = run("no_println_bad.rs", "coldpath");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn println_escapes_are_clean() {
    let (findings, suppressed) = run("no_println_good.rs", "hot");
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(suppressed, 1, "the reasoned allow suppresses one finding");
}

#[test]
fn println_in_test_files_is_exempt() {
    let (findings, _) =
        analyze("no_println_bad.rs", "hot", &fixture("no_println_bad.rs"), true, &cfg());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn unsafe_without_safety_comment_is_flagged() {
    let (findings, _) = run("safety_bad.rs", "fixture");
    assert_eq!(rules_of(&findings), vec![RULE_SAFETY], "{findings:?}");
}

#[test]
fn unsafe_with_safety_comment_is_clean() {
    let (findings, _) = run("safety_good.rs", "fixture");
    assert!(findings.is_empty(), "{findings:?}");
}

/// The gate the CI stage enforces: the actual workspace must produce
/// zero findings under the checked-in `lint/lock-order.toml`.
#[test]
fn workspace_is_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint/lock-order.toml reachable from the lint crate");
    let cfg = load_config(&root).expect("lock-order.toml parses");
    let report = run_workspace(&root, &cfg).expect("workspace walk");
    assert!(
        report.findings.is_empty(),
        "workspace lint findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 50, "walk found {} files", report.files_scanned);
}
