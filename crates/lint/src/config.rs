//! Configuration for the analyzer: the declared lock hierarchy and the
//! rule scoping, read from `lint/lock-order.toml`.
//!
//! The build environment is offline, so this is a tiny hand-rolled
//! parser for the TOML subset the config actually uses: `[tables]`,
//! `key = "string"`, `"quoted/key" = "string"` and
//! `key = ["a", "b", ...]` (single- or multi-line arrays), with `#`
//! comments. Anything fancier is a config error, loudly.

use std::collections::HashMap;

/// Parsed lint configuration.
#[derive(Debug, Default, Clone)]
pub struct LintConfig {
    /// Lock classes in acquisition order: a lock earlier in the list must
    /// be acquired before any lock later in the list, never after.
    pub order: Vec<String>,
    /// Receiver identifier (optionally `crate/ident`) -> lock class.
    pub aliases: HashMap<String, String>,
    /// Crates whose non-test code may not panic.
    pub hot_path_crates: Vec<String>,
    /// Crates whose non-test code may not `println!`/`eprintln!`/`dbg!`
    /// (rule `no-println-hot-path`): diagnostics go through the obs
    /// event log instead of raw stdio.
    pub println_crates: Vec<String>,
    /// Crates whose non-test code may not call `.to_vec()` / `.clone()`
    /// on payload-carrying receivers (rule `no-hot-copy`): the data
    /// plane is zero-copy by construction, so every full-payload copy
    /// must be either removed or annotated with a reason.
    pub copy_crates: Vec<String>,
}

impl LintConfig {
    /// Rank of a lock class in the declared order (lower acquires first).
    pub fn rank(&self, class: &str) -> Option<usize> {
        self.order.iter().position(|c| c == class)
    }

    /// Resolves a receiver identifier seen in `krate` to its lock class:
    /// `crate/ident` aliases win over bare `ident` aliases; an identifier
    /// that *is* a class name maps to itself.
    pub fn class_of(&self, krate: &str, recv: &str) -> Option<String> {
        if let Some(c) = self.aliases.get(&format!("{krate}/{recv}")) {
            return Some(c.clone());
        }
        if let Some(c) = self.aliases.get(recv) {
            return Some(c.clone());
        }
        if self.order.iter().any(|c| c == recv) {
            return Some(recv.to_string());
        }
        None
    }

    pub fn parse(text: &str) -> Result<LintConfig, String> {
        let mut cfg = LintConfig::default();
        let mut table = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((n, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                table = name.trim().to_string();
                continue;
            }
            let (key, mut value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
                .ok_or_else(|| format!("line {}: expected `key = value`", n + 1))?;
            let key = unquote(&key);
            // Multi-line array: keep consuming until the closing bracket.
            if value.starts_with('[') && !balanced_array(&value) {
                for (_, cont) in lines.by_ref() {
                    value.push(' ');
                    value.push_str(strip_comment(cont).trim());
                    if balanced_array(&value) {
                        break;
                    }
                }
            }
            match (table.as_str(), key.as_str()) {
                ("hierarchy", "order") => cfg.order = parse_array(&value)?,
                ("rules", "hot_path_crates") => cfg.hot_path_crates = parse_array(&value)?,
                ("rules", "println_crates") => cfg.println_crates = parse_array(&value)?,
                ("rules", "copy_crates") => cfg.copy_crates = parse_array(&value)?,
                ("aliases", recv) => {
                    cfg.aliases.insert(recv.to_string(), parse_string(&value)?);
                }
                (t, k) => {
                    return Err(format!("line {}: unknown config key [{t}] {k}", n + 1));
                }
            }
        }
        // Aliased classes must exist in the hierarchy, or ranks silently
        // never apply.
        for (recv, class) in &cfg.aliases {
            if !cfg.order.iter().any(|c| c == class) {
                return Err(format!(
                    "alias `{recv}` maps to `{class}` which is not in [hierarchy] order"
                ));
            }
        }
        Ok(cfg)
    }
}

fn strip_comment(line: &str) -> &str {
    // A `#` inside a quoted string would break this, but the config
    // format bans `#` in keys/classes, so a plain scan is enough.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn unquote(s: &str) -> String {
    let s = s.trim();
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or(s)
        .to_string()
}

fn balanced_array(s: &str) -> bool {
    s.matches('[').count() == s.matches(']').count() && s.trim_end().ends_with(']')
}

fn parse_string(v: &str) -> Result<String, String> {
    let v = v.trim();
    if v.starts_with('"') && v.ends_with('"') && v.len() >= 2 {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(format!("expected a quoted string, got `{v}`"))
    }
}

fn parse_array(v: &str) -> Result<Vec<String>, String> {
    let v = v.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("expected an array, got `{v}`"))?;
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_real_shape() {
        let cfg = LintConfig::parse(
            r#"
# comment
[hierarchy]
order = [
  "a.first",   # earliest
  "b.second",
]

[rules]
hot_path_crates = ["rpc", "vlog"]

[aliases]
slots = "a.first"
"vlog/state" = "b.second"
"#,
        )
        .unwrap();
        assert_eq!(cfg.order, vec!["a.first", "b.second"]);
        assert_eq!(cfg.rank("b.second"), Some(1));
        assert_eq!(cfg.class_of("vlog", "state").as_deref(), Some("b.second"));
        assert_eq!(cfg.class_of("rpc", "state"), None);
        assert_eq!(cfg.class_of("storage", "slots").as_deref(), Some("a.first"));
        assert_eq!(cfg.hot_path_crates, vec!["rpc", "vlog"]);
    }

    #[test]
    fn rejects_unknown_alias_target() {
        let err = LintConfig::parse(
            "[hierarchy]\norder = [\"a\"]\n[aliases]\nx = \"missing\"\n",
        )
        .unwrap_err();
        assert!(err.contains("missing"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(LintConfig::parse("[hierarchy]\norder = notanarray\n").is_err());
        assert!(LintConfig::parse("[what]\nx = \"y\"\n").is_err());
    }
}
