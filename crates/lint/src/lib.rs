//! kera-lint: a zero-dependency, token-level concurrency/robustness
//! analyzer for the KerA workspace.
//!
//! Rules (see DESIGN.md "Concurrency invariants & static analysis"):
//! - `lock-order`       nested lock acquisitions must follow the
//!   hierarchy declared in `lint/lock-order.toml`
//! - `lock-across-rpc`  no lock guard may be held across `.call(` /
//!   `.call_async(` / `.replicate(`
//! - `std-lock`         `std::sync::{Mutex,RwLock}` banned outside
//!   `crates/shims`
//! - `no-panic`         `unwrap()` / `expect()` / `panic!` banned in
//!   non-test code of hot-path crates
//! - `no-println-hot-path` `println!` / `eprintln!` / `dbg!` banned in
//!   non-test code of the crates listed in `println_crates` — use the
//!   obs event log / flight recorder instead
//! - `safety-comment`   every `unsafe` block / `unsafe impl` needs a
//!   `// SAFETY:` comment
//! - `no-time-under-lock` `Instant::now()` banned inside lock-guard
//!   scopes in non-test code of hot-path crates — time outside the
//!   guard; lock-wait timing belongs to the parking_lot shim's
//!   contention timer (`crates/shims` is exempt)
//!
//! Findings are suppressed by `// lint: allow(<rule>) — <reason>` on the
//! same line or up to two lines above; the reason is mandatory.

pub mod analyze;
pub mod config;
pub mod lexer;

use std::fmt;
use std::path::{Path, PathBuf};

use config::LintConfig;

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// Result of a full workspace run.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub suppressed: usize,
    pub files_scanned: usize,
}

/// Directories never descended into, matched by a single component name.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "node_modules"];

/// Workspace-relative directory prefixes excluded from analysis:
/// `crates/shims` is the sanctioned home of raw std locks and the
/// lockdep instrumentation itself; the lint fixtures intentionally
/// violate every rule.
const SKIP_PREFIXES: [&str; 2] = ["crates/shims", "crates/lint/tests/fixtures"];

/// Loads `lint/lock-order.toml` from the workspace root.
pub fn load_config(root: &Path) -> Result<LintConfig, String> {
    let path = root.join("lint/lock-order.toml");
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    LintConfig::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Walks the workspace rooted at `root` and analyzes every `.rs` file
/// outside the skip list.
pub fn run_workspace(root: &Path, cfg: &LintConfig) -> Result<Report, String> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut report = Report::default();
    for rel in files {
        let abs = root.join(&rel);
        let src = std::fs::read_to_string(&abs)
            .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let krate = crate_of(&rel_str);
        let in_test_file = rel_str
            .split('/')
            .any(|c| c == "tests" || c == "benches" || c == "examples");
        let (findings, suppressed) = analyze::analyze(&rel_str, krate, &src, in_test_file, cfg);
        report.findings.extend(findings);
        report.suppressed += suppressed;
        report.files_scanned += 1;
    }
    Ok(report)
}

/// Crate name a workspace-relative path belongs to: `crates/<name>/...`
/// maps to `<name>`; anything else is the root `kera` package.
fn crate_of(rel: &str) -> &str {
    let mut parts = rel.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return name;
        }
    }
    "kera"
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir in {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let rel = path
            .strip_prefix(root)
            .map_err(|e| format!("path outside root: {e}"))?
            .to_string_lossy()
            .replace('\\', "/");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            if SKIP_PREFIXES.contains(&rel.as_str()) {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path.strip_prefix(root).map_err(|e| e.to_string())?.to_path_buf());
        }
    }
    Ok(())
}

/// Ascends from `start` looking for the directory containing
/// `lint/lock-order.toml` — the workspace root.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("lint/lock-order.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_mapping() {
        assert_eq!(crate_of("crates/rpc/src/node.rs"), "rpc");
        assert_eq!(crate_of("crates/vlog/tests/chaos.rs"), "vlog");
        assert_eq!(crate_of("src/main.rs"), "kera");
    }
}
