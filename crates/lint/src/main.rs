//! `kera-lint` — run the workspace concurrency/robustness analyzer.
//!
//! Usage: `cargo run -p kera-lint [workspace-root]`
//! Exits 1 when any unannotated finding remains.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => {
            let start = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match kera_lint::find_workspace_root(&start) {
                Some(root) => root,
                None => {
                    eprintln!(
                        "kera-lint: no lint/lock-order.toml found above {} — \
                         run from the workspace or pass the root as an argument",
                        start.display()
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let cfg = match kera_lint::load_config(&root) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("kera-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    match kera_lint::run_workspace(&root, &cfg) {
        Ok(report) => {
            for f in &report.findings {
                println!("{f}");
            }
            println!(
                "kera-lint: {} file(s) scanned, {} finding(s), {} suppressed by annotations",
                report.files_scanned,
                report.findings.len(),
                report.suppressed
            );
            if report.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("kera-lint: {e}");
            ExitCode::FAILURE
        }
    }
}
