//! The rules engine: a single linear pass over the token stream of one
//! file, tracking brace/paren depth, test regions and live lock guards.
//!
//! Guard lifetime model (deliberately conservative, token-level):
//! - `let g = recv.lock();` — guard lives until the enclosing brace
//!   closes, `drop(g)` runs, or `g` is shadowed by a new `let g`.
//! - a temporary (`recv.lock().field`, `if let .. = recv.lock().x() {`)
//!   lives until the `;` ending its statement at the same brace depth,
//!   or until a `}` returns to the depth it was acquired at (covers
//!   `if let`/`while let`/`for` headers whose temporaries live through
//!   the block).
//!
//! Because the pass is lexical, guards never leak across function
//! boundaries: every guard dies at its function's closing brace.

use crate::config::LintConfig;
use crate::lexer::{lex, Comment, TokKind, Token};
use crate::Finding;

pub const RULE_LOCK_ORDER: &str = "lock-order";
pub const RULE_LOCK_ACROSS_RPC: &str = "lock-across-rpc";
pub const RULE_STD_LOCK: &str = "std-lock";
pub const RULE_NO_PANIC: &str = "no-panic";
pub const RULE_SAFETY: &str = "safety-comment";
pub const RULE_NO_PRINTLN: &str = "no-println-hot-path";
pub const RULE_NO_HOT_COPY: &str = "no-hot-copy";
pub const RULE_NO_TIME_UNDER_LOCK: &str = "no-time-under-lock";

/// Method names that acquire a lock guard when called with no arguments.
const ACQUIRE_METHODS: [&str; 3] = ["lock", "read", "write"];
/// Method names that cross an RPC / replication boundary.
const RPC_METHODS: [&str; 3] = ["call", "call_async", "replicate"];
/// Receiver identifiers that, by workspace convention, carry record
/// payload bytes. `.to_vec()` / `.clone()` on one of these in a
/// `copy_crates` crate is a full-payload copy on the data plane — the
/// zero-copy invariant the `no-hot-copy` rule protects. Cheap refcount
/// clones (`Bytes`) still match; annotate them with
/// `// lint: allow(no-hot-copy) — refcount clone` so every survivor in
/// the hot path is an audited decision, not an accident.
const PAYLOAD_RECEIVERS: [&str; 7] =
    ["payload", "chunks", "data", "buf", "body", "bytes", "batch"];

struct Guard {
    /// Receiver identifier the guard came from (for messages).
    recv: String,
    /// Lock class resolved through the config, if declared.
    class: Option<String>,
    /// `let`-binding name, if the guard is named.
    binding: Option<String>,
    /// Brace depth at acquisition.
    depth: i32,
    line: u32,
}

struct Allow {
    line: u32,
    rule: String,
    has_reason: bool,
}

/// Analyzes one file. Returns the unsuppressed findings and the number
/// of findings suppressed by valid `// lint: allow(...)` annotations.
pub fn analyze(
    path: &str,
    krate: &str,
    src: &str,
    in_test_file: bool,
    cfg: &LintConfig,
) -> (Vec<Finding>, usize) {
    let lexed = lex(src);
    let allows = parse_allows(&lexed.comments);
    let safety_lines = safety_spans(&lexed.comments);

    let mut raw = token_pass(path, krate, &lexed.tokens, in_test_file, cfg, &safety_lines);
    raw.sort_by_key(|f| f.line);

    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for mut f in raw {
        match allow_for(&allows, f.rule, f.line) {
            Some(true) => suppressed += 1,
            Some(false) => {
                f.message.push_str(" [allow annotation found but missing a reason]");
                findings.push(f);
            }
            None => findings.push(f),
        }
    }
    (findings, suppressed)
}

/// `Some(has_reason)` when an allow annotation for `rule` covers `line`
/// (same line or up to two lines above), `None` when none does.
fn allow_for(allows: &[Allow], rule: &str, line: u32) -> Option<bool> {
    allows
        .iter()
        .filter(|a| a.rule == rule && a.line <= line && a.line + 2 >= line)
        .map(|a| a.has_reason)
        .max() // prefer an annotation with a reason if several match
}

/// Line spans of `// SAFETY:` comment blocks. Adjacent line comments are
/// merged into one block first, so a multi-line SAFETY comment covers an
/// `unsafe` within 8 lines of the block's *end*, not of the one line
/// containing the marker.
fn safety_spans(comments: &[Comment<'_>]) -> Vec<(u32, u32)> {
    let mut blocks: Vec<(u32, u32, bool)> = Vec::new();
    for c in comments {
        let has = c.text.contains("SAFETY:");
        match blocks.last_mut() {
            Some((_, last, block_has)) if c.first_line <= *last + 1 => {
                *last = c.last_line;
                *block_has |= has;
            }
            _ => blocks.push((c.first_line, c.last_line, has)),
        }
    }
    blocks.into_iter().filter(|b| b.2).map(|b| (b.0, b.1)).collect()
}

fn parse_allows(comments: &[Comment<'_>]) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in comments {
        let Some(p) = c.text.find("lint: allow(") else { continue };
        let rest = &c.text[p + "lint: allow(".len()..];
        let Some(close) = rest.find(')') else { continue };
        let rule = rest[..close].trim().to_string();
        let reason = rest[close + 1..]
            .trim_start_matches(|ch: char| ch == '—' || ch == '-' || ch == ':' || ch.is_whitespace());
        out.push(Allow {
            line: c.last_line,
            rule,
            has_reason: reason.len() >= 3,
        });
    }
    out
}

#[allow(clippy::too_many_lines)]
fn token_pass(
    path: &str,
    krate: &str,
    toks: &[Token<'_>],
    in_test_file: bool,
    cfg: &LintConfig,
    safety_lines: &[(u32, u32)],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let hot_path = cfg.hot_path_crates.iter().any(|c| c == krate);
    let println_banned = cfg.println_crates.iter().any(|c| c == krate);
    let copy_banned = cfg.copy_crates.iter().any(|c| c == krate);

    let is_punct = |i: usize, s: &str| {
        toks.get(i).is_some_and(|t| t.kind == TokKind::Punct && t.text == s)
    };
    let ident_at = |i: usize| {
        toks.get(i)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
    };

    let mut i = 0usize;
    let mut depth = 0i32;
    let mut parens = 0i32;
    // Brace depths at which `#[test]` / `#[cfg(test)]` regions opened.
    let mut test_stack: Vec<i32> = Vec::new();
    let mut pending_test = false;
    let mut guards: Vec<Guard> = Vec::new();

    while i < toks.len() {
        let t = &toks[i];
        let in_test = in_test_file || !test_stack.is_empty();
        match (t.kind, t.text) {
            (TokKind::Punct, "{") => {
                if pending_test {
                    test_stack.push(depth);
                    pending_test = false;
                }
                depth += 1;
            }
            (TokKind::Punct, "}") => {
                depth -= 1;
                if test_stack.last() == Some(&depth) {
                    test_stack.pop();
                }
                guards.retain(|g| {
                    if g.binding.is_some() { g.depth <= depth } else { g.depth < depth }
                });
            }
            (TokKind::Punct, ";") if parens == 0 => {
                guards.retain(|g| g.binding.is_some() || g.depth != depth);
                pending_test = false;
            }
            (TokKind::Punct, "(") => parens += 1,
            (TokKind::Punct, ")") => parens -= 1,
            (TokKind::Punct, "#") => {
                // Attribute: `#[...]` or `#![...]`. Skip its tokens; an
                // outer attribute mentioning `test` (and not `not`)
                // marks the next braced item as test code.
                let open = if is_punct(i + 1, "[") {
                    Some(i + 1)
                } else if is_punct(i + 1, "!") && is_punct(i + 2, "[") {
                    Some(i + 2)
                } else {
                    None
                };
                if let Some(open) = open {
                    let (end, is_test) = scan_attribute(toks, open);
                    if is_test && open == i + 1 {
                        pending_test = true;
                    }
                    i = end;
                    continue;
                }
            }
            (TokKind::Ident, "let") => {
                // Shadowing releases a previously let-bound guard.
                let mut j = i + 1;
                if ident_at(j) == Some("mut") {
                    j += 1;
                }
                if let Some(name) = ident_at(j) {
                    if is_punct(j + 1, "=") || is_punct(j + 1, ":") {
                        guards.retain(|g| {
                            g.binding.as_deref() != Some(name) || g.depth != depth
                        });
                    }
                }
            }
            (TokKind::Ident, "drop")
                if is_punct(i + 1, "(") && ident_at(i + 2).is_some() && is_punct(i + 3, ")") =>
            {
                let name = ident_at(i + 2).unwrap_or_default();
                guards.retain(|g| g.binding.as_deref() != Some(name));
            }
            (TokKind::Ident, "unsafe") => {
                let needs_comment =
                    is_punct(i + 1, "{") || ident_at(i + 1) == Some("impl");
                if needs_comment {
                    let line = t.line;
                    let covered = safety_lines
                        .iter()
                        .any(|&(_, last)| last <= line + 1 && last + 8 >= line);
                    if !covered {
                        findings.push(finding(
                            path,
                            line,
                            RULE_SAFETY,
                            "`unsafe` block without a nearby `// SAFETY:` comment justifying it"
                                .to_string(),
                        ));
                    }
                }
            }
            (TokKind::Ident, "std")
                if is_punct(i + 1, ":")
                    && is_punct(i + 2, ":")
                    && ident_at(i + 3) == Some("sync")
                    && is_punct(i + 4, ":")
                    && is_punct(i + 5, ":") =>
            {
                for (line, name) in std_sync_lock_uses(toks, i + 6) {
                    findings.push(finding(
                        path,
                        line,
                        RULE_STD_LOCK,
                        format!(
                            "`std::sync::{name}` is banned outside crates/shims — use the \
                             parking_lot shim"
                        ),
                    ));
                }
            }
            (TokKind::Ident, m @ ("println" | "eprintln" | "dbg"))
                if is_punct(i + 1, "!") && println_banned && !in_test =>
            {
                findings.push(finding(
                    path,
                    t.line,
                    RULE_NO_PRINTLN,
                    format!(
                        "`{m}!` in non-test hot-path code — route diagnostics through the \
                         obs event log / flight recorder, or annotate \
                         `// lint: allow(no-println-hot-path) — <reason>`"
                    ),
                ));
            }
            (TokKind::Ident, "panic") if is_punct(i + 1, "!") && hot_path && !in_test => {
                findings.push(finding(
                    path,
                    t.line,
                    RULE_NO_PANIC,
                    "`panic!` in non-test hot-path code — return a KeraError instead"
                        .to_string(),
                ));
            }
            (TokKind::Ident, m @ ("unwrap" | "expect"))
                if is_punct(i + 1, "(")
                    && i > 0
                    && toks[i - 1].text == "."
                    && hot_path
                    && !in_test =>
            {
                findings.push(finding(
                    path,
                    t.line,
                    RULE_NO_PANIC,
                    format!(
                        "`.{m}()` in non-test hot-path code — return a KeraError or \
                         annotate `// lint: allow(no-panic) — <reason>`"
                    ),
                ));
            }
            (TokKind::Ident, m @ ("to_vec" | "clone"))
                if is_punct(i + 1, "(")
                    && is_punct(i + 2, ")")
                    && i > 0
                    && toks[i - 1].text == "."
                    && copy_banned
                    && !in_test =>
            {
                let recv = receiver_of(toks, i).unwrap_or_default();
                if PAYLOAD_RECEIVERS.contains(&recv.as_str()) {
                    findings.push(finding(
                        path,
                        t.line,
                        RULE_NO_HOT_COPY,
                        format!(
                            "`{recv}.{m}()` copies a payload on the data plane — slice a \
                             `Bytes` view instead, or annotate \
                             `// lint: allow(no-hot-copy) — <reason>` (e.g. refcount clone)"
                        ),
                    ));
                }
            }
            (TokKind::Ident, "Instant")
                if is_punct(i + 1, ":")
                    && is_punct(i + 2, ":")
                    && ident_at(i + 3) == Some("now")
                    && is_punct(i + 4, "(")
                    && hot_path
                    && !in_test =>
            {
                // Reading the clock is a syscall-ish stall (~20-60ns, and
                // vastly worse under vDSO fallback); doing it inside a
                // guard scope stretches every contender's wait. The lock
                // shim's two-phase contention timer is the sanctioned way
                // to time lock waits (crates/shims is skip-listed).
                for g in &guards {
                    findings.push(finding(
                        path,
                        t.line,
                        RULE_NO_TIME_UNDER_LOCK,
                        format!(
                            "`Instant::now()` while holding guard on `{}`{} acquired at \
                             line {} — read the clock before acquiring, or annotate \
                             `// lint: allow(no-time-under-lock) — <reason>`",
                            g.recv,
                            g.class
                                .as_deref()
                                .map(|c| format!(" [class {c}]"))
                                .unwrap_or_default(),
                            g.line
                        ),
                    ));
                }
            }
            (TokKind::Ident, m)
                if RPC_METHODS.contains(&m)
                    && is_punct(i + 1, "(")
                    && i > 0
                    && toks[i - 1].text == "."
                    && !in_test =>
            {
                for g in &guards {
                    findings.push(finding(
                        path,
                        t.line,
                        RULE_LOCK_ACROSS_RPC,
                        format!(
                            "`.{m}(...)` (RPC boundary) while holding guard on `{}`{} \
                             acquired at line {} — release the lock before blocking on RPC",
                            g.recv,
                            g.class
                                .as_deref()
                                .map(|c| format!(" [class {c}]"))
                                .unwrap_or_default(),
                            g.line
                        ),
                    ));
                }
            }
            (TokKind::Ident, m)
                if ACQUIRE_METHODS.contains(&m)
                    && is_punct(i + 1, "(")
                    && is_punct(i + 2, ")")
                    && i > 0
                    && toks[i - 1].text == "." =>
            {
                let recv = receiver_of(toks, i).unwrap_or_else(|| "<expr>".to_string());
                let class = cfg.class_of(krate, &recv);
                if !in_test {
                    if let Some(new_rank) = class.as_deref().and_then(|c| cfg.rank(c)) {
                        for g in &guards {
                            let held_rank = g.class.as_deref().and_then(|c| cfg.rank(c));
                            if held_rank.is_some_and(|hr| new_rank < hr) {
                                findings.push(finding(
                                    path,
                                    t.line,
                                    RULE_LOCK_ORDER,
                                    format!(
                                        "acquiring `{}` (via `{recv}.{m}()`) while holding \
                                         `{}` (acquired line {}) — lock-order.toml declares \
                                         `{}` must be taken first",
                                        class.as_deref().unwrap_or(&recv),
                                        g.class.as_deref().unwrap_or(&g.recv),
                                        g.line,
                                        class.as_deref().unwrap_or(&recv),
                                    ),
                                ));
                            }
                        }
                    }
                }
                // The guard is named only when the *whole statement*
                // is `[let [mut]] name = recv.lock();` — anything
                // chained after the call (`.get(..)`, `.len()`)
                // means the binding holds a derived value and the
                // guard itself is a temporary.
                let binding = if is_punct(i + 3, ";") {
                    binding_of_statement(toks, i)
                } else {
                    None
                };
                guards.push(Guard { recv, class, binding, depth, line: t.line });
            }
            _ => {}
        }
        i += 1;
    }
    findings
}

fn finding(path: &str, line: u32, rule: &'static str, message: String) -> Finding {
    Finding { file: path.to_string(), line, rule, message }
}

/// Scans an attribute starting at the `[` index. Returns (index one past
/// the matching `]`, whether it marks test code).
fn scan_attribute(toks: &[Token<'_>], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut saw_test = false;
    let mut saw_not = false;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        match (t.kind, t.text) {
            (TokKind::Punct, "[") => depth += 1,
            (TokKind::Punct, "]") => {
                depth -= 1;
                if depth == 0 {
                    return (i + 1, saw_test && !saw_not);
                }
            }
            (TokKind::Ident, "test") => saw_test = true,
            (TokKind::Ident, "not") => saw_not = true,
            _ => {}
        }
        i += 1;
    }
    (toks.len(), saw_test && !saw_not)
}

/// Reports `Mutex`/`RwLock` names reachable right after a `std::sync::`
/// path prefix ending at `start` — either a single segment or a
/// `{ ... }` use-group.
fn std_sync_lock_uses<'a>(toks: &[Token<'a>], start: usize) -> Vec<(u32, &'a str)> {
    let banned = |t: &Token<'a>| t.kind == TokKind::Ident && (t.text == "Mutex" || t.text == "RwLock");
    let mut out = Vec::new();
    match toks.get(start) {
        Some(t) if banned(t) => out.push((t.line, t.text)),
        Some(t) if t.kind == TokKind::Punct && t.text == "{" => {
            let mut depth = 0i32;
            for u in &toks[start..] {
                if u.kind == TokKind::Punct {
                    match u.text {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                } else if banned(u) {
                    out.push((u.line, u.text));
                }
            }
        }
        _ => {}
    }
    out
}

/// Walks backwards from the acquire-method token to name the receiver:
/// the nearest identifier, skipping balanced `(...)` / `[...]` groups.
/// `self.slots[i as usize].lock()` names `slots`.
fn receiver_of(toks: &[Token<'_>], method_idx: usize) -> Option<String> {
    let mut j = method_idx.checked_sub(2)?;
    loop {
        let t = toks.get(j)?;
        match (t.kind, t.text) {
            (TokKind::Punct, close @ (")" | "]")) => {
                let open = if close == ")" { "(" } else { "[" };
                let mut depth = 1i32;
                while depth > 0 {
                    j = j.checked_sub(1)?;
                    let u = toks.get(j)?;
                    if u.kind == TokKind::Punct {
                        if u.text == close {
                            depth += 1;
                        } else if u.text == open {
                            depth -= 1;
                        }
                    }
                }
                j = j.checked_sub(1)?;
            }
            (TokKind::Ident, name) => return Some(name.to_string()),
            (TokKind::Punct, "." | ":") => j = j.checked_sub(1)?,
            _ => return None,
        }
    }
}

/// Name bound by the statement containing token `from`, when it has the
/// shape `[let [mut]] name = ...` or `let name: Type = ...` — covers
/// both fresh bindings and reacquisition into an existing `mut` slot
/// (`st = self.state.lock();`). Bounded backward scan to the statement
/// boundary (`;`, `{`, `}`).
fn binding_of_statement(toks: &[Token<'_>], from: usize) -> Option<String> {
    let lo = from.saturating_sub(40);
    let mut k = from;
    let mut start = None;
    while k > lo {
        k -= 1;
        let t = &toks[k];
        if t.kind == TokKind::Punct && matches!(t.text, ";" | "{" | "}") {
            start = Some(k + 1);
            break;
        }
    }
    let s = start?;
    let is_let = toks.get(s).is_some_and(|t| t.text == "let");
    let mut n = s;
    if is_let {
        n += 1;
    }
    if toks.get(n).is_some_and(|t| t.text == "mut") {
        n += 1;
    }
    let name = toks.get(n).filter(|t| t.kind == TokKind::Ident)?;
    let eq = toks.get(n + 1)?;
    if eq.kind == TokKind::Punct && (eq.text == "=" || (eq.text == ":" && is_let)) {
        Some(name.text.to_string())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LintConfig {
        LintConfig::parse(
            r#"
[hierarchy]
order = ["a.outer", "b.inner"]
[rules]
hot_path_crates = ["hot"]
copy_crates = ["hot"]
[aliases]
outer = "a.outer"
inner = "b.inner"
"#,
        )
        .unwrap()
    }

    fn run(krate: &str, src: &str) -> Vec<Finding> {
        analyze("test.rs", krate, src, false, &cfg()).0
    }

    #[test]
    fn lock_order_violation_fires() {
        let src = "fn f(s: &S) { let a = s.inner.lock(); let b = s.outer.lock(); }";
        let f = run("any", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_LOCK_ORDER);
        assert!(f[0].message.contains("a.outer") && f[0].message.contains("b.inner"));
    }

    #[test]
    fn lock_order_respected_is_clean() {
        let src = "fn f(s: &S) { let a = s.outer.lock(); let b = s.inner.lock(); }";
        assert!(run("any", src).is_empty());
    }

    #[test]
    fn guard_dies_at_scope_end_and_drop() {
        let ordered = "fn f(s: &S) { { let b = s.inner.lock(); } let a = s.outer.lock(); }";
        assert!(run("any", ordered).is_empty());
        let dropped =
            "fn f(s: &S) { let b = s.inner.lock(); drop(b); let a = s.outer.lock(); }";
        assert!(run("any", dropped).is_empty());
    }

    #[test]
    fn temp_guard_dies_at_semicolon() {
        let src = "fn f(s: &S) { s.inner.lock().push(1); let a = s.outer.lock(); }";
        assert!(run("any", src).is_empty());
    }

    #[test]
    fn if_let_temp_guard_lives_through_block() {
        let src = "fn f(s: &S) { if let Some(x) = s.m.lock().get(0) { s.rpc.call(x); } }";
        let f = run("any", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_LOCK_ACROSS_RPC);
        let after = "fn f(s: &S) { if let Some(x) = s.m.lock().get(0) { use_it(x); } s.rpc.call(1); }";
        assert!(run("any", after).is_empty());
    }

    #[test]
    fn rpc_under_let_guard_fires() {
        let src = "fn f(s: &S) { let g = s.state.lock(); s.net.call_async(g.x); }";
        let f = run("any", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RULE_LOCK_ACROSS_RPC);
        assert!(f[0].message.contains("state"));
    }

    #[test]
    fn indexed_receiver_resolves() {
        let src = "fn f(s: &S) { let g = s.slots[i as usize].lock(); s.x.call(1); }";
        let f = run("any", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("slots"), "{}", f[0].message);
    }

    #[test]
    fn std_lock_banned() {
        let f = run("any", "use std::sync::{Arc, Mutex};");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RULE_STD_LOCK);
        assert!(run("any", "use std::sync::{Arc, atomic::AtomicU64};").is_empty());
        assert_eq!(run("any", "type T = std::sync::RwLock<u8>;").len(), 1);
    }

    #[test]
    fn no_panic_only_in_hot_nontest() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"no\"); }";
        assert_eq!(run("hot", src).len(), 3);
        assert!(run("cold", src).is_empty());
        let test_mod = "#[cfg(test)] mod t { fn f() { x.unwrap(); } }";
        assert!(run("hot", test_mod).is_empty());
        let test_fn = "#[test] fn f() { x.unwrap(); } fn g() { y.unwrap(); }";
        assert_eq!(run("hot", test_fn).len(), 1);
    }

    #[test]
    fn unwrap_or_else_is_fine() {
        assert!(run("hot", "fn f() { x.unwrap_or_else(|| 0); }").is_empty());
    }

    #[test]
    fn allow_annotation_suppresses_with_reason() {
        let src = "fn f() {\n    // lint: allow(no-panic) — startup invariant\n    x.unwrap();\n}";
        let (f, suppressed) = analyze("t.rs", "hot", src, false, &cfg());
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(suppressed, 1);
        let no_reason = "fn f() {\n    // lint: allow(no-panic)\n    x.unwrap();\n}";
        let (f, _) = analyze("t.rs", "hot", no_reason, false, &cfg());
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("missing a reason"));
    }

    #[test]
    fn safety_comment_rules() {
        let bad = "fn f() { unsafe { do_it(); } }";
        let f = run("any", bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RULE_SAFETY);
        let good = "fn f() {\n    // SAFETY: justified here\n    unsafe { do_it(); }\n}";
        assert!(run("any", good).is_empty());
        let one_comment_two_impls =
            "// SAFETY: covers both impls\nunsafe impl Send for X {}\nunsafe impl Sync for X {}\n";
        assert!(run("any", one_comment_two_impls).is_empty());
        // `unsafe fn` declarations are exempt; their bodies’ blocks are not.
        assert!(run("any", "unsafe fn g();").is_empty());
    }

    #[test]
    fn chained_call_binds_value_not_guard() {
        // `let v = m.lock().get(..).cloned();` — the guard is a
        // temporary dying at the `;`, the binding holds a clone.
        let src = "fn f(s: &S) { let v = s.m.lock().get(0).cloned(); s.x.call(v); }";
        assert!(run("any", src).is_empty());
    }

    #[test]
    fn reacquisition_into_mut_binding_tracks() {
        let src = "fn f(s: &S) { let mut g = s.inner.lock(); drop(g); g = s.inner.lock(); let a = s.outer.lock(); }";
        let f = run("any", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_LOCK_ORDER);
    }

    #[test]
    fn multiline_safety_block_covers_following_unsafe() {
        let src = "// SAFETY: a long justification\n// spanning many lines of detail\n// 3\n// 4\n// 5\n// 6\n// 7\n// 8\n// 9\nunsafe impl Send for X {}\n";
        assert!(run("any", src).is_empty());
    }

    #[test]
    fn hot_copy_fires_on_payload_receivers_in_copy_crates() {
        let src = "fn f(e: &Env) { let v = e.payload.to_vec(); send(v); }";
        let f = run("hot", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_NO_HOT_COPY);
        assert!(f[0].message.contains("payload.to_vec()"), "{}", f[0].message);

        // `.clone()` on a payload receiver fires too (refcount clones
        // must be annotated so they stay audited).
        assert_eq!(run("hot", "fn f(r: &R) { ship(r.chunks.clone()); }").len(), 1);
        // Chained through a method: `req.body().clone()` names `body`.
        assert_eq!(run("hot", "fn f(r: &R) { ship(r.body().clone()); }").len(), 1);
        // Non-payload receivers and non-copy crates stay clean.
        assert!(run("hot", "fn f(c: &C) { let c2 = c.config.clone(); }").is_empty());
        assert!(run("cold", "fn f(e: &Env) { let v = e.payload.to_vec(); }").is_empty());
        // Test code is exempt.
        assert!(run("hot", "#[test] fn t() { let v = e.payload.to_vec(); }").is_empty());
    }

    #[test]
    fn hot_copy_allow_annotation_suppresses() {
        let src = "fn f(e: &Env) {\n    // lint: allow(no-hot-copy) — refcount clone\n    ship(e.payload.clone());\n}";
        let (f, suppressed) = analyze("t.rs", "hot", src, false, &cfg());
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn time_under_lock_fires_in_hot_crates() {
        let src = "fn f(s: &S) { let g = s.inner.lock(); let t = Instant::now(); use_it(g, t); }";
        let f = run("hot", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_NO_TIME_UNDER_LOCK);
        assert!(f[0].message.contains("inner"), "{}", f[0].message);

        // Clock read before the guard, or released first: clean.
        assert!(run(
            "hot",
            "fn f(s: &S) { let t = Instant::now(); let g = s.inner.lock(); use_it(g, t); }"
        )
        .is_empty());
        assert!(run(
            "hot",
            "fn f(s: &S) { { let g = s.inner.lock(); } let t = Instant::now(); }"
        )
        .is_empty());
        // Fully qualified paths resolve through the same suffix.
        assert_eq!(
            run(
                "hot",
                "fn f(s: &S) { let g = s.m.lock(); let t = std::time::Instant::now(); }"
            )
            .len(),
            1
        );
        // Cold crates and test code are exempt.
        assert!(run("cold", "fn f(s: &S) { let g = s.m.lock(); Instant::now(); }").is_empty());
        assert!(run("hot", "#[test] fn t() { let g = s.m.lock(); Instant::now(); }").is_empty());
    }

    #[test]
    fn time_under_lock_allow_annotation_suppresses() {
        let src = "fn f(s: &S) {\n    let g = s.m.lock();\n    // lint: allow(no-time-under-lock) — coarse shutdown path\n    let t = Instant::now();\n}";
        let (f, suppressed) = analyze("t.rs", "hot", src, false, &cfg());
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn test_file_flag_disables_panic_rule() {
        let (f, _) = analyze("tests/x.rs", "hot", "fn f() { x.unwrap(); }", true, &cfg());
        assert!(f.is_empty());
    }
}
