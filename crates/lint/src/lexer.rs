//! A minimal, dependency-free Rust lexer.
//!
//! Produces just enough token structure for the analyzer: identifiers,
//! punctuation, literals and lifetimes, with every comment collected on
//! the side (the rules need comments for `// lint: allow(...)`
//! annotations and `// SAFETY:` justifications). The lexer is exact
//! about the hard parts — nested block comments, raw strings with
//! arbitrary `#` fences, byte/char literals vs. lifetimes — because a
//! token-level analyzer is only trustworthy if it never mistakes string
//! contents for code.

/// Token kinds the analyzer distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`self`, `fn`, `unwrap`, ...).
    Ident,
    /// Lifetime (`'a`) or loop label.
    Lifetime,
    /// Numeric literal.
    Num,
    /// String, byte-string, raw-string or char literal.
    Lit,
    /// A single punctuation character (`.`, `{`, `!`, ...).
    Punct,
}

/// One lexed token. `text` borrows from the source.
#[derive(Clone, Copy, Debug)]
pub struct Token<'a> {
    pub kind: TokKind,
    pub text: &'a str,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// A comment with the line span it covers (both 1-based, inclusive).
#[derive(Clone, Debug)]
pub struct Comment<'a> {
    pub text: &'a str,
    pub first_line: u32,
    pub last_line: u32,
}

/// Lexer output: the token stream plus all comments.
pub struct Lexed<'a> {
    pub tokens: Vec<Token<'a>>,
    pub comments: Vec<Comment<'a>>,
}

pub fn lex(src: &str) -> Lexed<'_> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    let count_lines = |s: &str| s.bytes().filter(|&b| b == b'\n').count() as u32;

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                comments.push(Comment {
                    text: &src[start..i],
                    first_line: line,
                    last_line: line,
                });
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let start = i;
                let first_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                comments.push(Comment {
                    text: &src[start..i],
                    first_line,
                    last_line: line,
                });
            }
            b'"' => {
                let (end, lines) = scan_string(src, i);
                tokens.push(Token { kind: TokKind::Lit, text: &src[i..end], line });
                line += lines;
                i = end;
            }
            b'r' | b'b' if is_raw_or_byte_string(bytes, i) => {
                let (end, lines) = scan_raw_or_byte(src, i);
                tokens.push(Token { kind: TokKind::Lit, text: &src[i..end], line });
                line += lines;
                i = end;
            }
            b'\'' => {
                // Lifetime vs char literal: a lifetime is `'` + ident with
                // no closing quote right after one scalar.
                if let Some(end) = scan_char_literal(bytes, i) {
                    let text = &src[i..end];
                    tokens.push(Token { kind: TokKind::Lit, text, line });
                    line += count_lines(text);
                    i = end;
                } else {
                    let mut j = i + 1;
                    while j < bytes.len() && is_ident_continue(bytes[j]) {
                        j += 1;
                    }
                    tokens.push(Token { kind: TokKind::Lifetime, text: &src[i..j], line });
                    i = j;
                }
            }
            _ if is_ident_start(b) => {
                let start = i;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                tokens.push(Token { kind: TokKind::Ident, text: &src[start..i], line });
            }
            _ if b.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && (is_ident_continue(bytes[i]) || bytes[i] == b'.')
                    && !(bytes[i] == b'.' && i + 1 < bytes.len() && bytes[i + 1] == b'.')
                {
                    // Stop a float scan from eating `..` range syntax or a
                    // method call like `0.max(x)`.
                    if bytes[i] == b'.'
                        && i + 1 < bytes.len()
                        && is_ident_start(bytes[i + 1])
                    {
                        break;
                    }
                    i += 1;
                }
                tokens.push(Token { kind: TokKind::Num, text: &src[start..i], line });
            }
            _ => {
                tokens.push(Token { kind: TokKind::Punct, text: &src[i..i + 1], line });
                i += 1;
            }
        }
    }
    Lexed { tokens, comments }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Is `r"`, `r#"`, `b"`, `br"`, `b'`... starting at `i`?
fn is_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let rest = &bytes[i..];
    if rest.len() < 2 {
        return false;
    }
    match rest[0] {
        b'r' => rest[1] == b'"' || rest[1] == b'#',
        b'b' => {
            rest[1] == b'"'
                || rest[1] == b'\''
                || (rest[1] == b'r' && rest.len() > 2 && (rest[2] == b'"' || rest[2] == b'#'))
        }
        _ => false,
    }
}

/// Scans a `"..."` string starting at `i` (which must be the quote).
/// Returns (index one past the closing quote, newlines crossed).
fn scan_string(src: &str, i: usize) -> (usize, u32) {
    let bytes = src.as_bytes();
    let mut j = i + 1;
    let mut lines = 0u32;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\n' => {
                lines += 1;
                j += 1;
            }
            b'"' => return (j + 1, lines),
            _ => j += 1,
        }
    }
    (bytes.len(), lines)
}

/// Scans raw strings / byte strings / byte chars starting at `i`.
fn scan_raw_or_byte(src: &str, i: usize) -> (usize, u32) {
    let bytes = src.as_bytes();
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'\'' {
        // Byte char literal b'x'.
        let end = scan_char_literal(bytes, j).unwrap_or(bytes.len());
        return (end, 0);
    }
    let raw = j < bytes.len() && bytes[j] == b'r';
    if raw {
        j += 1;
    }
    let mut fences = 0usize;
    while j < bytes.len() && bytes[j] == b'#' {
        fences += 1;
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != b'"' {
        // Not actually a string (e.g. `r#struct` raw identifier): emit as
        // starting after the prefix; caller treats it as a 1-char token.
        return (i + 1, 0);
    }
    j += 1;
    let mut lines = 0u32;
    if !raw {
        // Plain b"..." with escapes.
        while j < bytes.len() {
            match bytes[j] {
                b'\\' => j += 2,
                b'\n' => {
                    lines += 1;
                    j += 1;
                }
                b'"' => return (j + 1, lines),
                _ => j += 1,
            }
        }
        return (bytes.len(), lines);
    }
    // Raw: ends at `"` followed by `fences` hashes.
    while j < bytes.len() {
        if bytes[j] == b'\n' {
            lines += 1;
            j += 1;
            continue;
        }
        if bytes[j] == b'"' {
            let have = bytes[j + 1..].iter().take_while(|&&b| b == b'#').count();
            if have >= fences {
                return (j + 1 + fences, lines);
            }
        }
        j += 1;
    }
    (bytes.len(), lines)
}

/// Returns the end index of a char literal at `i` (the opening `'`),
/// or `None` when this is a lifetime.
fn scan_char_literal(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if j >= bytes.len() {
        return None;
    }
    if bytes[j] == b'\\' {
        // Escape: \n, \x7f, \u{...}, \' ...
        j += 2;
        if j <= bytes.len() && j >= 2 && bytes[j - 1] == b'u' {
            // \u{...}
            if j < bytes.len() && bytes[j] == b'{' {
                while j < bytes.len() && bytes[j] != b'}' {
                    j += 1;
                }
                j += 1;
            }
        } else if j - 1 < bytes.len() && bytes[j - 1] == b'x' {
            j += 2;
        }
        if j < bytes.len() && bytes[j] == b'\'' {
            return Some(j + 1);
        }
        return Some(j.min(bytes.len()));
    }
    // Unescaped scalar: `'X'` where X is any single char (possibly
    // multibyte). A lifetime has no closing quote right after.
    let mut k = j + 1;
    while k < bytes.len() && (bytes[k] & 0xC0) == 0x80 {
        k += 1; // skip UTF-8 continuation bytes
    }
    if k < bytes.len() && bytes[k] == b'\'' && bytes[j] != b'\'' {
        // Reject `''` and make sure `'a` followed by non-quote stays a
        // lifetime.
        Some(k + 1)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.to_string())
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let src = r##"
            let a = "x.lock() // not real";
            // real comment .lock()
            let b = r#"also "not" real .unwrap()"#;
            /* block /* nested */ .expect( */
            c.lock();
        "##;
        let lexed = lex(src);
        let locks: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident && t.text == "lock")
            .collect();
        assert_eq!(locks.len(), 1, "only the real .lock() outside literals");
        assert_eq!(lexed.comments.len(), 2);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }";
        let lexed = lex(src);
        let lifetimes: Vec<_> =
            lexed.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        let lits: Vec<_> = lexed.tokens.iter().filter(|t| t.kind == TokKind::Lit).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(lits.len(), 2);
    }

    #[test]
    fn lines_are_tracked() {
        let src = "a\nb\n  c";
        let lexed = lex(src);
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn multiline_string_advances_lines() {
        let src = "let s = \"one\ntwo\";\nafter";
        let lexed = lex(src);
        let after = lexed.tokens.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 3);
    }

    #[test]
    fn idents_include_keywords() {
        assert_eq!(idents("unsafe fn x"), vec!["unsafe", "fn", "x"]);
    }
}
