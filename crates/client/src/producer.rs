//! The producer client (paper Fig. 6).
//!
//! "Each producer implements two threads that communicate through shared
//! memory": the *Source* thread (the caller of [`Producer::send`])
//! appends records to per-streamlet chunk buffers; the *Requests* thread
//! gathers filled chunks — or chunks older than the linger timeout — into
//! one request per broker and pushes them over parallel synchronous RPCs.
//! Sealed chunks flow through a bounded queue, so a fast source is
//! back-pressured by the cluster exactly like a fixed chunk pool would.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{self, Receiver, Sender};
use kera_common::copymode::copy_data_plane;
use kera_common::ids::{NodeId, ProducerId, StreamId};
use kera_common::metrics::{Counter, LatencyHistogram, ThroughputMeter};
use kera_common::{KeraError, Result};
use kera_rpc::RpcClient;
use kera_wire::chunk::{BufferPool, ChunkBuilder};
use kera_wire::frames::OpCode;
use kera_wire::messages::{ProduceRequest, ProduceResponse, StreamMetadata};
use kera_wire::record::Record;
use parking_lot::{Mutex, RwLock};

use crate::metadata::MetadataClient;
use crate::partitioner::Partitioner;

/// Producer configuration (the knobs of §V-A).
#[derive(Clone, Debug)]
pub struct ProducerConfig {
    pub id: ProducerId,
    /// Chunk capacity in bytes (header included).
    pub chunk_size: usize,
    /// Maximum bytes of chunks per broker request.
    pub request_max_bytes: usize,
    /// `linger.ms`: how long a non-full chunk may wait before being sent.
    pub linger: Duration,
    pub call_timeout: Duration,
    pub partitioner: Partitioner,
    /// Bound of the sealed-chunk queue (backpressure depth).
    pub queue_capacity: usize,
    /// Produce retries before giving up on a request.
    pub max_retries: u32,
    /// Outstanding requests per broker ("the number of parallel producer
    /// requests", paper §II-B). 1 = one synchronous request per broker,
    /// the paper's evaluation setting.
    pub pipeline: usize,
    /// Cap on bytes in flight across all brokers (`0` = unbounded, the
    /// pre-quota behaviour). A broker `window_hint` tightens this
    /// further at runtime.
    pub window_bytes: usize,
    /// Cap on requests in flight across all brokers (`0` = unbounded).
    pub window_requests: usize,
    /// Honor broker `Throttled { retry_after, .. }` hints with jittered
    /// backoff (polite mode, the default). `false` treats throttles
    /// like any other error — immediate retries, no pacing — which is
    /// exactly what an abusive client does; chaos drills flip this.
    pub honor_throttle: bool,
}

impl Default for ProducerConfig {
    fn default() -> Self {
        Self {
            id: ProducerId(0),
            chunk_size: 16 * 1024,
            request_max_bytes: 1 << 20,
            linger: Duration::from_millis(1),
            call_timeout: Duration::from_secs(10),
            partitioner: Partitioner::RoundRobin,
            queue_capacity: 1000,
            max_retries: 3,
            pipeline: 1,
            window_bytes: 0,
            window_requests: 0,
            honor_throttle: true,
        }
    }
}

/// In-flight window accounting plus broker throttle state, shared by
/// the requests thread (grouping/sending) and `complete` (release and
/// throttle bookkeeping). Guarded by the `client.window` lock class;
/// never held across an RPC.
struct WindowState {
    /// Bytes of requests on the wire (request bodies).
    inflight_bytes: u64,
    /// Requests on the wire.
    inflight_requests: u32,
    /// Latest broker-suggested window (`0` = no suggestion yet); the
    /// effective byte window is the tighter of this and `window_bytes`.
    hint_bytes: u64,
    /// Brokers to leave alone until the given instant (throttle pauses).
    throttle_until: HashMap<NodeId, Instant>,
    /// SplitMix64 state for backoff jitter (deterministic per producer).
    rng: u64,
}

impl WindowState {
    /// Next jitter draw in `[0, bound)` (`ZERO` if `bound` is zero).
    fn jitter(&mut self, bound: Duration) -> Duration {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let nanos = bound.as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(z % nanos)
    }
}

struct PendingChunk {
    builder: ChunkBuilder,
    /// When the first record of the current chunk arrived (linger clock).
    since: Option<Instant>,
}

struct StreamRoute {
    metadata: StreamMetadata,
    counter: AtomicU64,
    pending: Vec<Mutex<PendingChunk>>,
}

struct SealedChunk {
    broker: NodeId,
    records: u32,
    bytes: Bytes,
}

struct Shared {
    cfg: ProducerConfig,
    rpc: RpcClient,
    routes: RwLock<HashMap<StreamId, Arc<StreamRoute>>>,
    ready_tx: Sender<SealedChunk>,
    shutdown: AtomicBool,
    /// With `shutdown`: drop queued chunks instead of draining them
    /// (fast teardown for benchmarks; `close()` drains, `Drop` discards).
    discard: AtomicBool,
    /// Chunks sealed but not yet acknowledged (flush barrier).
    outstanding: AtomicU64,
    /// Per-chunk sequence tags (broker-side retry dedup). Seeded from the
    /// wall clock so a restarted producer reusing an id cannot collide
    /// with tags its predecessor left in broker replay caches.
    next_tag: AtomicU64,
    /// Records acknowledged by brokers.
    pub acked: ThroughputMeter,
    /// Request latency, send → ack
    /// (`kera.client.request_latency{producer=<id>}`).
    pub request_latency: Arc<LatencyHistogram>,
    /// Requests that exhausted retries
    /// (`kera.client.failed_requests{producer=<id>}`).
    pub failed_requests: Arc<Counter>,
    /// Broker throttle responses honored
    /// (`kera.client.throttles{producer=<id>}`).
    pub throttled: Arc<Counter>,
    /// In-flight window + throttle pacing (lock class `client.window`).
    window: Mutex<WindowState>,
    /// Chunk buffers cycle through here: builders draw fresh buffers,
    /// the requests thread returns them once a chunk has been packed
    /// into a request body.
    pool: Arc<BufferPool>,
    /// Pool health exported to the node registry
    /// (`kera.client.pool_{hits,misses,outstanding}{producer=<id>}`);
    /// refreshed by the requests thread, so a registry snapshot taken at
    /// any moment sees near-current values.
    pool_hits: Arc<kera_obs::Gauge>,
    pool_misses: Arc<kera_obs::Gauge>,
    pool_outstanding: Arc<kera_obs::Gauge>,
}

impl Shared {
    /// Publishes the buffer pool's counters as gauges. A miss means a
    /// chunk allocation fell through the free-list (pool exhausted or
    /// mismatched capacity) — a rising miss rate is the first sign the
    /// producer's pool is undersized for its queue depth.
    fn export_pool_stats(&self) {
        let s = self.pool.stats();
        self.pool_hits.set(s.hits.min(i64::MAX as u64) as i64);
        self.pool_misses.set(s.misses.min(i64::MAX as u64) as i64);
        self.pool_outstanding.set(s.outstanding);
    }
}

/// A producer client.
pub struct Producer {
    shared: Arc<Shared>,
    requests_thread: Option<std::thread::JoinHandle<()>>,
}

impl Producer {
    /// Connects a producer for `streams` (metadata is resolved eagerly).
    pub fn new(
        meta: &MetadataClient,
        streams: &[StreamId],
        cfg: ProducerConfig,
    ) -> Result<Producer> {
        let (ready_tx, ready_rx) = channel::bounded(cfg.queue_capacity.max(1));
        // Enough pooled buffers to cover every pending slot plus a
        // queue's worth of sealed chunks, bounded so an oversized
        // queue_capacity cannot pin unbounded memory.
        let pool = BufferPool::new(cfg.chunk_size, cfg.queue_capacity.clamp(8, 256));
        let mut routes = HashMap::new();
        for &s in streams {
            let md = meta.metadata(s)?;
            routes.insert(s, Arc::new(Self::route_for(&cfg, &pool, md)));
        }
        let rpc = meta.rpc().clone();
        // Client metrics live in the node's registry, labelled by
        // producer id so co-hosted producers stay distinguishable.
        let pid = cfg.id.raw().to_string();
        let request_latency =
            rpc.obs().registry().histogram("kera.client.request_latency", &[("producer", &pid)]);
        let failed_requests =
            rpc.obs().registry().counter("kera.client.failed_requests", &[("producer", &pid)]);
        let throttled =
            rpc.obs().registry().counter("kera.client.throttles", &[("producer", &pid)]);
        let pool_hits =
            rpc.obs().registry().gauge("kera.client.pool_hits", &[("producer", &pid)]);
        let pool_misses =
            rpc.obs().registry().gauge("kera.client.pool_misses", &[("producer", &pid)]);
        let pool_outstanding =
            rpc.obs().registry().gauge("kera.client.pool_outstanding", &[("producer", &pid)]);
        let window = Mutex::named("client.window", WindowState {
            inflight_bytes: 0,
            inflight_requests: 0,
            hint_bytes: 0,
            throttle_until: HashMap::new(),
            rng: 0x5EED_0000 ^ u64::from(cfg.id.raw()),
        });
        let shared = Arc::new(Shared {
            cfg,
            rpc,
            routes: RwLock::new(routes),
            ready_tx,
            shutdown: AtomicBool::new(false),
            discard: AtomicBool::new(false),
            outstanding: AtomicU64::new(0),
            next_tag: AtomicU64::new(
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(1),
            ),
            acked: ThroughputMeter::new(),
            request_latency,
            failed_requests,
            throttled,
            window,
            pool,
            pool_hits,
            pool_misses,
            pool_outstanding,
        });
        let requests_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("producer-req-{}", shared.cfg.id.raw()))
                .spawn(move || requests_loop(shared, ready_rx))
                .expect("spawn producer requests thread")
        };
        Ok(Producer { shared, requests_thread: Some(requests_thread) })
    }

    fn route_for(cfg: &ProducerConfig, pool: &Arc<BufferPool>, metadata: StreamMetadata) -> StreamRoute {
        let pending = (0..metadata.config.streamlets)
            .map(|sl| {
                Mutex::new(PendingChunk {
                    builder: ChunkBuilder::with_pool(
                        Arc::clone(pool),
                        cfg.id,
                        metadata.config.id,
                        kera_common::ids::StreamletId(sl),
                    ),
                    since: None,
                })
            })
            .collect();
        StreamRoute { metadata, counter: AtomicU64::new(0), pending }
    }

    /// Appends a non-keyed record (the paper's workload shape).
    pub fn send(&self, stream: StreamId, value: &[u8]) -> Result<()> {
        self.send_record(stream, &Record::value_only(value))
    }

    /// Appends a keyed record (partitioned by its first key under
    /// [`Partitioner::ByKey`]).
    pub fn send_keyed(&self, stream: StreamId, key: &[u8], value: &[u8]) -> Result<()> {
        let rec = Record { version: None, timestamp: None, keys: vec![key], value };
        self.send_record(stream, &rec)
    }

    /// Appends an arbitrary record.
    pub fn send_record(&self, stream: StreamId, record: &Record<'_>) -> Result<()> {
        if self.shared.shutdown.load(Ordering::Relaxed) {
            return Err(KeraError::ShuttingDown);
        }
        let route = self
            .shared
            .routes
            .read()
            .get(&stream)
            .cloned()
            .ok_or(KeraError::UnknownStream(stream))?;
        let counter = route.counter.fetch_add(1, Ordering::Relaxed);
        let streamlet = self.shared.cfg.partitioner.pick(
            route.metadata.config.streamlets,
            counter,
            record.keys.first().copied(),
        );
        let slot = &route.pending[streamlet.raw() as usize];

        let mut p = slot.lock();
        if p.builder.append(record) {
            if p.since.is_none() {
                p.since = Some(Instant::now());
            }
        } else {
            if p.builder.is_empty() {
                return Err(KeraError::ChunkTooLarge {
                    chunk: record.encoded_len(),
                    segment: self.shared.cfg.chunk_size,
                });
            }
            // Seal the full chunk, rearm the builder, retry.
            let sealed = seal_pending(&self.shared, &route, streamlet.raw(), &mut p)?;
            if !p.builder.append(record) {
                return Err(KeraError::ChunkTooLarge {
                    chunk: record.encoded_len(),
                    segment: self.shared.cfg.chunk_size,
                });
            }
            p.since = Some(Instant::now());
            // Enqueue while still holding the slot lock: queue order must
            // equal per-slot seal order, or a linger-sealed successor can
            // overtake this chunk and invert the slot's record order on
            // the broker. Blocking here is the backpressure path; the
            // linger scan uses try_lock, so the requests thread can never
            // deadlock against a sender parked on a full queue.
            self.shared.outstanding.fetch_add(1, Ordering::AcqRel);
            self.shared
                .ready_tx
                .send(sealed)
                .map_err(|_| KeraError::ShuttingDown)?;
        }
        Ok(())
    }

    /// Seals all non-empty chunks and blocks until everything queued has
    /// been acknowledged (or failed terminally).
    pub fn flush(&self) -> Result<()> {
        let routes: Vec<Arc<StreamRoute>> = self.shared.routes.read().values().cloned().collect();
        for route in routes {
            for sl in 0..route.metadata.config.streamlets {
                let mut p = route.pending[sl as usize].lock();
                if !p.builder.is_empty() {
                    // Seal + enqueue under the slot lock (see send_record:
                    // queue order must equal per-slot seal order).
                    let sealed = seal_pending(&self.shared, &route, sl, &mut p)?;
                    self.shared.outstanding.fetch_add(1, Ordering::AcqRel);
                    self.shared.ready_tx.send(sealed).map_err(|_| KeraError::ShuttingDown)?;
                }
            }
        }
        while self.shared.outstanding.load(Ordering::Acquire) > 0 {
            if self.shared.shutdown.load(Ordering::Relaxed) {
                return Err(KeraError::ShuttingDown);
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        Ok(())
    }

    /// Records acknowledged per second since
    /// [`ThroughputMeter::start_window`]; the harness reads this.
    pub fn metrics(&self) -> &ThroughputMeter {
        &self.shared.acked
    }

    pub fn request_latency(&self) -> &LatencyHistogram {
        &self.shared.request_latency
    }

    pub fn failed_requests(&self) -> u64 {
        self.shared.failed_requests.get()
    }

    /// Broker throttle responses this producer has honored so far.
    pub fn throttles(&self) -> u64 {
        self.shared.throttled.get()
    }

    /// Flushes, stops the requests thread and joins it.
    pub fn close(mut self) -> Result<()> {
        let flush_result = self.flush();
        self.stop(false);
        flush_result
    }

    /// Fast teardown: queued-but-unsent chunks are discarded (their
    /// records were never acknowledged). Benchmark harnesses use this so
    /// a slow cluster cannot stretch teardown indefinitely.
    pub fn abort(mut self) {
        self.stop(true);
    }

    /// Orderly close used by [`Producer::close`]: everything queued is
    /// drained and acknowledged before the requests thread exits.
    fn stop(&mut self, discard: bool) {
        self.shared.discard.store(discard, Ordering::SeqCst);
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.requests_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Producer {
    fn drop(&mut self) {
        // Dropping without close() is the abort path.
        self.stop(true);
    }
}

/// Seals the slot's chunk (caller holds the slot lock) and rearms the
/// builder. Resolving the broker here keeps the requests thread free of
/// metadata lookups.
fn seal_pending(
    shared: &Shared,
    route: &StreamRoute,
    streamlet: u32,
    p: &mut PendingChunk,
) -> Result<SealedChunk> {
    let records = p.builder.record_count();
    let bytes = p.builder.seal_with_sequence(shared.next_tag.fetch_add(1, Ordering::Relaxed));
    let sl = kera_common::ids::StreamletId(streamlet);
    p.builder.reset(shared.cfg.id, route.metadata.config.id, sl);
    p.since = None;
    let broker = route
        .metadata
        .broker_of(sl)
        .ok_or(KeraError::UnknownStreamlet(route.metadata.config.id, sl))?;
    Ok(SealedChunk { broker, records, bytes })
}

/// The Requests thread: drains sealed chunks, enforces the linger
/// timeout, groups chunks into one request per broker and keeps up to
/// `pipeline` requests in flight per broker.
fn requests_loop(shared: Arc<Shared>, ready_rx: Receiver<SealedChunk>) {
    // Chunks carried over because their broker was at its pipeline limit
    // or its request was full.
    let mut backlog: Vec<SealedChunk> = Vec::new();
    // FIFO of in-flight requests per broker.
    let mut inflight: HashMap<NodeId, std::collections::VecDeque<InFlight>> = HashMap::new();
    // The linger scan walks every pending slot; rate-limit it.
    let mut last_linger_scan = Instant::now();
    loop {
        // Reap whatever completed without blocking.
        reap(&shared, &mut inflight, false);
        shared.export_pool_stats();

        if shared.shutdown.load(Ordering::SeqCst) {
            if shared.discard.load(Ordering::SeqCst) {
                // Fast teardown: wait out what is already on the wire,
                // drop everything still queued.
                reap(&shared, &mut inflight, true);
                let mut dropped = backlog.len() as u64;
                while ready_rx.try_recv().is_ok() {
                    dropped += 1;
                }
                shared.outstanding.fetch_sub(dropped, Ordering::AcqRel);
                return;
            }
            if backlog.is_empty()
                && ready_rx.is_empty()
                && inflight.values().all(|q| q.is_empty())
                && shared.outstanding.load(Ordering::Acquire) == 0
            {
                return;
            }
        }

        let mut batch = std::mem::take(&mut backlog);
        while let Ok(c) = ready_rx.try_recv() {
            batch.push(c);
        }
        // Enforce linger on idle chunks (at most every linger/2: the
        // scan walks every pending slot of every stream).
        let scan_interval = shared.cfg.linger.max(Duration::from_micros(200)) / 2;
        if last_linger_scan.elapsed() >= scan_interval {
            scan_linger(&shared, &ready_rx, &mut batch);
            last_linger_scan = Instant::now();
        }

        // Window snapshot for this round: how many bytes/requests may
        // still go on the wire, and which brokers asked to be left
        // alone. The lock is released before any RPC work.
        let now = Instant::now();
        let (mut byte_budget, mut req_budget, paused) = {
            let mut w = shared.window.lock();
            w.throttle_until.retain(|_, until| *until > now);
            let paused: Vec<NodeId> = w.throttle_until.keys().copied().collect();
            let cfg_window = shared.cfg.window_bytes as u64;
            let eff = match (cfg_window, w.hint_bytes) {
                (0, 0) => None,
                (0, h) => Some(h),
                (b, 0) => Some(b),
                (b, h) => Some(b.min(h)),
            };
            let byte_budget = eff.map(|e| e.saturating_sub(w.inflight_bytes));
            let req_budget = match shared.cfg.window_requests as u32 {
                0 => None,
                r => Some(r.saturating_sub(w.inflight_requests)),
            };
            (byte_budget, req_budget, paused)
        };

        // Group into one request per broker, respecting request_max_bytes,
        // the pipeline bound and the in-flight window; overflow returns
        // to the backlog. Chunks are collected as shared slices — the
        // single copy into a contiguous request body happens at encode.
        let mut per_broker: HashMap<NodeId, (Vec<Bytes>, usize, u32, u32)> = HashMap::new();
        // Brokers with a chunk already sent back to the backlog this
        // round. Once one chunk for a broker is held back, every later
        // chunk for it must be held back too: a smaller (linger-sealed)
        // successor slipping into the request ahead of a full chunk of
        // the same slot would invert the slot's record order on the
        // broker.
        let mut held: Vec<NodeId> = Vec::new();
        let pipeline = shared.cfg.pipeline.max(1);
        for c in batch {
            if paused.contains(&c.broker) || held.contains(&c.broker) {
                backlog.push(c);
                continue;
            }
            if inflight.get(&c.broker).map(|q| q.len()).unwrap_or(0) >= pipeline
                && !per_broker.contains_key(&c.broker)
            {
                held.push(c.broker);
                backlog.push(c);
                continue;
            }
            if byte_budget.is_some_and(|b| (c.bytes.len() as u64) > b)
                || (!per_broker.contains_key(&c.broker) && req_budget == Some(0))
            {
                held.push(c.broker);
                backlog.push(c);
                continue;
            }
            let fresh_entry = !per_broker.contains_key(&c.broker);
            let entry =
                per_broker.entry(c.broker).or_insert_with(|| (Vec::new(), 0, 0, 0));
            if entry.2 > 0 && entry.1 + c.bytes.len() > shared.cfg.request_max_bytes {
                held.push(c.broker);
                backlog.push(c);
                continue;
            }
            if let Some(b) = byte_budget.as_mut() {
                *b -= c.bytes.len() as u64;
            }
            if fresh_entry {
                if let Some(r) = req_budget.as_mut() {
                    *r -= 1;
                }
            }
            entry.1 += c.bytes.len();
            entry.0.push(c.bytes);
            entry.2 += 1;
            entry.3 += c.records;
        }

        let sent_any = !per_broker.is_empty();
        let pipeline_one = pipeline == 1;
        for (broker, (chunks, chunk_bytes, chunk_count, records)) in per_broker {
            let payload = if copy_data_plane() {
                // lint: allow(no-hot-copy) — the seed's double pack
                // (gather body, then struct encode copies it again),
                // kept reachable behind KERA_COPY_DATA_PLANE=1 for
                // the bench trajectory.
                let mut body = Vec::with_capacity(chunk_bytes);
                for c in &chunks {
                    body.extend_from_slice(c);
                }
                ProduceRequest {
                    producer: shared.cfg.id,
                    recovery: false,
                    chunk_count,
                    chunks: Bytes::from(body),
                }
                .encode()
            } else {
                ProduceRequest::encode_chunks(shared.cfg.id, false, &chunks)
            };
            // The sealed chunk buffers have been packed into the request
            // body; hand them back to the pool for the builders to reuse.
            for c in chunks {
                shared.pool.release(c);
            }
            {
                let mut w = shared.window.lock();
                w.inflight_bytes += chunk_bytes as u64;
                w.inflight_requests += 1;
            }
            // lint: allow(no-hot-copy) — refcount clone; retry keeps the other handle
            let call = shared.rpc.call_async(broker, OpCode::Produce, payload.clone());
            inflight.entry(broker).or_default().push_back(InFlight {
                call,
                payload,
                chunk_bytes: chunk_bytes as u64,
                broker,
                chunks: chunk_count,
                records,
                started: Instant::now(),
            });
        }

        if sent_any && pipeline_one {
            // The paper's mode: one synchronous request per broker —
            // block until every in-flight request resolves (group
            // commit on the broker consolidates whatever queues up
            // meanwhile). This keeps the requests thread cold between
            // rounds instead of polling.
            reap(&shared, &mut inflight, true);
        } else if !sent_any {
            let window = shared.cfg.linger.max(Duration::from_micros(200)) / 2;
            // Nothing new could be shipped. If requests are in flight,
            // block on the *oldest* one — its completion is what unblocks
            // the next send (pipeline = 1 is the paper's mode, so this is
            // the common path under load). Otherwise wait for new chunks.
            let oldest = inflight
                .iter()
                .filter(|(_, q)| !q.is_empty())
                .min_by_key(|(_, q)| q.front().unwrap().started)
                .map(|(&b, _)| b);
            match oldest {
                Some(broker) => {
                    let q = inflight.get_mut(&broker).unwrap();
                    let front = q.front_mut().unwrap();
                    if let Some(result) = front.call.poll_wait(window) {
                        let inf = q.pop_front().unwrap();
                        complete(&shared, inf, result);
                    }
                }
                None => match ready_rx.recv_timeout(window) {
                    Ok(c) => backlog.push(c), // processed on the next round
                    Err(channel::RecvTimeoutError::Timeout) => {}
                    Err(channel::RecvTimeoutError::Disconnected) => return,
                },
            }
        }
    }
}

/// One produce request on the wire.
struct InFlight {
    call: kera_rpc::node::PendingCall,
    /// The encoded request body, retained verbatim for retries (dedup
    /// tags make re-sends exactly-once on the broker).
    payload: Bytes,
    /// Chunk bytes inside the request (window accounting).
    chunk_bytes: u64,
    broker: NodeId,
    chunks: u32,
    records: u32,
    started: Instant,
}

/// Completes finished requests (front-of-queue order per broker). With
/// `block`, waits for every in-flight request to resolve.
fn reap(shared: &Shared, inflight: &mut HashMap<NodeId, std::collections::VecDeque<InFlight>>, block: bool) {
    for queue in inflight.values_mut() {
        while let Some(front) = queue.front() {
            if !block && !front.call.is_ready() {
                break;
            }
            let mut inf = queue.pop_front().unwrap();
            let result = inf
                .call
                .poll_wait(shared.cfg.call_timeout)
                .unwrap_or(Err(KeraError::Timeout { op: "produce" }));
            complete(shared, inf, result);
        }
    }
}

/// Upper bound on honored throttle retries per request: at the broker's
/// maximum retry hint this is tens of seconds of cooperation before the
/// request is declared failed.
const MAX_THROTTLE_RETRIES: u32 = 64;

/// Applies one resolved request: retries on failure (honoring broker
/// throttle hints with jittered backoff in polite mode), records
/// metrics, releases the window and the flush barrier.
fn complete(shared: &Shared, inf: InFlight, mut result: Result<Bytes>) {
    let mut attempts = 0;
    let mut throttle_retries = 0;
    loop {
        let aborting =
            shared.shutdown.load(Ordering::SeqCst) && shared.discard.load(Ordering::SeqCst);
        let again = match &result {
            Ok(_) => false,
            // A hard refusal: the broker is out of admission memory or
            // has evicted this session. Hammering it with immediate
            // retries is exactly what admission control punishes.
            Err(KeraError::Rejected { .. }) => false,
            Err(KeraError::Throttled { retry_after, window_hint })
                if shared.cfg.honor_throttle =>
            {
                if aborting || throttle_retries >= MAX_THROTTLE_RETRIES {
                    false
                } else {
                    throttle_retries += 1;
                    shared.throttled.inc();
                    // Record the hint, pause this broker for new sends,
                    // and sleep retry_after plus jitter before the
                    // retry (dedup tags make it exactly-once).
                    let pause = {
                        let mut w = shared.window.lock();
                        if *window_hint > 0 {
                            w.hint_bytes = *window_hint;
                        }
                        let jitter = w.jitter(*retry_after / 2 + Duration::from_micros(100));
                        let pause = *retry_after + jitter;
                        w.throttle_until.insert(inf.broker, Instant::now() + pause);
                        pause
                    };
                    std::thread::sleep(pause);
                    true
                }
            }
            Err(_) => {
                // Blind same-payload retry (throttles land here too for
                // abusive `honor_throttle = false` clients).
                if aborting || attempts >= shared.cfg.max_retries {
                    false
                } else {
                    attempts += 1;
                    true
                }
            }
        };
        if !again {
            break;
        }
        // Chunk sequence tags make retries exactly-once on the broker
        // side (per-slot replay caches); re-send verbatim.
        result = shared.rpc.call(
            inf.broker,
            OpCode::Produce,
            // lint: allow(no-hot-copy) — refcount clone for the retransmit
            inf.payload.clone(),
            shared.cfg.call_timeout,
        );
    }
    match result {
        Ok(payload) => {
            if let Ok(resp) = ProduceResponse::decode(&payload) {
                debug_assert_eq!(resp.acks.len() as u32, inf.chunks);
            }
            shared.acked.record(u64::from(inf.records), inf.chunk_bytes);
            shared.request_latency.record(inf.started.elapsed());
        }
        Err(_) => {
            shared.failed_requests.inc();
        }
    }
    {
        let mut w = shared.window.lock();
        w.inflight_bytes = w.inflight_bytes.saturating_sub(inf.chunk_bytes);
        w.inflight_requests = w.inflight_requests.saturating_sub(1);
    }
    shared.outstanding.fetch_sub(u64::from(inf.chunks), Ordering::AcqRel);
}

/// Seals chunks whose linger expired (requests thread only).
///
/// Linger-sealed chunks bypass the ready queue and enter `batch`
/// directly, so ordering needs care: a slot's earlier chunks may still
/// be in the queue (enqueued after this round's drain). Holding the slot
/// lock while draining the queue *before* sealing restores the
/// invariant — seal+enqueue is atomic under the slot lock on the source
/// side, so once the lock is held, every earlier chunk of the slot is
/// either already in `batch` or picked up by the drain below, and the
/// linger chunk lands strictly after all of them.
fn scan_linger(shared: &Shared, ready_rx: &Receiver<SealedChunk>, batch: &mut Vec<SealedChunk>) {
    let routes: Vec<Arc<StreamRoute>> = shared.routes.read().values().cloned().collect();
    for route in routes {
        for sl in 0..route.metadata.config.streamlets {
            // try_lock: a held lock is a source thread inside its
            // seal+enqueue critical section (possibly parked on a full
            // queue that only this thread drains) — skip the slot and
            // catch it on the next scan instead of risking a deadlock.
            let Some(mut p) = route.pending[sl as usize].try_lock() else {
                continue;
            };
            let expired = p
                .since
                .map(|s| s.elapsed() >= shared.cfg.linger)
                .unwrap_or(false);
            if expired && !p.builder.is_empty() {
                while let Ok(c) = ready_rx.try_recv() {
                    batch.push(c);
                }
                if let Ok(sealed) = seal_pending(shared, &route, sl, &mut p) {
                    shared.outstanding.fetch_add(1, Ordering::AcqRel);
                    batch.push(sealed);
                }
            }
        }
    }
}
