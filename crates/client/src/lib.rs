//! Producer and consumer client stacks (paper Figs. 6–7).
//!
//! Both clients follow the paper's two-thread architecture:
//!
//! - the **producer** appends records into per-streamlet chunk buffers on
//!   the caller's thread (the *Source* thread) while a *Requests* thread
//!   batches sealed chunks into one request per broker and pushes them
//!   over parallel synchronous RPCs;
//! - the **consumer**'s *Requests* thread pulls one chunk per streamlet
//!   slot per broker request into a bounded chunk cache, while the caller
//!   (the *Source* thread) iterates records out of cached chunks.
//!
//! The same clients drive both the KerA cluster and the Kafka-style
//! baseline — they speak the shared wire protocol and only see streams,
//! partitions and chunks.

pub mod consumer;
pub mod metadata;
pub mod partitioner;
pub mod producer;

pub use consumer::{Consumer, ConsumerConfig};
pub use metadata::MetadataClient;
pub use partitioner::Partitioner;
pub use producer::{Producer, ProducerConfig};
