//! The consumer client (paper Fig. 7).
//!
//! "The Requests thread builds one request for each broker and pulls one
//! chunk for each streamlet associated to the consumer. The Source thread
//! consumes in-order one chunk per streamlet: it iterates the chunk and
//! creates records." The chunk cache between the two threads is bounded
//! ("each client has a cache of up to 1000 chunks"), so a slow source
//! back-pressures fetching.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{self, Receiver, Sender};
use kera_common::ids::{ConsumerId, NodeId, StreamId, StreamletId};
use kera_common::metrics::ThroughputMeter;
use kera_common::Result;
use kera_rpc::RpcClient;
use kera_wire::chunk::{ChunkIter, ChunkView};
use kera_wire::cursor::SlotCursor;
use kera_wire::frames::OpCode;
use kera_wire::messages::{FetchEntry, FetchRequest, FetchResponse};
use kera_wire::record::RecordView;

use crate::metadata::MetadataClient;

/// Result alias for seek-based subscription building.
pub type SeekResult = Result<Subscription>;

/// Consumer configuration.
#[derive(Clone, Debug)]
pub struct ConsumerConfig {
    pub id: ConsumerId,
    /// Max bytes pulled per (streamlet, slot) per request — the paper
    /// pulls "up to one chunk per stream/partition", so set this to the
    /// producer's chunk size for paper-faithful runs.
    pub fetch_max_bytes: u32,
    /// Bound of the chunk cache between the two threads.
    pub cache_capacity: usize,
    pub call_timeout: Duration,
    /// Pause when a full round returned nothing (consumer caught up).
    pub idle_backoff: Duration,
}

impl Default for ConsumerConfig {
    fn default() -> Self {
        Self {
            id: ConsumerId(0),
            fetch_max_bytes: 16 * 1024,
            cache_capacity: 1000,
            call_timeout: Duration::from_secs(10),
            idle_backoff: Duration::from_micros(200),
        }
    }
}

/// A saved consumption position (see [`Consumer::positions`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CursorPosition {
    pub stream: StreamId,
    pub streamlet: StreamletId,
    pub slot: u32,
    pub cursor: SlotCursor,
}

/// What the consumer subscribes to.
#[derive(Clone, Debug)]
pub struct Subscription {
    pub stream: StreamId,
    /// `None` = all streamlets of the stream.
    pub streamlets: Option<Vec<StreamletId>>,
    /// Starting positions ("consumers can read at any offset", paper
    /// §I). Slots without an entry start at the beginning.
    pub start: Vec<CursorPosition>,
}

impl Subscription {
    pub fn whole_stream(stream: StreamId) -> Self {
        Self { stream, streamlets: None, start: Vec::new() }
    }

    /// Subscribes to a whole stream starting every slot at logical
    /// record offset `record_offset` ("consumers can read at any
    /// offset"): each slot's cursor is resolved through the brokers'
    /// lightweight offset indexes.
    pub fn from_offset(
        meta: &MetadataClient,
        stream: StreamId,
        record_offset: u64,
    ) -> crate::consumer::SeekResult {
        let md = meta.metadata(stream)?;
        let mut start = Vec::new();
        for sl in 0..md.config.streamlets {
            let streamlet = StreamletId(sl);
            let broker = md
                .broker_of(streamlet)
                .ok_or(kera_common::KeraError::UnknownStreamlet(stream, streamlet))?;
            for slot in 0..md.config.active_groups {
                let req = kera_wire::messages::SeekRequest {
                    stream,
                    streamlet,
                    slot,
                    record_offset,
                };
                let payload = meta.rpc().call(
                    broker,
                    OpCode::Seek,
                    req.encode(),
                    Duration::from_secs(10),
                )?;
                let resp = kera_wire::messages::SeekResponse::decode(&payload)?;
                if resp.found {
                    start.push(CursorPosition { stream, streamlet, slot, cursor: resp.cursor });
                }
            }
        }
        Ok(Self { stream, streamlets: None, start })
    }

    /// Resumes a stream from positions previously saved with
    /// [`Consumer::positions`].
    pub fn resume(stream: StreamId, positions: Vec<CursorPosition>) -> Self {
        Self { stream, streamlets: None, start: positions }
    }
}

/// One cache entry: data fetched for one (streamlet, slot) — possibly
/// several chunks packed back-to-back.
#[derive(Clone, Debug)]
pub struct FetchedBatch {
    pub stream: StreamId,
    pub streamlet: StreamletId,
    pub slot: u32,
    pub data: Bytes,
}

impl FetchedBatch {
    /// Iterates the chunks in this batch.
    pub fn chunks(&self) -> ChunkIter<'_> {
        ChunkIter::new(&self.data)
    }

    /// Counts records, validating chunk framing.
    pub fn record_count(&self) -> Result<u64> {
        let mut n = 0;
        for chunk in self.chunks() {
            n += u64::from(chunk?.header().record_count);
        }
        Ok(n)
    }

    /// Visits every record in order.
    pub fn for_each_record(
        &self,
        mut f: impl FnMut(&ChunkView<'_>, RecordView<'_>),
    ) -> Result<()> {
        for chunk in self.chunks() {
            let chunk = chunk?;
            for rec in chunk.records() {
                f(&chunk, rec?);
            }
        }
        Ok(())
    }
}

struct FetchState {
    broker: NodeId,
    stream: StreamId,
    streamlet: StreamletId,
    slot: u32,
    cursor: SlotCursor,
}

type SharedStates = Arc<parking_lot::Mutex<Vec<FetchState>>>;

/// A consumer client.
pub struct Consumer {
    cache_rx: Receiver<FetchedBatch>,
    shared: Arc<Shared>,
    states: SharedStates,
    requests_thread: Option<std::thread::JoinHandle<()>>,
    /// Records consumed (counted by [`Consumer::poll_count`]).
    consumed: ThroughputMeter,
}

struct Shared {
    cfg: ConsumerConfig,
    rpc: RpcClient,
    shutdown: AtomicBool,
}

impl Consumer {
    pub fn new(
        meta: &MetadataClient,
        subscriptions: &[Subscription],
        cfg: ConsumerConfig,
    ) -> Result<Consumer> {
        let mut states = Vec::new();
        for sub in subscriptions {
            let md = meta.metadata(sub.stream)?;
            let streamlets: Vec<StreamletId> = match &sub.streamlets {
                Some(list) => list.clone(),
                None => (0..md.config.streamlets).map(StreamletId).collect(),
            };
            for sl in streamlets {
                let broker = md
                    .broker_of(sl)
                    .ok_or(kera_common::KeraError::UnknownStreamlet(sub.stream, sl))?;
                for slot in 0..md.config.active_groups {
                    let cursor = sub
                        .start
                        .iter()
                        .find(|p| p.streamlet == sl && p.slot == slot)
                        .map(|p| p.cursor)
                        .unwrap_or(SlotCursor::START);
                    states.push(FetchState {
                        broker,
                        stream: sub.stream,
                        streamlet: sl,
                        slot,
                        cursor,
                    });
                }
            }
        }
        let (cache_tx, cache_rx) = channel::bounded(cfg.cache_capacity.max(1));
        let shared = Arc::new(Shared {
            cfg,
            rpc: meta.rpc().clone(),
            shutdown: AtomicBool::new(false),
        });
        let states: SharedStates = Arc::new(parking_lot::Mutex::new(states));
        let requests_thread = {
            let shared = Arc::clone(&shared);
            let states = Arc::clone(&states);
            std::thread::Builder::new()
                .name(format!("consumer-req-{}", shared.cfg.id.raw()))
                .spawn(move || requests_loop(shared, states, cache_tx))
                .expect("spawn consumer requests thread")
        };
        Ok(Consumer {
            cache_rx,
            shared,
            states,
            requests_thread: Some(requests_thread),
            consumed: ThroughputMeter::new(),
        })
    }

    /// Pops the next fetched batch from the cache (Source-thread side).
    pub fn next_batch(&self, timeout: Duration) -> Option<FetchedBatch> {
        self.cache_rx.recv_timeout(timeout).ok()
    }

    /// Pops a batch, iterates its records (creating record views exactly
    /// like the paper's source thread does), counts them into the
    /// consumer meter and returns the count. `Ok(0)` means caught up.
    pub fn poll_count(&self, timeout: Duration) -> Result<u64> {
        let Some(batch) = self.next_batch(timeout) else { return Ok(0) };
        let mut records = 0u64;
        batch.for_each_record(|_, _| records += 1)?;
        self.consumed.record(records, batch.data.len() as u64);
        Ok(records)
    }

    /// Records consumed per second (windowed; the harness reads this).
    pub fn metrics(&self) -> &ThroughputMeter {
        &self.consumed
    }

    /// Snapshot of the *fetch* positions. Note: positions reflect what
    /// has been fetched into the cache, not what [`Consumer::poll_count`]
    /// has consumed — drain the cache before saving positions for an
    /// exactly-once resume.
    pub fn positions(&self) -> Vec<CursorPosition> {
        self.states
            .lock()
            .iter()
            .map(|s| CursorPosition {
                stream: s.stream,
                streamlet: s.streamlet,
                slot: s.slot,
                cursor: s.cursor,
            })
            .collect()
    }

    pub fn close(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.requests_thread.take() {
            // Keep draining the cache until the thread exits — it may be
            // parked on a full cache repeatedly while finishing its round.
            while !t.is_finished() {
                while self.cache_rx.try_recv().is_ok() {}
                std::thread::sleep(Duration::from_micros(500));
            }
            let _ = t.join();
        }
    }
}

impl Drop for Consumer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn requests_loop(shared: Arc<Shared>, states: SharedStates, cache_tx: Sender<FetchedBatch>) {
    // Group state indices per broker once; cursors advance in place.
    let mut per_broker: HashMap<NodeId, Vec<usize>> = HashMap::new();
    for (i, s) in states.lock().iter().enumerate() {
        per_broker.entry(s.broker).or_default().push(i);
    }
    while !shared.shutdown.load(Ordering::SeqCst) {
        let mut got_data = false;
        // One request per broker, all brokers in parallel.
        let calls: Vec<(NodeId, Vec<usize>, _)> = per_broker
            .iter()
            .map(|(&broker, idxs)| {
                let entries: Vec<FetchEntry> = {
                    let st = states.lock();
                    idxs.iter()
                        .map(|&i| {
                            let s = &st[i];
                            FetchEntry {
                                stream: s.stream,
                                streamlet: s.streamlet,
                                slot: s.slot,
                                cursor: s.cursor,
                                max_bytes: shared.cfg.fetch_max_bytes,
                            }
                        })
                        .collect()
                };
                let req = FetchRequest { consumer: shared.cfg.id, entries };
                let call = shared.rpc.call_async(broker, OpCode::Fetch, req.encode());
                (broker, idxs.clone(), call)
            })
            .collect();
        let mut throttled_pause: Option<Duration> = None;
        for (_broker, idxs, call) in calls {
            let payload = match call.wait(shared.cfg.call_timeout) {
                Ok(p) => p,
                // Fetch-side admission control: the broker meters reads
                // per tenant and answers `Throttled` when this consumer
                // is in debt. Honour the hint instead of hammering.
                Err(kera_common::KeraError::Throttled { retry_after, .. }) => {
                    let pause = retry_after.min(Duration::from_millis(500));
                    throttled_pause =
                        Some(throttled_pause.map_or(pause, |p: Duration| p.max(pause)));
                    continue;
                }
                Err(_) => continue,
            };
            // Sliced decode: each result's data stays a view of the
            // receive buffer all the way into the consumer cache.
            let Ok(resp) = FetchResponse::decode_bytes(&payload) else { continue };
            for (result, &i) in resp.results.iter().zip(&idxs) {
                {
                    let mut st = states.lock();
                    debug_assert_eq!(result.streamlet, st[i].streamlet);
                    st[i].cursor = result.cursor;
                }
                if !result.data.is_empty() {
                    got_data = true;
                    let batch = FetchedBatch {
                        stream: result.stream,
                        streamlet: result.streamlet,
                        slot: result.slot,
                        // lint: allow(no-hot-copy) — refcount clone of the fetched slice
                        data: result.data.clone(),
                    };
                    // Blocking push: a full cache pauses fetching.
                    if cache_tx.send(batch).is_err() {
                        return;
                    }
                }
            }
        }
        if let Some(pause) = throttled_pause {
            std::thread::sleep(pause);
        } else if !got_data {
            std::thread::sleep(shared.cfg.idle_backoff);
        }
    }
}
