//! Stream metadata lookup and caching.
//!
//! Replica-aware: the coordinator may be replicated (DESIGN.md §10), so
//! every coordinator call goes through `RpcClient::call_leader`, which
//! probes the replica set, follows `NotLeader` redirect hints and rides
//! out election windows. The node that last answered is cached and
//! tried first on the next call.

use std::collections::HashMap;
use std::time::Duration;

use bytes::Bytes;
use kera_common::config::StreamConfig;
use kera_common::ids::{NodeId, StreamId};
use kera_common::Result;
use kera_rpc::RpcClient;
use kera_wire::frames::OpCode;
use kera_wire::messages::{CreateStreamRequest, GetMetadataRequest, StreamMetadata};
use parking_lot::{Mutex, RwLock};

const TIMEOUT: Duration = Duration::from_secs(10);

/// Talks to the (possibly replicated) coordinator and caches stream
/// metadata.
pub struct MetadataClient {
    rpc: RpcClient,
    /// Coordinator replica set, in replica order.
    replicas: Vec<NodeId>,
    /// The replica that served our last call — tried first next time.
    leader: Mutex<Option<NodeId>>,
    cache: RwLock<HashMap<StreamId, StreamMetadata>>,
}

impl MetadataClient {
    /// Single-coordinator constructor (the historical signature; also
    /// correct for replica 0 of a replicated coordinator, which will
    /// redirect us to its siblings).
    pub fn new(rpc: RpcClient, coordinator: NodeId) -> Self {
        Self::with_replicas(rpc, vec![coordinator])
    }

    /// Replica-aware constructor: `replicas` lists every coordinator
    /// replica; calls go to whichever currently leads.
    pub fn with_replicas(rpc: RpcClient, replicas: Vec<NodeId>) -> Self {
        Self {
            rpc,
            replicas,
            leader: Mutex::named("client.meta_leader", None),
            cache: RwLock::new(HashMap::new()),
        }
    }

    pub fn rpc(&self) -> &RpcClient {
        &self.rpc
    }

    /// Coordinator call through the leader, remembering who answered.
    fn call_coordinator(&self, opcode: OpCode, payload: Bytes) -> Result<Bytes> {
        let preferred = *self.leader.lock();
        let (resp, served_by) = self.rpc.call_leader(&self.replicas, preferred, opcode, payload, TIMEOUT)?;
        *self.leader.lock() = Some(served_by);
        Ok(resp)
    }

    /// Creates a stream and caches its metadata.
    pub fn create_stream(&self, config: StreamConfig) -> Result<StreamMetadata> {
        let resp =
            self.call_coordinator(OpCode::CreateStream, CreateStreamRequest { config }.encode())?;
        let md = StreamMetadata::decode(&resp)?;
        self.cache.write().insert(md.config.id, md.clone());
        Ok(md)
    }

    /// Returns (possibly cached) metadata for `stream`.
    pub fn metadata(&self, stream: StreamId) -> Result<StreamMetadata> {
        if let Some(md) = self.cache.read().get(&stream) {
            return Ok(md.clone());
        }
        self.refresh(stream)
    }

    /// Bypasses the cache (after an error suggesting stale placement).
    pub fn refresh(&self, stream: StreamId) -> Result<StreamMetadata> {
        let resp =
            self.call_coordinator(OpCode::GetMetadata, GetMetadataRequest { stream }.encode())?;
        let md = StreamMetadata::decode(&resp)?;
        self.cache.write().insert(stream, md.clone());
        Ok(md)
    }

    /// Deletes a stream cluster-wide (dedicated virtual logs and their
    /// replicated backup segments are freed; see the broker's
    /// `handle_delete` for the shared-pool caveat).
    pub fn delete_stream(&self, stream: StreamId) -> Result<()> {
        let mut w = kera_wire::codec::Writer::new();
        w.u32(stream.raw());
        self.call_coordinator(OpCode::DeleteStream, w.finish())?;
        self.cache.write().remove(&stream);
        Ok(())
    }

    /// Drops a cache entry (e.g. after a broker error).
    pub fn invalidate(&self, stream: StreamId) {
        self.cache.write().remove(&stream);
    }
}
