//! Stream metadata lookup and caching.

use std::collections::HashMap;
use std::time::Duration;

use kera_common::config::StreamConfig;
use kera_common::ids::{NodeId, StreamId};
use kera_common::Result;
use kera_rpc::RpcClient;
use kera_wire::frames::OpCode;
use kera_wire::messages::{CreateStreamRequest, GetMetadataRequest, StreamMetadata};
use parking_lot::RwLock;

const TIMEOUT: Duration = Duration::from_secs(10);

/// Talks to the coordinator and caches stream metadata.
pub struct MetadataClient {
    rpc: RpcClient,
    coordinator: NodeId,
    cache: RwLock<HashMap<StreamId, StreamMetadata>>,
}

impl MetadataClient {
    pub fn new(rpc: RpcClient, coordinator: NodeId) -> Self {
        Self { rpc, coordinator, cache: RwLock::new(HashMap::new()) }
    }

    pub fn rpc(&self) -> &RpcClient {
        &self.rpc
    }

    /// Creates a stream and caches its metadata.
    pub fn create_stream(&self, config: StreamConfig) -> Result<StreamMetadata> {
        let resp = self.rpc.call(
            self.coordinator,
            OpCode::CreateStream,
            CreateStreamRequest { config }.encode(),
            TIMEOUT,
        )?;
        let md = StreamMetadata::decode(&resp)?;
        self.cache.write().insert(md.config.id, md.clone());
        Ok(md)
    }

    /// Returns (possibly cached) metadata for `stream`.
    pub fn metadata(&self, stream: StreamId) -> Result<StreamMetadata> {
        if let Some(md) = self.cache.read().get(&stream) {
            return Ok(md.clone());
        }
        self.refresh(stream)
    }

    /// Bypasses the cache (after an error suggesting stale placement).
    pub fn refresh(&self, stream: StreamId) -> Result<StreamMetadata> {
        let resp = self.rpc.call(
            self.coordinator,
            OpCode::GetMetadata,
            GetMetadataRequest { stream }.encode(),
            TIMEOUT,
        )?;
        let md = StreamMetadata::decode(&resp)?;
        self.cache.write().insert(stream, md.clone());
        Ok(md)
    }

    /// Deletes a stream cluster-wide (dedicated virtual logs and their
    /// replicated backup segments are freed; see the broker's
    /// `handle_delete` for the shared-pool caveat).
    pub fn delete_stream(&self, stream: StreamId) -> Result<()> {
        let mut w = kera_wire::codec::Writer::new();
        w.u32(stream.raw());
        self.rpc.call(
            self.coordinator,
            kera_wire::frames::OpCode::DeleteStream,
            w.finish(),
            TIMEOUT,
        )?;
        self.cache.write().remove(&stream);
        Ok(())
    }

    /// Drops a cache entry (e.g. after a broker error).
    pub fn invalidate(&self, stream: StreamId) {
        self.cache.write().remove(&stream);
    }
}
