//! Record-to-streamlet partitioning strategies (paper §IV-B: "according
//! to the partitioning strategy (round-robin or by record's key, which is
//! hashed to identify a streamlet)").

use kera_common::ids::StreamletId;

/// How a producer spreads records over a stream's streamlets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Partitioner {
    /// Cycle through streamlets record by record (the paper's evaluation
    /// uses non-keyed records, i.e. this strategy).
    RoundRobin,
    /// Hash the record key onto a streamlet (keyed streams).
    ByKey,
}

impl Partitioner {
    /// Picks the streamlet for the next record. `counter` is a per-stream
    /// monotonically increasing record count maintained by the producer;
    /// `key` is the record's first key, if any.
    pub fn pick(&self, streamlets: u32, counter: u64, key: Option<&[u8]>) -> StreamletId {
        debug_assert!(streamlets > 0);
        match self {
            Partitioner::RoundRobin => StreamletId((counter % u64::from(streamlets)) as u32),
            Partitioner::ByKey => {
                let h = match key {
                    Some(k) => fnv1a(k),
                    None => counter, // keyless records degrade to RR
                };
                StreamletId((h % u64::from(streamlets)) as u32)
            }
        }
    }
}

/// FNV-1a — cheap, stable hash for key partitioning.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn round_robin_cycles() {
        let p = Partitioner::RoundRobin;
        let picks: Vec<u32> = (0..8).map(|i| p.pick(4, i, None).raw()).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn by_key_is_deterministic_and_spread() {
        let p = Partitioner::ByKey;
        let a = p.pick(8, 0, Some(b"user-1"));
        let b = p.pick(8, 99, Some(b"user-1"));
        assert_eq!(a, b, "same key must map to same streamlet");
        let distinct: HashSet<_> =
            (0..100u32).map(|i| p.pick(8, 0, Some(format!("k{i}").as_bytes()))).collect();
        assert!(distinct.len() >= 6, "keys should spread: {distinct:?}");
    }

    #[test]
    fn by_key_without_key_falls_back_to_counter() {
        let p = Partitioner::ByKey;
        let picks: Vec<u32> = (0..4).map(|i| p.pick(4, i, None).raw()).collect();
        assert_eq!(picks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_streamlet_always_zero() {
        for p in [Partitioner::RoundRobin, Partitioner::ByKey] {
            for i in 0..10 {
                assert_eq!(p.pick(1, i, Some(b"x")).raw(), 0);
            }
        }
    }
}
