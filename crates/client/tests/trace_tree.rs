//! End-to-end causal tracing: a single produce must reconstruct as one
//! causally-linked span tree spanning every hop —
//!
//! ```text
//! RpcCall(Produce, client)
//!   └─ RpcServe(broker)
//!        ├─ Append(broker)
//!        │    └─ VlogShip(broker replication path)
//!        │         └─ RpcCall(BackupWrite, broker)
//!        │              └─ RpcServe(backup)
//!        │                   └─ BackupWrite(backup)
//!        └─ Replicate(broker, durability wait)
//! ```
//!
//! All events are pulled from the per-node flight recorders; the tree is
//! rebuilt purely from `(trace_id, span_id, parent_span_id)` edges.

use std::collections::HashMap;
use std::time::Duration;

use kera_broker::KeraCluster;
use kera_client::producer::{Producer, ProducerConfig};
use kera_client::MetadataClient;
use kera_common::config::{ClusterConfig, ReplicationConfig, StreamConfig, VirtualLogPolicy};
use kera_common::ids::{ProducerId, StreamId};
use kera_obs::{EventRecord, Stage};
use kera_wire::frames::OpCode;

fn stream_config() -> StreamConfig {
    StreamConfig {
        id: StreamId(1),
        streamlets: 1,
        active_groups: 1,
        segments_per_group: 2,
        segment_size: 1 << 18,
        replication: ReplicationConfig {
            factor: 3,
            policy: VirtualLogPolicy::PerStreamlet,
            vseg_size: 1 << 18,
        },
    }
}

/// All recorded events across the cluster's nodes plus the given client
/// runtimes' recorders.
fn collect_events(cluster: &KeraCluster, clients: &[&kera_rpc::NodeRuntime]) -> Vec<EventRecord> {
    let mut events = Vec::new();
    for obs in cluster.node_obs() {
        events.extend(obs.recorder().read());
    }
    for rt in clients {
        events.extend(rt.client().obs().recorder().read());
    }
    events
}

/// Walks one parent edge: the unique event whose span_id is `parent_id`
/// within trace `trace`.
fn parent_of<'a>(
    by_span: &'a HashMap<u64, &'a EventRecord>,
    trace: u64,
    parent_id: u64,
) -> &'a EventRecord {
    let ev = by_span
        .get(&parent_id)
        .unwrap_or_else(|| panic!("no event with span id {parent_id:#x} in trace {trace:#x}"));
    assert_eq!(ev.trace_id, trace, "parent edge crossed traces");
    ev
}

#[test]
fn produce_reconstructs_as_one_span_tree() {
    let cluster = KeraCluster::start(ClusterConfig {
        brokers: 3,
        worker_threads: 2,
        observability: true,
        ..ClusterConfig::default()
    })
    .unwrap();
    let rt = cluster.client(0);
    let meta = MetadataClient::new(rt.client(), cluster.coordinator());
    meta.create_stream(stream_config()).unwrap();

    let producer = Producer::new(
        &meta,
        &[StreamId(1)],
        ProducerConfig { id: ProducerId(9), chunk_size: 1024, ..ProducerConfig::default() },
    )
    .unwrap();
    for _ in 0..20 {
        producer.send(StreamId(1), &[7u8; 100]).unwrap();
    }
    producer.flush().unwrap();
    assert_eq!(producer.failed_requests(), 0);
    // The produce is acked once durable, but the backup-side spans are
    // recorded when their worker unwinds; give the rings a moment.
    std::thread::sleep(Duration::from_millis(200));

    let events = collect_events(&cluster, &[&rt]);
    let by_span: HashMap<u64, &EventRecord> = events.iter().map(|e| (e.span_id, e)).collect();

    // Anchor on a BackupWrite span — the deepest hop — and walk the
    // parent chain all the way back to the client's produce call.
    let bw = events
        .iter()
        .find(|e| e.stage() == Some(Stage::BackupWrite))
        .unwrap_or_else(|| panic!("no BackupWrite span recorded: {events:?}"));
    let trace = bw.trace_id;
    assert_ne!(trace, 0, "backup write is traced");

    let backup_serve = parent_of(&by_span, trace, bw.parent_span_id);
    assert_eq!(backup_serve.stage(), Some(Stage::RpcServe));
    assert_eq!(backup_serve.opcode, OpCode::BackupWrite as u8);
    assert_eq!(backup_serve.node, bw.node, "serve and write happen on the backup");

    let ship_call = parent_of(&by_span, trace, backup_serve.parent_span_id);
    assert_eq!(ship_call.stage(), Some(Stage::RpcCall));
    assert_eq!(ship_call.opcode, OpCode::BackupWrite as u8);

    let ship = parent_of(&by_span, trace, ship_call.parent_span_id);
    assert_eq!(ship.stage(), Some(Stage::VlogShip));
    assert_eq!(ship.node, ship_call.node, "replication call issued by the shipping broker");

    let append = parent_of(&by_span, trace, ship.parent_span_id);
    assert_eq!(append.stage(), Some(Stage::Append));
    assert_eq!(append.node, ship.node);

    let serve = parent_of(&by_span, trace, append.parent_span_id);
    assert_eq!(serve.stage(), Some(Stage::RpcServe));
    assert_eq!(serve.opcode, OpCode::Produce as u8);

    let call = parent_of(&by_span, trace, serve.parent_span_id);
    assert_eq!(call.stage(), Some(Stage::RpcCall));
    assert_eq!(call.opcode, OpCode::Produce as u8);
    assert_eq!(call.parent_span_id, 0, "the client call is the trace root");

    // The durability wait is a sibling of the append, under the serve.
    assert!(
        events.iter().any(|e| e.stage() == Some(Stage::Replicate)
            && e.trace_id == trace
            && e.parent_span_id == serve.span_id),
        "Replicate span parented to the produce serve: {events:?}"
    );

    // Stage latency histograms saw the same pipeline.
    let snap = cluster.metrics_snapshot();
    for stage in ["rpc_call", "rpc_serve", "append", "vlog_ship", "backup_write"] {
        let h = snap.histogram_sum("kera.trace.stage", &[("stage", stage)]);
        assert!(h.count > 0, "stage {stage} has samples");
    }

    producer.close().unwrap();
    cluster.shutdown();
}

/// With observability off every ring stays empty and nothing is traced,
/// while the plain counters keep working.
#[test]
fn disabled_observability_records_no_spans() {
    let cluster = KeraCluster::start(ClusterConfig {
        brokers: 2,
        worker_threads: 2,
        observability: false,
        ..ClusterConfig::default()
    })
    .unwrap();
    let rt = cluster.client(0);
    let meta = MetadataClient::new(rt.client(), cluster.coordinator());
    meta.create_stream(StreamConfig {
        replication: ReplicationConfig { factor: 2, ..stream_config().replication },
        ..stream_config()
    })
    .unwrap();
    let producer = Producer::new(
        &meta,
        &[StreamId(1)],
        ProducerConfig { id: ProducerId(1), chunk_size: 1024, ..ProducerConfig::default() },
    )
    .unwrap();
    for _ in 0..10 {
        producer.send(StreamId(1), &[1u8; 100]).unwrap();
    }
    producer.flush().unwrap();

    let events = collect_events(&cluster, &[&rt]);
    assert!(events.is_empty(), "disabled obs must record nothing: {events:?}");
    let snap = cluster.metrics_snapshot();
    assert!(
        snap.counter_sum("kera.broker.records_in", &[]) >= 10,
        "plain counters still work with tracing off"
    );

    producer.close().unwrap();
    cluster.shutdown();
}
