//! End-to-end client tests: the same producer/consumer stack driving the
//! KerA cluster and the Kafka-style baseline.

use std::collections::HashMap;
use std::time::Duration;

use kera_broker::KeraCluster;
use kera_client::consumer::{Consumer, ConsumerConfig, Subscription};
use kera_client::producer::{Producer, ProducerConfig};
use kera_client::MetadataClient;
use kera_common::config::{ClusterConfig, ReplicationConfig, StreamConfig, VirtualLogPolicy};
use kera_common::ids::{ConsumerId, ProducerId, StreamId, StreamletId};
use kera_kafka_sim::broker::KafkaTuning;
use kera_kafka_sim::KafkaCluster;

fn stream_config(id: u32, streamlets: u32, q: u32, factor: u32) -> StreamConfig {
    StreamConfig {
        id: StreamId(id),
        streamlets,
        active_groups: q,
        segments_per_group: 4,
        segment_size: 1 << 18,
        replication: ReplicationConfig {
            factor,
            policy: VirtualLogPolicy::SharedPerBroker(2),
            vseg_size: 1 << 18,
        },
    }
}

fn producer_config(id: u32) -> ProducerConfig {
    ProducerConfig {
        id: ProducerId(id),
        chunk_size: 1024,
        linger: Duration::from_millis(1),
        ..ProducerConfig::default()
    }
}

fn consumer_config(id: u32) -> ConsumerConfig {
    ConsumerConfig { id: ConsumerId(id), fetch_max_bytes: 4096, ..ConsumerConfig::default() }
}

/// Drains the consumer until `expected` records arrive or a deadline.
fn consume_all(consumer: &Consumer, expected: u64) -> u64 {
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    let mut total = 0;
    while total < expected && std::time::Instant::now() < deadline {
        total += consumer.poll_count(Duration::from_millis(100)).unwrap();
    }
    total
}

#[test]
fn kera_roundtrip_many_records() {
    let cluster = KeraCluster::start(ClusterConfig {
        brokers: 4,
        worker_threads: 4,
        ..ClusterConfig::default()
    })
    .unwrap();
    let prod_rt = cluster.client(0);
    let cons_rt = cluster.client(1);
    let meta_p = MetadataClient::new(prod_rt.client(), cluster.coordinator());
    let meta_c = MetadataClient::new(cons_rt.client(), cluster.coordinator());

    let md = meta_p.create_stream(stream_config(1, 4, 1, 3)).unwrap();
    assert_eq!(md.placements.len(), 4);

    let producer = Producer::new(&meta_p, &[StreamId(1)], producer_config(0)).unwrap();
    let consumer = Consumer::new(
        &meta_c,
        &[Subscription::whole_stream(StreamId(1))],
        consumer_config(0),
    )
    .unwrap();

    let n = 10_000u64;
    let payload = [0x5au8; 100];
    for _ in 0..n {
        producer.send(StreamId(1), &payload).unwrap();
    }
    producer.flush().unwrap();
    assert_eq!(producer.metrics().items(), n, "all records acked");
    assert_eq!(producer.failed_requests(), 0);

    let consumed = consume_all(&consumer, n);
    assert_eq!(consumed, n, "all records consumed exactly once");
    producer.close().unwrap();
    consumer.close();
    cluster.shutdown();
}

#[test]
fn kera_per_slot_order_is_preserved() {
    let cluster = KeraCluster::start(ClusterConfig {
        brokers: 2,
        worker_threads: 4,
        ..ClusterConfig::default()
    })
    .unwrap();
    let rt = cluster.client(0);
    let meta = MetadataClient::new(rt.client(), cluster.coordinator());
    meta.create_stream(stream_config(1, 2, 1, 2)).unwrap();

    let producer = Producer::new(&meta, &[StreamId(1)], producer_config(3)).unwrap();
    let n = 3_000u64;
    for i in 0..n {
        producer.send(StreamId(1), &i.to_le_bytes()).unwrap();
    }
    producer.flush().unwrap();

    let consumer = Consumer::new(
        &meta,
        &[Subscription::whole_stream(StreamId(1))],
        consumer_config(0),
    )
    .unwrap();
    // Per (streamlet, slot): base offsets strictly increase and record
    // values (round-robin: value i goes to streamlet i % 2) are ordered.
    let mut last_value: HashMap<(StreamletId, u32), u64> = HashMap::new();
    let mut seen = 0u64;
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while seen < n && std::time::Instant::now() < deadline {
        let Some(batch) = consumer.next_batch(Duration::from_millis(100)) else { continue };
        let key = (batch.streamlet, batch.slot);
        batch
            .for_each_record(|_chunk, rec| {
                let v = u64::from_le_bytes(rec.value().try_into().unwrap());
                if let Some(&prev) = last_value.get(&key) {
                    assert!(v > prev, "order violated in {key:?}: {prev} then {v}");
                }
                last_value.insert(key, v);
                seen += 1;
            })
            .unwrap();
    }
    assert_eq!(seen, n);
    producer.close().unwrap();
    consumer.close();
    cluster.shutdown();
}

#[test]
fn kera_linger_pushes_partial_chunks() {
    let cluster = KeraCluster::start(ClusterConfig {
        brokers: 1,
        worker_threads: 2,
        ..ClusterConfig::default()
    })
    .unwrap();
    let rt = cluster.client(0);
    let meta = MetadataClient::new(rt.client(), cluster.coordinator());
    meta.create_stream(stream_config(1, 1, 1, 1)).unwrap();

    let producer = Producer::new(&meta, &[StreamId(1)], producer_config(0)).unwrap();
    let consumer = Consumer::new(
        &meta,
        &[Subscription::whole_stream(StreamId(1))],
        consumer_config(0),
    )
    .unwrap();
    // 3 records (~336 bytes) nowhere near the 1 KB chunk size; no flush.
    for _ in 0..3 {
        producer.send(StreamId(1), &[1u8; 100]).unwrap();
    }
    // The linger (1 ms) must push them without an explicit flush.
    let consumed = consume_all(&consumer, 3);
    assert_eq!(consumed, 3);
    producer.close().unwrap();
    consumer.close();
    cluster.shutdown();
}

#[test]
fn kera_keyed_records_stay_in_one_streamlet() {
    let cluster = KeraCluster::start(ClusterConfig {
        brokers: 2,
        worker_threads: 2,
        ..ClusterConfig::default()
    })
    .unwrap();
    let rt = cluster.client(0);
    let meta = MetadataClient::new(rt.client(), cluster.coordinator());
    meta.create_stream(stream_config(1, 4, 1, 1)).unwrap();

    let mut cfg = producer_config(0);
    cfg.partitioner = kera_client::Partitioner::ByKey;
    let producer = Producer::new(&meta, &[StreamId(1)], cfg).unwrap();
    for i in 0..200u32 {
        producer.send_keyed(StreamId(1), b"the-one-key", &i.to_le_bytes()).unwrap();
    }
    producer.flush().unwrap();

    let consumer = Consumer::new(
        &meta,
        &[Subscription::whole_stream(StreamId(1))],
        consumer_config(0),
    )
    .unwrap();
    let mut streamlets = std::collections::HashSet::new();
    let mut seen = 0;
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while seen < 200 && std::time::Instant::now() < deadline {
        let Some(batch) = consumer.next_batch(Duration::from_millis(100)) else { continue };
        streamlets.insert(batch.streamlet);
        batch
            .for_each_record(|_, rec| {
                assert_eq!(rec.key(0).unwrap(), b"the-one-key");
                seen += 1;
            })
            .unwrap();
    }
    assert_eq!(seen, 200);
    assert_eq!(streamlets.len(), 1, "one key must land in one streamlet");
    producer.close().unwrap();
    consumer.close();
    cluster.shutdown();
}

#[test]
fn kafka_roundtrip_same_client_stack() {
    let cluster = KafkaCluster::start(
        ClusterConfig { brokers: 3, worker_threads: 4, ..ClusterConfig::default() },
        KafkaTuning { fetch_wait: Duration::from_millis(50), ..KafkaTuning::default() },
    )
    .unwrap();
    let prod_rt = cluster.client(0);
    let cons_rt = cluster.client(1);
    let meta_p = MetadataClient::new(prod_rt.client(), cluster.coordinator());
    let meta_c = MetadataClient::new(cons_rt.client(), cluster.coordinator());

    meta_p.create_stream(stream_config(1, 3, 1, 3)).unwrap();

    let producer = Producer::new(&meta_p, &[StreamId(1)], producer_config(0)).unwrap();
    let consumer = Consumer::new(
        &meta_c,
        &[Subscription::whole_stream(StreamId(1))],
        consumer_config(0),
    )
    .unwrap();

    let n = 5_000u64;
    for i in 0..n {
        producer.send(StreamId(1), &i.to_le_bytes()).unwrap();
    }
    producer.flush().unwrap();
    assert_eq!(producer.metrics().items(), n);
    assert_eq!(producer.failed_requests(), 0);

    let consumed = consume_all(&consumer, n);
    assert_eq!(consumed, n);
    producer.close().unwrap();
    consumer.close();
    cluster.shutdown();
}

#[test]
fn kafka_acked_equals_consumed_under_concurrency() {
    let cluster = KafkaCluster::start(
        ClusterConfig { brokers: 2, worker_threads: 8, ..ClusterConfig::default() },
        KafkaTuning { fetch_wait: Duration::from_millis(20), ..KafkaTuning::default() },
    )
    .unwrap();
    let meta_rt = cluster.client(10);
    let meta = MetadataClient::new(meta_rt.client(), cluster.coordinator());
    meta.create_stream(stream_config(7, 4, 1, 2)).unwrap();

    // Two producers, one consumer, concurrent.
    let mut producers = Vec::new();
    let mut rts = Vec::new();
    for p in 0..2u32 {
        let rt = cluster.client(p);
        let m = MetadataClient::new(rt.client(), cluster.coordinator());
        producers.push(Producer::new(&m, &[StreamId(7)], producer_config(p)).unwrap());
        rts.push(rt);
    }
    let cons_rt = cluster.client(5);
    let meta_c = MetadataClient::new(cons_rt.client(), cluster.coordinator());
    let consumer = Consumer::new(
        &meta_c,
        &[Subscription::whole_stream(StreamId(7))],
        consumer_config(0),
    )
    .unwrap();

    let per_producer = 2_000u64;
    std::thread::scope(|s| {
        for p in &producers {
            s.spawn(move || {
                for i in 0..per_producer {
                    p.send(StreamId(7), &i.to_le_bytes()).unwrap();
                }
                p.flush().unwrap();
            });
        }
    });
    let total: u64 = producers.iter().map(|p| p.metrics().items()).sum();
    assert_eq!(total, 2 * per_producer);
    let consumed = consume_all(&consumer, total);
    assert_eq!(consumed, total);
    for p in producers {
        p.close().unwrap();
    }
    consumer.close();
    cluster.shutdown();
}
